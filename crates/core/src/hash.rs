//! Content hashing for the artifact cache: FNV-1a in 64- and 128-bit widths.
//!
//! The analysis service keys cached artifacts by the *content* of their
//! inputs (per-procedure source text, whole-program source, analysis
//! configuration), so the hash must be:
//!
//! * **deterministic across platforms and runs** — cache entries written by
//!   one process must be readable by the next, so no `RandomState`-style
//!   per-process seeding (and none of `std::hash`'s stability caveats);
//! * **dependency-free** — the workspace builds offline;
//! * **wide enough that collisions are a non-event** — the 128-bit variant
//!   keys the content-addressed store (2⁻⁶⁴ birthday bound at ~2⁶⁴⁻³²
//!   entries is far beyond any realistic corpus); the 64-bit variant is for
//!   in-memory table fingerprints where an occasional false share would
//!   still be caught by the full key comparison.
//!
//! FNV-1a is used rather than SplitMix64-as-a-hash because it is a genuine
//! streaming hash over byte strings (SplitMix64 is a PRNG; see
//! `mpi_dfa_lang::rng`). This is **not** a cryptographic hash: cache keys
//! here defend against accidents, not adversaries, which matches the
//! threat model of a local analysis cache (the cache directory is as
//! trusted as the binary itself — see docs/SERVING.md).

/// FNV-1a 64-bit offset basis.
const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
const FNV64_PRIME: u64 = 0x00000100000001b3;
/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime (2⁸⁸ + 2⁸ + 0x3b).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// One-shot FNV-1a 64 over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// One-shot FNV-1a 128 over a byte string.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Hasher128::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a 128 hasher with typed helpers.
///
/// The typed writers frame every field with a tag byte and
/// length/fixed-width encoding so that adjacent fields cannot alias
/// (`"ab" + "c"` hashes differently from `"a" + "bc"`), which matters for
/// configuration fingerprints built from many small fields.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher128 {
    pub fn new() -> Self {
        Hasher128 {
            state: FNV128_OFFSET,
        }
    }

    /// Feed raw bytes (no framing).
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        let mut h = self.state;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        self.state = h;
        self
    }

    /// Feed a length-framed string field.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(&[0x01]);
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// Feed a fixed-width `u64` field (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feed a tagged optional `u64` (`None` and `Some(0)` hash apart).
    pub fn write_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            None => self.write(&[0x02]),
            Some(x) => {
                self.write(&[0x03]);
                self.write_u64(x)
            }
        }
    }

    /// Feed a tagged bool.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write(&[0x04, u8::from(v)])
    }

    /// Feed a length-framed list of string fields.
    pub fn write_strs<S: AsRef<str>>(&mut self, items: &[S]) -> &mut Self {
        self.write(&[0x05]);
        self.write_u64(items.len() as u64);
        for s in items {
            self.write_str(s.as_ref());
        }
        self
    }

    /// The digest so far (the hasher remains usable).
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Render a 128-bit digest as 32 lowercase hex digits — the on-disk cache
/// file name and the wire spelling of content hashes.
pub fn hex128(h: u128) -> String {
    format!("{h:032x}")
}

/// Parse the [`hex128`] spelling back.
pub fn parse_hex128(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_test_vectors() {
        // Standard FNV-1a vectors (http://www.isthe.com/chongo/tech/comp/fnv/).
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv128(b""), FNV128_OFFSET);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Hasher128::new();
        h.write(b"hello ").write(b"world");
        assert_eq!(h.finish(), fnv128(b"hello world"));
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let mut a = Hasher128::new();
        a.write_str("ab").write_str("c");
        let mut b = Hasher128::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Hasher128::new();
        c.write_opt_u64(None);
        let mut d = Hasher128::new();
        d.write_opt_u64(Some(0));
        assert_ne!(c.finish(), d.finish());

        let mut e = Hasher128::new();
        e.write_strs(&["x", "y"]);
        let mut f = Hasher128::new();
        f.write_strs(&["x"]).write_strs(&["y"]);
        assert_ne!(e.finish(), f.finish());
    }

    #[test]
    fn hex_round_trip() {
        for v in [0u128, 1, u128::MAX, fnv128(b"roundtrip")] {
            let s = hex128(v);
            assert_eq!(s.len(), 32);
            assert_eq!(parse_hex128(&s), Some(v));
        }
        assert_eq!(parse_hex128("xyz"), None);
        assert_eq!(parse_hex128("00"), None);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke-level avalanche check over small perturbations.
        let base = fnv128(b"program lu sub rhs() { }");
        let edited = fnv128(b"program lu sub rhs() { x = 1; }");
        assert_ne!(base, edited);
        assert_ne!(fnv64(b"T0"), fnv64(b"T1"));
    }
}
