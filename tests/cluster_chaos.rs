//! The cluster-level chaos suite (acceptance gate for the fault-tolerant
//! sharded service).
//!
//! Runs `CLUSTER_CHAOS_CASES` seeded scenarios (default 12 locally so the
//! tier-1 suite stays fast; CI's `cluster-chaos-smoke` job sets 200)
//! against a REAL supervised fleet: `mpidfa serve` worker processes behind
//! the consistent-hash router, killed with SIGKILL mid-request, restarted
//! under backoff, browned out under burst. Any hang, panic, unstructured
//! error, or payload divergence from the fault-free reference fails the
//! test; the failing seed and case index are printed so
//! `CLUSTER_CHAOS_SEED=<seed> cargo test --test cluster_chaos` reproduces
//! the exact run, and the failure detail is written to
//! `target/cluster-chaos-failure.txt` for CI artifact upload.

use mpi_dfa_service::{run_cluster_chaos, ClusterChaosConfig};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_at(shards: usize, seed: u64, cases: usize) {
    let report = run_cluster_chaos(ClusterChaosConfig {
        seed,
        cases,
        shards,
        worker_program: env!("CARGO_BIN_EXE_mpidfa").into(),
    });

    println!(
        "cluster chaos [{shards} shard(s)]: {} cases, {} requests, {} ok, {} errors, \
         {} sheds, {} kills, {} disconnects",
        report.cases,
        report.requests_sent,
        report.ok_responses,
        report.error_responses,
        report.sheds,
        report.kills,
        report.disconnects
    );

    if let Some(f) = &report.failure {
        let artifact = format!(
            "cluster chaos failure\nshards: {shards}\nseed: {}\ncase: {}\ndetail:\n{}\n",
            f.seed, f.case_index, f.detail
        );
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/cluster-chaos-failure.txt", &artifact);
        panic!(
            "cluster chaos case {} failed at {} shard(s) under CLUSTER_CHAOS_SEED={} — \
             reproduce with `CLUSTER_CHAOS_SEED={} CLUSTER_CHAOS_CASES={} cargo test \
             --test cluster_chaos`\n{}",
            f.case_index, shards, f.seed, f.seed, cases, f.detail
        );
    }

    assert!(report.requests_sent > 0, "cluster chaos sent no requests");
    assert!(report.ok_responses > 0, "cluster chaos saw no successes");
}

/// The degenerate one-shard ring: every fault lands on the only worker, so
/// recovery (not hedging) carries every scenario.
#[test]
fn cluster_chaos_single_shard_is_clean() {
    run_at(
        1,
        env_u64("CLUSTER_CHAOS_SEED", 0),
        env_u64("CLUSTER_CHAOS_CASES", 12) as usize,
    );
}

/// The CI topology: three shards, so kills exercise hedging and the warm
/// shared disk cache across workers.
#[test]
fn cluster_chaos_three_shards_is_clean() {
    run_at(
        3,
        env_u64("CLUSTER_CHAOS_SEED", 0),
        env_u64("CLUSTER_CHAOS_CASES", 12) as usize,
    );
}
