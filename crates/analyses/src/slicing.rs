//! Forward data slicing over the MPI-ICFG.
//!
//! The paper's Section 1 motivating client: "if one attempts to take a
//! forward slice to identify all statements influenced by the assignment
//! `x = 0` in statement 1, using an analysis framework that does not
//! consider the SPMD nature of the program, an erroneous result will be
//! obtained" — statements 9, 10, and 12 (the receive and everything it
//! feeds) are missed without communication edges.
//!
//! This is a *data* slice (transitive flow dependences, including through
//! messages); control dependences are deliberately excluded, matching the
//! statement sets the paper quotes for Figure 1.

use crate::interproc::{call_forward, return_forward, BindMaps, UseSelector};
use mpi_dfa_core::graph::{Edge, EdgeKind, FlowGraph, NodeId};
use mpi_dfa_core::lattice::BoolOr;
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::Solver;
use mpi_dfa_core::varset::VarSet;
use mpi_dfa_graph::icfg::Icfg;
use mpi_dfa_graph::node::{MpiKind, NodeKind};
use mpi_dfa_lang::ast::StmtId;
use std::collections::BTreeSet;

/// The "influenced" forward analysis: locations carrying data influenced by
/// the seed statement's definition.
struct Influence<'g> {
    icfg: &'g Icfg,
    maps: BindMaps,
    /// Nodes whose definitions seed the slice.
    seeds: Vec<NodeId>,
    universe: usize,
    /// Whether communication edges participate (MPI-ICFG vs plain graph).
    use_comm: bool,
}

impl Influence<'_> {
    fn is_seed(&self, node: NodeId) -> bool {
        self.seeds.contains(&node)
    }
}

impl Dataflow for Influence<'_> {
    type Fact = VarSet;
    type CommFact = BoolOr;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> VarSet {
        VarSet::empty(self.universe)
    }

    fn boundary(&self) -> VarSet {
        VarSet::empty(self.universe)
    }

    fn meet_into(&self, dst: &mut VarSet, src: &VarSet) -> bool {
        dst.union_into(src)
    }

    fn transfer(&self, node: NodeId, input: &VarSet, comm: &[BoolOr]) -> VarSet {
        let mut out = input.clone();
        let seeded = self.is_seed(node);
        match &self.icfg.payload(node).kind {
            NodeKind::Assign { lhs, rhs } => {
                let influenced = seeded
                    || UseSelector::All.reads_from(rhs, input)
                    || lhs.index_uses.iter().any(|l| input.contains(l.index()));
                if influenced {
                    out.insert(lhs.loc.index());
                } else if lhs.is_strong_def() {
                    out.remove(lhs.loc.index());
                }
            }
            NodeKind::Read { target } => {
                if seeded {
                    out.insert(target.loc.index());
                } else if target.is_strong_def() {
                    out.remove(target.loc.index());
                }
            }
            NodeKind::Mpi(m) if m.kind.receives_data() => {
                // Receives always carry a buffer; a malformed node has
                // nothing to gen or kill and transfers as the identity.
                let Some(buf) = m.buf.as_ref() else {
                    return out;
                };
                let arriving = self.use_comm && comm.iter().any(|b| b.0);
                let gen = arriving || seeded;
                match m.kind {
                    MpiKind::Recv | MpiKind::Irecv | MpiKind::Allreduce => {
                        if gen {
                            out.insert(buf.loc.index());
                        } else if buf.is_strong_def() {
                            out.remove(buf.loc.index());
                        }
                    }
                    _ => {
                        if gen {
                            out.insert(buf.loc.index());
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn comm_transfer(&self, node: NodeId, input: &VarSet) -> BoolOr {
        match &self.icfg.payload(node).kind {
            // A malformed send missing its payload counts as relevant
            // (`true`): over-approximating keeps the slice sound.
            NodeKind::Mpi(m) if m.kind.sends_data() => BoolOr(match m.kind {
                MpiKind::Reduce | MpiKind::Allreduce => m
                    .value
                    .as_ref()
                    .is_none_or(|v| UseSelector::All.reads_from(v, input)),
                _ => m
                    .buf
                    .as_ref()
                    .is_none_or(|buf| input.contains(buf.loc.index())),
            }),
            _ => BoolOr(false),
        }
    }

    fn translate(&self, edge: &Edge, fact: &VarSet) -> Option<VarSet> {
        match edge.kind {
            EdgeKind::Call { site } => Some(call_forward(
                self.icfg,
                &self.maps,
                site,
                fact,
                UseSelector::All,
            )),
            EdgeKind::Return { site } => Some(return_forward(self.icfg, &self.maps, site, fact)),
            _ => None,
        }
    }
}

/// Compute the forward data slice from the statement(s) `seed`.
/// Returns the set of statement ids in the slice (the seed included).
///
/// `graph` may be the plain ICFG (no communication modeling — reproduces
/// the paper's "erroneous result") or the MPI-ICFG.
pub fn forward_slice<G: FlowGraph + Sync>(
    graph: &G,
    icfg: &Icfg,
    seed: StmtId,
) -> BTreeSet<StmtId> {
    let seeds: Vec<NodeId> = icfg
        .nodes()
        .filter(|&n| icfg.payload(n).stmt == Some(seed))
        .collect();
    let use_comm = {
        // Detect communication edges in the graph we were given.
        (0..graph.num_nodes() as u32)
            .any(|i| graph.out_edges(NodeId(i)).iter().any(|e| e.kind.is_comm()))
    };
    let problem = Influence {
        icfg,
        maps: BindMaps::build(icfg),
        seeds,
        universe: icfg.ir.locs.len(),
        use_comm,
    };
    let sol = Solver::new(&problem, graph).run();

    let mut slice = BTreeSet::new();
    slice.insert(seed);
    for n in icfg.nodes() {
        let Some(stmt) = icfg.payload(n).stmt else {
            continue;
        };
        let input = sol.before(n);
        let in_slice = match &icfg.payload(n).kind {
            NodeKind::Assign { lhs, rhs } => {
                UseSelector::All.reads_from(rhs, input)
                    || lhs.index_uses.iter().any(|l| input.contains(l.index()))
            }
            NodeKind::Branch { cond } => UseSelector::All.reads_from(cond, input),
            NodeKind::Print { value } => UseSelector::All.reads_from(value, input),
            NodeKind::Mpi(m) => {
                let sends_influenced = m.kind.sends_data()
                    && match m.kind {
                        MpiKind::Reduce | MpiKind::Allreduce => m
                            .value
                            .as_ref()
                            .is_some_and(|v| UseSelector::All.reads_from(v, input)),
                        _ => m
                            .buf
                            .as_ref()
                            .is_some_and(|b| input.contains(b.loc.index())),
                    };
                // A receive is in the slice when influenced data arrives:
                // detectable as its buffer being influenced *after* it.
                let recvs_influenced = m.kind.receives_data()
                    && m.buf.as_ref().is_some_and(|b| {
                        sol.after(n).contains(b.loc.index()) && !input.contains(b.loc.index())
                    });
                let recv_kept = m.kind.receives_data()
                    && m.buf.as_ref().is_some_and(|b| {
                        input.contains(b.loc.index()) && sol.after(n).contains(b.loc.index())
                    });
                sends_influenced || recvs_influenced || recv_kept
            }
            _ => false,
        };
        if in_slice {
            slice.insert(stmt);
        }
    }
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_graph::icfg::ProgramIr;
    use mpi_dfa_graph::mpi::{MpiIcfg, SyntacticConsts};

    /// Figure 1, with statement ids annotated. SMPL statement ids count
    /// from 0 in parse order:
    ///   s0: x = 0      s1: z = 2      s2: b = 7
    ///   s3: if (rank() == 0)
    ///   s4: x = x + 1  s5: b = x * 3  s6: send(x)
    ///   s7: recv(y)    s8: z = b * y
    ///   s9: f = reduce(SUM, z)
    const FIGURE1: &str = "program fig1\n\
        global x: real; global z: real; global b: real; global y: real;\n\
        global f: real;\n\
        sub main() {\n\
          x = 0.0;\n\
          z = 2.0;\n\
          b = 7.0;\n\
          if (rank() == 0) {\n\
            x = x + 1.0;\n\
            b = x * 3.0;\n\
            send(x, 1, 9);\n\
          } else {\n\
            recv(y, 0, 9);\n\
            z = b * y;\n\
          }\n\
          reduce(SUM, z, f, 0);\n\
        }";

    fn ids(set: &BTreeSet<StmtId>) -> Vec<u32> {
        set.iter().map(|s| s.0).collect()
    }

    #[test]
    fn figure1_slice_without_comm_edges_is_wrong() {
        // The paper: "The framework will identify statements 1, 5, 6, and 7
        // as the only statements in the slice" (their 1-based numbering of
        // x=0, x=x+1, b=x*3, send(x)) — our s0, s4, s5, s6.
        let ir = ProgramIr::from_source(FIGURE1).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let slice = forward_slice(&icfg, &icfg, StmtId(0));
        assert_eq!(ids(&slice), vec![0, 4, 5, 6]);
    }

    #[test]
    fn figure1_slice_with_comm_edges_is_complete() {
        // "when in fact statements 1, 5, 6, 7, 9, 10, and 12 should be in
        // the slice" — our s0, s4, s5, s6, s7, s8, s9.
        let ir = ProgramIr::from_source(FIGURE1).unwrap();
        let mpi = MpiIcfg::build(Icfg::build(ir, "main", 0).unwrap(), &SyntacticConsts);
        let slice = forward_slice(&mpi, mpi.icfg(), StmtId(0));
        assert_eq!(ids(&slice), vec![0, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn slice_from_uninvolved_statement_is_minimal() {
        // Slicing from z = 2: z is overwritten on the else path and feeds
        // only the reduce.
        let ir = ProgramIr::from_source(FIGURE1).unwrap();
        let mpi = MpiIcfg::build(Icfg::build(ir, "main", 0).unwrap(), &SyntacticConsts);
        let slice = forward_slice(&mpi, mpi.icfg(), StmtId(1));
        assert_eq!(
            ids(&slice),
            vec![1, 9],
            "z = 2 reaches the reduce on the then-path"
        );
    }

    #[test]
    fn slice_crosses_procedures() {
        let src = "program p global g: real; global h: real;\n\
             sub dbl(v: real) { v = v * 2.0; }\n\
             sub main() { g = 1.0; call dbl(g); h = g + 1.0; }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let slice = forward_slice(&icfg, &icfg, StmtId(1)); // g = 1.0
                                                            // dbl's v = v*2 (s0) and h = g+1 (s3) are influenced.
        assert!(
            slice.contains(&StmtId(0)),
            "callee statement in slice: {slice:?}"
        );
        assert!(slice.contains(&StmtId(3)));
    }

    #[test]
    fn overwritten_influence_stops() {
        let src = "program p global a: real; global b: real;\n\
             sub main() { a = 1.0; a = 2.0; b = a + 1.0; }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let slice = forward_slice(&icfg, &icfg, StmtId(0));
        assert_eq!(ids(&slice), vec![0], "strong redefinition cuts the slice");
    }
}
