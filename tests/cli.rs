//! Smoke tests for the `mpidfa` command-line tool (the binary a downstream
//! user runs on their own SMPL programs).

use std::process::Command;

fn mpidfa(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mpidfa"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn activity_on_bundled_figure1() {
    let (stdout, _, ok) = mpidfa(&["activity", "figure1", "--ind", "x", "--dep", "f"]);
    assert!(ok);
    assert!(stdout.contains("active storage: 32 bytes"), "{stdout}");
    assert!(stdout.contains("MPI-ICFG"));
}

#[test]
fn activity_modes_differ() {
    let (mpi, _, _) = mpidfa(&["activity", "figure1", "--ind", "x", "--dep", "f"]);
    let (naive, _, _) = mpidfa(&[
        "activity", "figure1", "--ind", "x", "--dep", "f", "--mode", "naive",
    ]);
    assert!(mpi.contains("32 bytes"));
    assert!(naive.contains("active storage: 0 bytes"), "{naive}");
}

#[test]
fn slice_with_and_without_comm() {
    let (with, _, _) = mpidfa(&["slice", "figure1", "--stmt", "0"]);
    let (without, _, _) = mpidfa(&["slice", "figure1", "--stmt", "0", "--no-comm"]);
    assert!(with.contains("[0, 4, 5, 6, 7, 8, 9, 10]"), "{with}");
    assert!(without.contains("[0, 4, 5, 6]"), "{without}");
}

#[test]
fn run_simulates_processes() {
    let (stdout, _, ok) = mpidfa(&["run", "figure1", "--nprocs", "2"]);
    assert!(ok);
    assert!(stdout.contains("rank 0: printed [9.0]"), "{stdout}");
}

#[test]
fn graph_emits_dot() {
    let (stdout, _, ok) = mpidfa(&["graph", "biostat", "--context", "lglik3"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("bcast(dmat)"));
}

#[test]
fn taint_lists_untrusted() {
    // Seeding `x` in figure1 shows sanitization: `x = 0` overwrites the
    // seed before anything flows, so nothing is untrusted.
    let (clean, _, ok) = mpidfa(&["taint", "figure1", "--source", "x"]);
    assert!(ok);
    assert!(clean.contains("untrusted: x"), "the seed itself: {clean}");
    assert!(
        !clean.contains("untrusted: y"),
        "sanitized before the send: {clean}"
    );
    assert!(!clean.contains("untrusted: f"), "{clean}");
    // With external reads as sources, biostat's broadcast input spreads.
    let (stdout, _, ok) = mpidfa(&["taint", "biostat", "--context", "lglik3", "--reads-tainted"]);
    assert!(ok);
    assert!(stdout.contains("untrusted: dmat"), "{stdout}");
    assert!(stdout.contains("untrusted: xlogl"), "{stdout}");
}

#[test]
fn file_input_and_errors() {
    let dir = std::env::temp_dir().join("mpidfa-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("ok.smpl");
    std::fs::write(
        &good,
        "program t global a: int; sub main() { a = mod(7, 4); }",
    )
    .unwrap();
    let (stdout, _, ok) = mpidfa(&["bitwidth", good.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("a"), "{stdout}");

    let bad = dir.join("bad.smpl");
    std::fs::write(&bad, "program t sub main() { q = ; }").unwrap();
    let (_, stderr, ok) = mpidfa(&["constants", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");

    let (_, stderr, ok) = mpidfa(&["constants", "/nonexistent/x.smpl"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = mpidfa(&["frobnicate", "figure1"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_required_flags_fail() {
    let (_, stderr, ok) = mpidfa(&["activity", "figure1"]);
    assert!(!ok);
    assert!(stderr.contains("--ind"), "{stderr}");
    let (_, stderr, ok) = mpidfa(&["slice", "figure1"]);
    assert!(!ok);
    assert!(stderr.contains("--stmt"), "{stderr}");
}
