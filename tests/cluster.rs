//! Targeted acceptance tests for the supervised cluster (`mpidfa serve
//! --shards N`): real worker processes, real SIGKILLs.
//!
//! The seeded fault sweep lives in `tests/cluster_chaos.rs`; these tests
//! pin the PR's acceptance criteria one by one so a regression names the
//! exact broken guarantee.

use mpi_dfa_service::{BackoffConfig, Cluster, ClusterConfig, HealthConfig, WorkerSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One request/response round-trip with a hard read timeout: a hung
/// cluster fails the test instead of wedging the suite.
fn rpc(addr: SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(&stream, "{line}").expect("write request");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response (hang?)");
    resp.trim_end().to_string()
}

/// The engine's determinism contract: hit ≡ miss ≡ bypass byte-wise, so
/// the cache label is the one legitimate difference between runs.
fn normalize(resp: &str) -> String {
    resp.replace("\"cache\":\"hit\"", "\"cache\":\"#\"")
        .replace("\"cache\":\"miss\"", "\"cache\":\"#\"")
        .replace("\"cache\":\"bypass\"", "\"cache\":\"#\"")
}

/// Start a cluster of real `mpidfa serve` worker processes sharing
/// `cache_dir`, tuned for fast restarts so tests stay quick.
fn start_cluster(shards: usize, cache_dir: &std::path::Path) -> Cluster {
    let mut worker = WorkerSpec::new(
        env!("CARGO_BIN_EXE_mpidfa"),
        vec![
            "serve".into(),
            "--cache-dir".into(),
            cache_dir.to_string_lossy().into_owned(),
            "--max-inflight".into(),
            "8".into(),
        ],
    );
    worker.backoff = BackoffConfig {
        base: Duration::from_millis(20),
        cap: Duration::from_millis(500),
        reset_after: Duration::from_secs(2),
    };
    worker.health = HealthConfig {
        interval: Duration::from_millis(150),
        timeout: Duration::from_millis(1500),
        miss_budget: 3,
    };
    Cluster::start(ClusterConfig::new(shards, worker), "127.0.0.1:0").expect("cluster start")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mpidfa-cluster-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance: a `kill -9` of one worker mid-burst never loses the daemon.
/// The supervisor restarts it within its backoff cap, `cache-stats`
/// reports the restart, and warm disk entries written before the kill
/// still hit after it.
#[test]
fn kill_dash_nine_mid_burst_never_loses_the_daemon() {
    let dir = tmp_dir("kill");
    let cluster = start_cluster(3, &dir);
    let addr = cluster.local_addr().unwrap();
    let supervisor = cluster.supervisor();
    let router = cluster.router();
    let serve = std::thread::spawn(move || cluster.run());

    // Prime the disk cache through the router and remember the answer.
    let line = r#"{"id":7,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#;
    let primed = rpc(addr, line);
    assert!(primed.contains("\"ok\":true"), "priming failed: {primed}");
    let owner = router.shard_for_line(line).expect("owner shard");
    let pre_epoch = supervisor.table().snapshot(owner).epoch;

    // Burst from several clients while the owner is SIGKILLed mid-flight.
    let responses: Vec<String> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..6).map(|_| s.spawn(move || rpc(addr, line))).collect();
        std::thread::sleep(Duration::from_millis(5));
        assert!(supervisor.kill_shard(owner), "kill_shard({owner})");
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });
    for resp in &responses {
        // Every client gets a structured line: the primed payload
        // (hedged or post-restart) or an overloaded shed with a hint.
        if resp.contains("\"ok\":true") {
            assert_eq!(normalize(resp), normalize(&primed), "payload diverged");
        } else {
            assert!(
                resp.contains("\"code\":\"overloaded\"") && resp.contains("\"retry_after_ms\""),
                "unstructured response under kill: {resp}"
            );
        }
    }

    // The supervisor brings the worker back within its backoff cap. (The
    // epoch pin matters: right after the kill the table still shows the
    // dead incarnation as alive for one monitor tick.)
    assert!(
        supervisor.wait_restarted(owner, pre_epoch, Duration::from_secs(15)),
        "owner shard was not restarted: {:?}",
        supervisor.table().snapshot(owner)
    );
    assert!(
        supervisor.wait_all_healthy(Duration::from_secs(15)),
        "fleet did not recover: {:?}",
        supervisor.table().snapshots()
    );
    // ...cache-stats reports the restart...
    let stats = rpc(addr, "{\"id\":8,\"kind\":\"cache-stats\"}");
    let snap = supervisor.table().snapshot(owner);
    assert!(snap.restarts >= 1, "no restart recorded: {snap:?}");
    assert!(
        stats.contains(&format!(
            "\"shard\":{owner},\"alive\":true,\"epoch\":{}",
            snap.epoch
        )),
        "cache-stats does not report the restarted shard: {stats}"
    );
    // ...and the disk entry written before the kill still hits after it.
    let warm = rpc(addr, line);
    assert!(
        warm.contains("\"cache\":\"hit\""),
        "warm entry lost: {warm}"
    );
    assert_eq!(normalize(&warm), normalize(&primed));

    let bye = rpc(addr, "{\"id\":9,\"kind\":\"shutdown\"}");
    assert!(bye.contains("\"stopping\":true"));
    serve.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: successful payloads are byte-identical at any topology —
/// a 3-shard cluster answers exactly like a single box, hit or miss.
#[test]
fn one_and_three_shard_topologies_answer_byte_identically() {
    let requests = [
        r#"{"id":1,"kind":"ping"}"#,
        r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#,
        r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"mode":"global"}"#,
        r#"{"id":4,"kind":"activity-at-location","program":"figure1","ind":["x"],"dep":["f"],"var":"z"}"#,
        r#"{"id":5,"kind":"table1-row","row":"Biostat"}"#,
        r#"{"id":6,"kind":"dot","program":"figure1"}"#,
    ];
    let mut answers: Vec<Vec<String>> = Vec::new();
    for shards in [1usize, 3] {
        let dir = tmp_dir(&format!("topo{shards}"));
        let cluster = start_cluster(shards, &dir);
        let addr = cluster.local_addr().unwrap();
        let serve = std::thread::spawn(move || cluster.run());
        // Twice each: the second pass reads hits, which must not change a
        // single payload byte.
        let mut got = Vec::new();
        for _ in 0..2 {
            for req in &requests {
                got.push(normalize(&rpc(addr, req)));
            }
        }
        answers.push(got);
        let _ = rpc(addr, "{\"id\":99,\"kind\":\"shutdown\"}");
        serve.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        answers[0], answers[1],
        "1-shard and 3-shard clusters diverged"
    );
}
