//! Resource budgets for every analysis entry point.
//!
//! Production static analyzers degrade under pressure instead of hanging:
//! each pipeline stage (clone expansion, comm-edge matching, fixpoint
//! solving) consumes from a [`Budget`] and reports *why* it stopped via
//! [`Exhaustion`] rather than running until killed. The degradation ladder
//! in `crates/analyses` uses these signals to step down to cheaper, still
//! sound configurations.
//!
//! Design notes:
//!
//! - The budget's currency is the **work unit**: one solver node transfer,
//!   one send/receive candidate-pair check, or one instantiated clone node.
//!   `max_work` caps the total; the wall-clock `deadline` and the
//!   cooperative [`CancelToken`] are polled only every
//!   [`CHECK_INTERVAL`] units so the hot loops stay cheap.
//! - [`Budget`] is a plain description; [`BudgetMeter`] is the running
//!   counter. A meter can be handed down through several stages so one
//!   budget governs the entire pipeline.
//! - All limits default to "unlimited", so existing call sites that use
//!   [`Budget::default`] behave exactly as before.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in work units) the deadline and cancellation token are
/// polled. A power of two so the modulo folds to a mask.
pub const CHECK_INTERVAL: u64 = 1024;

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap (node visits / pair checks / clone nodes) was hit.
    WorkUnits,
    /// The projected fact-memory requirement exceeds the cap.
    FactMemory,
    /// The cooperative cancellation token was triggered.
    Cancelled,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Deadline => write!(f, "wall-clock deadline exceeded"),
            Exhaustion::WorkUnits => write!(f, "work-unit cap exceeded"),
            Exhaustion::FactMemory => write!(f, "fact-memory cap exceeded"),
            Exhaustion::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Cooperative cancellation: cloneable handle over a shared flag.
///
/// Long-running analyses poll the token (via their [`BudgetMeter`]) every
/// [`CHECK_INTERVAL`] work units; any holder of a clone can cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. All clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A resource budget: every limit optional, absent limits are infinite.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cap on total work units (solver node visits, matcher pair checks,
    /// clone-expansion node instantiations).
    pub max_work: Option<u64>,
    /// Cap on the projected bytes of data-flow facts. Checked up front by
    /// the governor (facts are bitvectors of known size), not in hot loops.
    pub max_fact_bytes: Option<u64>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no limits; behaves exactly like pre-budget code.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Is every limit absent?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_work.is_none()
            && self.max_fact_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Set a deadline `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Set the work-unit cap.
    pub fn with_max_work(mut self, units: u64) -> Self {
        self.max_work = Some(units);
        self
    }

    /// Set the fact-memory cap in bytes.
    pub fn with_max_fact_bytes(mut self, bytes: u64) -> Self {
        self.max_fact_bytes = Some(bytes);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Start metering against this budget.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            budget: self.clone(),
            started: Instant::now(),
            work: 0,
            exhausted: None,
        }
    }

    /// The remaining budget after `spent`, for handing to the next ladder
    /// tier: work and wall-clock already consumed are subtracted, the
    /// deadline (an absolute instant) carries over unchanged.
    pub fn remaining_after(&self, spent: &BudgetSpent) -> Budget {
        Budget {
            deadline: self.deadline,
            max_work: self.max_work.map(|w| w.saturating_sub(spent.work)),
            max_fact_bytes: self.max_fact_bytes,
            cancel: self.cancel.clone(),
        }
    }
}

/// What a metered computation actually consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpent {
    /// Work units consumed.
    pub work: u64,
    /// Wall-clock time consumed.
    pub elapsed: Duration,
}

/// Running counter against a [`Budget`].
///
/// The typical loop charges one unit per step and bails out when
/// [`BudgetMeter::charge`] returns an [`Exhaustion`]:
///
/// ```
/// use mpi_dfa_core::budget::{Budget, Exhaustion};
/// let mut meter = Budget::unlimited().with_max_work(10).meter();
/// let mut stopped = None;
/// for _ in 0..100 {
///     if let Err(e) = meter.charge(1) {
///         stopped = Some(e);
///         break;
///     }
/// }
/// assert_eq!(stopped, Some(Exhaustion::WorkUnits));
/// ```
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: Budget,
    started: Instant,
    work: u64,
    exhausted: Option<Exhaustion>,
}

impl BudgetMeter {
    /// Charge `units` work units. Returns `Err` once the budget is
    /// exhausted (and keeps returning the same error afterwards, so loops
    /// need not special-case repeated polls).
    pub fn charge(&mut self, units: u64) -> Result<(), Exhaustion> {
        if let Some(e) = self.exhausted {
            return Err(e);
        }
        let before = self.work;
        self.work = self.work.saturating_add(units);
        if let Some(cap) = self.budget.max_work {
            if self.work > cap {
                return Err(self.mark(Exhaustion::WorkUnits));
            }
        }
        // Deadline / cancellation are polled only when the charge crosses a
        // CHECK_INTERVAL boundary, keeping hot loops cheap.
        if before / CHECK_INTERVAL != self.work / CHECK_INTERVAL || units >= CHECK_INTERVAL {
            self.poll()?;
        }
        Ok(())
    }

    /// Immediately poll the deadline and cancellation token.
    pub fn poll(&mut self) -> Result<(), Exhaustion> {
        if let Some(e) = self.exhausted {
            return Err(e);
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Err(self.mark(Exhaustion::Deadline));
            }
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                return Err(self.mark(Exhaustion::Cancelled));
            }
        }
        Ok(())
    }

    /// Check a projected fact-memory requirement against the cap without
    /// consuming work units.
    pub fn check_fact_bytes(&mut self, bytes: u64) -> Result<(), Exhaustion> {
        if let Some(e) = self.exhausted {
            return Err(e);
        }
        if let Some(cap) = self.budget.max_fact_bytes {
            if bytes > cap {
                return Err(self.mark(Exhaustion::FactMemory));
            }
        }
        Ok(())
    }

    fn mark(&mut self, e: Exhaustion) -> Exhaustion {
        self.exhausted = Some(e);
        e
    }

    /// Why the meter stopped, if it did.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhausted
    }

    /// Work units consumed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Consumption so far (work units + elapsed wall clock).
    pub fn spent(&self) -> BudgetSpent {
        BudgetSpent {
            work: self.work,
            elapsed: self.started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut meter = Budget::unlimited().meter();
        for _ in 0..10_000 {
            meter.charge(1).expect("unlimited");
        }
        assert!(meter.exhaustion().is_none());
        assert_eq!(meter.work(), 10_000);
    }

    #[test]
    fn work_cap_trips_exactly_past_cap() {
        let mut meter = Budget::unlimited().with_max_work(5).meter();
        for _ in 0..5 {
            meter.charge(1).expect("within cap");
        }
        assert_eq!(meter.charge(1), Err(Exhaustion::WorkUnits));
        // Sticky afterwards.
        assert_eq!(meter.charge(1), Err(Exhaustion::WorkUnits));
        assert_eq!(meter.exhaustion(), Some(Exhaustion::WorkUnits));
    }

    #[test]
    fn deadline_in_past_trips_on_poll() {
        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        };
        let mut meter = budget.meter();
        assert_eq!(meter.poll(), Err(Exhaustion::Deadline));
        // A big charge also polls immediately.
        let mut meter2 = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        }
        .meter();
        assert_eq!(meter2.charge(CHECK_INTERVAL), Err(Exhaustion::Deadline));
    }

    #[test]
    fn cancel_token_observed_across_clones() {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel(token.clone());
        let mut meter = budget.meter();
        meter.poll().expect("not yet cancelled");
        token.cancel();
        assert_eq!(meter.poll(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn fact_memory_cap() {
        let mut meter = Budget::unlimited().with_max_fact_bytes(1000).meter();
        meter.check_fact_bytes(999).expect("under cap");
        assert_eq!(meter.check_fact_bytes(1001), Err(Exhaustion::FactMemory));
    }

    #[test]
    fn remaining_after_subtracts_work() {
        let budget = Budget::unlimited().with_max_work(100);
        let spent = BudgetSpent {
            work: 30,
            elapsed: Duration::from_millis(5),
        };
        let rest = budget.remaining_after(&spent);
        assert_eq!(rest.max_work, Some(70));
        // Saturates at zero.
        let over = BudgetSpent {
            work: 1000,
            elapsed: Duration::ZERO,
        };
        assert_eq!(budget.remaining_after(&over).max_work, Some(0));
    }

    #[test]
    fn is_unlimited_reflects_limits() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::unlimited().with_max_work(1).is_unlimited());
        assert!(!Budget::unlimited().with_deadline_ms(1).is_unlimited());
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            Exhaustion::Deadline.to_string(),
            "wall-clock deadline exceeded"
        );
        assert_eq!(Exhaustion::WorkUnits.to_string(), "work-unit cap exceeded");
        assert_eq!(
            Exhaustion::FactMemory.to_string(),
            "fact-memory cap exceeded"
        );
        assert_eq!(Exhaustion::Cancelled.to_string(), "cancelled");
    }
}
