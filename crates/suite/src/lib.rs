//! # mpi-dfa-suite — benchmark programs and the experiment harness
//!
//! SMPL reimplementations of the paper's benchmark suite (Biostat, SOR,
//! NAS CG/LU/MG, ASCI Sweep3d plus the Figure 1 program) and a runner that
//! regenerates **Table 1** (solver iterations, active bytes, derivative
//! bytes, % decrease for ICFG vs MPI-ICFG activity analysis) and
//! **Figure 4** (megabytes saved per benchmark).
//!
//! See `cargo run -p mpi-dfa-suite --bin repro -- table1 | fig4`.

pub mod experiments;
pub mod fuzz;
pub mod gen;
pub mod programs;
pub mod rowcache;
pub mod runner;
pub mod schedules;

pub use experiments::{all as all_experiments, by_id, ExperimentSpec};
pub use fuzz::{FuzzConfig, FuzzReport};
pub use rowcache::RowCache;
pub use runner::{run_all, run_experiment, MeasuredRow};
