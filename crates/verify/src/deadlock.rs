//! Predictive deadlock detection: cycle search over the static wait-for
//! graph induced by blocking communication.
//!
//! Blocking model (matching the interpreter): `send`/`isend` are eager
//! and never block; `recv` blocks until a matching send has executed;
//! the collectives (`barrier`, `bcast`, `reduce`, `allreduce`) block
//! until every participating rank arrives; `irecv`/`wait` never block.
//!
//! The wait-for graph quotients the SPMD execution onto program nodes:
//!
//! * **comm-wait** `R → S`: blocking receive `R` cannot complete before
//!   some matched send `S` executes (one edge per comm predecessor);
//! * **order-wait** `X → B`: operation `X` cannot start before blocking
//!   op `B` completes, where `B` *must-precede* `X` — `B` lies on every
//!   control path from the context entry to `X` — and the two can
//!   execute on a common rank (their [`RankGuard`]s overlap).
//!
//! Must-precedence (rather than may-precedence) is what keeps a lone
//! receive inside a loop from waiting on itself through the back edge;
//! it is computed as an intersection-meet forward analysis through the
//! [`Solver`] builder. A strongly connected component in the wait-for
//! graph is a **candidate** deadlock cycle: the verdict is predictive in
//! both directions (neither sound nor complete — rank-dependent sends,
//! wildcard receives, and message counts are abstracted away), which is
//! why every flagged cycle gets a schedule-explorer realization attempt
//! (see `crosscheck`).

use crate::guard::Guards;
use crate::report::Diag;
use crate::VerifyConfig;
use mpi_dfa_core::budget::Budget;
use mpi_dfa_core::graph::NodeId;
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{SolveParams, Solver};
use mpi_dfa_core::varset::VarSet;
use mpi_dfa_graph::icfg::Icfg;
use mpi_dfa_graph::mpi::{fold_int, MpiIcfg};
use mpi_dfa_graph::node::{MpiKind, NodeKind};
use std::collections::HashMap;

/// Cap on reported cycles (the count of SCCs is always exact).
pub const CYCLE_CAP: usize = 8;

/// One candidate deadlock cycle, as a closed walk of wait-for edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The participating operations in walk order; the last waits on the
    /// first.
    pub nodes: Vec<Diag>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Operations participating in at least one wait-for edge.
    pub waitfor_nodes: usize,
    pub waitfor_edges: usize,
    /// Number of cyclic strongly connected components found.
    pub cyclic_sccs: usize,
    pub cycles: Vec<Cycle>,
}

impl DeadlockReport {
    pub fn is_clean(&self) -> bool {
        self.cyclic_sccs == 0
    }
}

/// True for operations that can block a rank.
fn is_blocking(kind: MpiKind) -> bool {
    matches!(
        kind,
        MpiKind::Recv | MpiKind::Barrier | MpiKind::Bcast | MpiKind::Reduce | MpiKind::Allreduce
    )
}

/// Intersection-meet forward analysis: the set of blocking operations on
/// *every* path from the context entry to each node.
struct MustBlockReach {
    /// `bit_of[node.index()]` = universe index of a blocking node.
    bit_of: Vec<u32>,
    universe: usize,
}

const NO_BIT: u32 = u32::MAX;

impl MustBlockReach {
    fn new(icfg: &Icfg, blocking: &[NodeId]) -> Self {
        let mut bit_of = vec![NO_BIT; mpi_dfa_core::graph::FlowGraph::num_nodes(icfg)];
        for (i, &n) in blocking.iter().enumerate() {
            bit_of[n.index()] = i as u32;
        }
        MustBlockReach {
            bit_of,
            universe: blocking.len(),
        }
    }
}

impl Dataflow for MustBlockReach {
    type Fact = VarSet;
    type CommFact = ();

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> VarSet {
        VarSet::full(self.universe)
    }

    fn boundary(&self) -> VarSet {
        VarSet::empty(self.universe)
    }

    fn meet_into(&self, dst: &mut VarSet, src: &VarSet) -> bool {
        dst.intersect_into(src)
    }

    fn transfer(&self, node: NodeId, input: &VarSet, _comm: &[()]) -> VarSet {
        let b = self.bit_of[node.index()];
        if b == NO_BIT {
            input.clone()
        } else {
            let mut f = input.clone();
            f.insert(b as usize);
            f
        }
    }

    fn comm_transfer(&self, _node: NodeId, _input: &VarSet) {}

    // Must-precedence is a global property of the interprocedural paths;
    // the identity `translate` across call/return edges is exact here.
}

pub struct DeadlockError(pub String);

pub fn analyze(
    g: &MpiIcfg,
    guards: &Guards,
    reachable: &[bool],
    cfg: &VerifyConfig,
    budget: &Budget,
) -> Result<DeadlockReport, DeadlockError> {
    let mut span = mpi_dfa_core::telemetry::span("verify", "deadlock");
    let icfg = g.icfg();
    let live = |n: NodeId| reachable.get(n.index()).copied().unwrap_or(false);

    let blocking: Vec<NodeId> = icfg
        .mpi_nodes()
        .iter()
        .copied()
        .filter(|&n| {
            live(n) && matches!(&icfg.payload(n).kind, NodeKind::Mpi(m) if is_blocking(m.kind))
        })
        .collect();

    let problem = MustBlockReach::new(icfg, &blocking);
    let sol = Solver::new(&problem, g)
        .params(SolveParams {
            max_passes: cfg.max_passes,
            budget: budget.clone(),
            ..SolveParams::default()
        })
        .run();
    sol.stats.publish_metrics("verify_deadlock");
    if !sol.stats.converged {
        let why = match &sol.stats.exhausted {
            Some(e) => format!("budget exhausted: {e:?}"),
            None => "pass bound hit".to_string(),
        };
        return Err(DeadlockError(format!(
            "deadlock must-precede solve did not converge ({why})"
        )));
    }

    let guard_of = |n: NodeId| match icfg.payload(n).stmt {
        Some(sid) => guards.of(sid).clone(),
        None => crate::guard::RankGuard::any(),
    };
    let info = |n: NodeId| match &icfg.payload(n).kind {
        NodeKind::Mpi(m) => m,
        _ => unreachable!("mpi_nodes() yields MPI payloads"),
    };

    // Wait-for adjacency over MPI nodes, deduplicated and deterministic.
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut edges = 0usize;
    let mut add = |adj: &mut HashMap<NodeId, Vec<NodeId>>, from: NodeId, to: NodeId| {
        let v = adj.entry(from).or_default();
        if !v.contains(&to) {
            v.push(to);
            edges += 1;
        }
    };
    let nprocs = cfg.nprocs;

    // comm-wait: receive → matched send, filtered by constant-rank
    // feasibility when the peer expressions fold.
    for &r in icfg.mpi_nodes() {
        if !live(r) {
            continue;
        }
        let rm = info(r);
        if rm.kind != MpiKind::Recv {
            continue;
        }
        let r_guard = guard_of(r);
        let r_src = rm
            .peer
            .as_ref()
            .filter(|p| !p.is_any)
            .and_then(|p| p.expr.as_ref())
            .and_then(fold_int);
        for s in g.comm_preds(r) {
            if !live(s) {
                continue;
            }
            let sm = info(s);
            if !sm.kind.is_p2p_send() {
                continue;
            }
            // The awaited send runs on rank `r_src` (if constant): drop the
            // edge when the send's guard excludes that rank.
            if let Some(src) = r_src {
                if src < 0 || src >= nprocs as i64 {
                    continue;
                }
                if !guard_of(s).admits(src as usize, nprocs) {
                    continue;
                }
            }
            // Symmetrically, the receive runs on the send's destination.
            let s_dst = sm
                .peer
                .as_ref()
                .filter(|p| !p.is_any)
                .and_then(|p| p.expr.as_ref())
                .and_then(fold_int);
            if let Some(dst) = s_dst {
                if dst < 0 || dst >= nprocs as i64 {
                    continue;
                }
                if !r_guard.admits(dst as usize, nprocs) {
                    continue;
                }
            }
            add(&mut adj, r, s);
        }
    }

    // order-wait: operation → blocking op that must precede it on a
    // common rank.
    for &x in icfg.mpi_nodes() {
        if !live(x) {
            continue;
        }
        let x_guard = guard_of(x);
        let must = sol.before(x);
        for bit in must.iter() {
            let b = blocking[bit];
            if b == x {
                continue;
            }
            if x_guard.overlaps(&guard_of(b), nprocs) {
                add(&mut adj, x, b);
            }
        }
    }

    // Cycle search: Tarjan SCC over the wait-for adjacency.
    let mut order: Vec<NodeId> = adj.keys().copied().collect();
    for targets in adj.values() {
        order.extend(targets.iter().copied());
    }
    order.sort_unstable_by_key(|n| n.0);
    order.dedup();
    let sccs = tarjan(&order, &adj);

    let mut cycles = Vec::new();
    let mut cyclic = 0usize;
    for scc in &sccs {
        let is_cycle = scc.len() > 1 || adj.get(&scc[0]).is_some_and(|ts| ts.contains(&scc[0]));
        if !is_cycle {
            continue;
        }
        cyclic += 1;
        if cycles.len() < CYCLE_CAP {
            let walk = extract_cycle(scc, &adj);
            cycles.push(Cycle {
                nodes: walk
                    .into_iter()
                    .map(|n| {
                        let reason = match info(n).kind {
                            MpiKind::Recv => "waits for a matched send".to_string(),
                            k if is_blocking(k) => "all ranks must arrive".to_string(),
                            _ => "must execute after the next entry".to_string(),
                        };
                        Diag::at(g, n, reason)
                    })
                    .collect(),
            });
        }
    }

    span.arg("edges", edges.to_string());
    span.arg("cycles", cyclic.to_string());
    Ok(DeadlockReport {
        waitfor_nodes: order.len(),
        waitfor_edges: edges,
        cyclic_sccs: cyclic,
        cycles,
    })
}

/// Iterative Tarjan over the wait-for adjacency; SCCs come out in a
/// deterministic order (roots visited in ascending node id).
fn tarjan(order: &[NodeId], adj: &HashMap<NodeId, Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    #[derive(Clone, Copy)]
    struct Meta {
        index: u32,
        low: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut meta: HashMap<NodeId, Meta> = HashMap::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();
    let mut counter = 0u32;
    let empty: Vec<NodeId> = Vec::new();

    for &root in order {
        if meta.get(&root).is_some_and(|m| m.visited) {
            continue;
        }
        // Explicit DFS frame: (node, next child index).
        let mut frames: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (n, ref mut next)) = frames.last_mut() {
            if *next == 0 {
                meta.insert(
                    n,
                    Meta {
                        index: counter,
                        low: counter,
                        on_stack: true,
                        visited: true,
                    },
                );
                counter += 1;
                stack.push(n);
            }
            let succs = adj.get(&n).unwrap_or(&empty);
            if *next < succs.len() {
                let child = succs[*next];
                *next += 1;
                match meta.get(&child) {
                    Some(cm) if cm.visited => {
                        if cm.on_stack {
                            let cl = cm.index;
                            let m = meta.get_mut(&n).unwrap();
                            m.low = m.low.min(cl);
                        }
                    }
                    _ => frames.push((child, 0)),
                }
            } else {
                frames.pop();
                let m = *meta.get(&n).unwrap();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pl = meta.get_mut(&parent).unwrap();
                    pl.low = pl.low.min(m.low);
                }
                if m.low == m.index {
                    let mut scc = Vec::new();
                    while let Some(top) = stack.pop() {
                        meta.get_mut(&top).unwrap().on_stack = false;
                        scc.push(top);
                        if top == n {
                            break;
                        }
                    }
                    scc.sort_unstable_by_key(|x| x.0);
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Extract one concrete closed walk inside an SCC, starting from its
/// smallest node id.
fn extract_cycle(scc: &[NodeId], adj: &HashMap<NodeId, Vec<NodeId>>) -> Vec<NodeId> {
    let inside = |n: NodeId| scc.contains(&n);
    let start = scc[0];
    let mut walk = vec![start];
    let mut cur = start;
    loop {
        let next = adj
            .get(&cur)
            .and_then(|ts| ts.iter().copied().find(|&t| inside(t)));
        match next {
            Some(t) if t == start => break,
            Some(t) if walk.contains(&t) => break, // inner loop; close here
            Some(t) => {
                walk.push(t);
                cur = t;
            }
            None => break,
        }
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{build, reachable_from_entry};

    fn run(src: &str, nprocs: usize) -> DeadlockReport {
        let g = build(src);
        let guards = Guards::build(&g.icfg().ir.unit.program);
        let reach = reachable_from_entry(&g);
        let cfg = VerifyConfig {
            nprocs,
            ..VerifyConfig::default()
        };
        analyze(&g, &guards, &reach, &cfg, &Budget::unlimited())
            .map_err(|e| e.0)
            .unwrap()
    }

    #[test]
    fn head_to_head_receives_cycle() {
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() { recv(y, 1 - rank(), 5); send(x, 1 - rank(), 5); }",
            2,
        );
        assert_eq!(r.cyclic_sccs, 1, "{r:#?}");
        let cycle = &r.cycles[0];
        let ops: Vec<&str> = cycle.nodes.iter().map(|d| d.op.as_str()).collect();
        assert!(ops.iter().any(|o| o.starts_with("recv")), "{ops:?}");
        assert!(ops.iter().any(|o| o.starts_with("send")), "{ops:?}");
    }

    #[test]
    fn figure1_pattern_is_safe() {
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); } }",
            2,
        );
        assert!(r.is_clean(), "{r:#?}");
    }

    #[test]
    fn send_before_recv_is_safe() {
        // Eager sends: both ranks send first, then receive — no cycle.
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() { send(x, 1 - rank(), 5); recv(y, 1 - rank(), 5); }",
            2,
        );
        assert!(r.is_clean(), "{r:#?}");
    }

    #[test]
    fn recv_in_loop_does_not_wait_on_itself() {
        // The loop back edge must not manufacture a self-wait: the first
        // iteration's receive has no blocking must-predecessor.
        let r = run(
            "program p global x: real; global y: real; global i: int;\n\
             sub main() {\n\
               if (rank() == 0) {\n\
                 for i = 1, 3 { send(x, 1, 5); }\n\
               } else {\n\
                 for i = 1, 3 { recv(y, 0, 5); }\n\
               }\n\
             }",
            2,
        );
        assert!(r.is_clean(), "{r:#?}");
    }

    #[test]
    fn rank_guards_break_false_cycles() {
        // recv-then-send under rank 0, send-then-recv under rank 1: the
        // rank-0 receive waits on the rank-1 send, which has no blocking
        // must-predecessor on rank 1 — no cycle.
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() {\n\
               if (rank() == 0) { recv(y, 1, 5); send(x, 1, 6); }\n\
               else { send(x, 0, 5); recv(y, 0, 6); }\n\
             }",
            2,
        );
        assert!(r.is_clean(), "{r:#?}");
    }
}
