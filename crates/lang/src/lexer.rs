//! Hand-written lexer for SMPL.
//!
//! The lexer produces a flat `Vec<Token>` ending in a single `Eof` token.
//! `//` introduces a comment running to end of line. Numeric literals are
//! integers unless they contain `.` or an exponent, in which case they are
//! reals.

use crate::error::{Diagnostic, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Maximum accepted source size in bytes. Real SMPL programs (including
/// the generated stress suite) are well under a megabyte; anything larger
/// is a runaway input and is rejected up front instead of being fed to the
/// token vector, the parser, and every downstream pass. Spans also store
/// byte offsets as `u32`, so this cap keeps them exact.
pub const MAX_SOURCE_BYTES: usize = 16 * 1024 * 1024;

/// Lex `src` into tokens. Returns the first lexical error encountered.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    if src.len() > MAX_SOURCE_BYTES {
        return Err(Diagnostic::new(
            Phase::Lex,
            Span::new(0, 0, 1, 1),
            format!(
                "source is {} bytes; the maximum accepted size is {} bytes",
                src.len(),
                MAX_SOURCE_BYTES
            ),
        ));
    }
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while self.pos < self.src.len() {
            self.skip_trivia();
            if self.pos >= self.src.len() {
                break;
            }
            self.scan_token()?;
        }
        let span = Span::new(self.pos as u32, self.pos as u32, self.line, self.col);
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span,
        });
        Ok(self.tokens)
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn here(&self) -> (u32, u32, u32) {
        (self.pos as u32, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, start: (u32, u32, u32)) {
        let span = Span::new(start.0, self.pos as u32, start.1, start.2);
        self.tokens.push(Token { kind, span });
    }

    fn scan_token(&mut self) -> Result<(), Diagnostic> {
        let start = self.here();
        let c = self.peek();
        match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let s = self.scan_ident();
                let kind = TokenKind::keyword(&s).unwrap_or(TokenKind::Ident(s));
                self.push(kind, start);
            }
            b'0'..=b'9' => {
                let kind = self.scan_number(start)?;
                self.push(kind, start);
            }
            _ => {
                self.bump();
                let kind = match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b',' => TokenKind::Comma,
                    b';' => TokenKind::Semi,
                    b':' => TokenKind::Colon,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'=' => {
                        if self.peek() == b'=' {
                            self.bump();
                            TokenKind::EqEq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    b'!' => {
                        if self.peek() == b'=' {
                            self.bump();
                            TokenKind::NotEq
                        } else {
                            TokenKind::Not
                        }
                    }
                    b'<' => {
                        if self.peek() == b'=' {
                            self.bump();
                            TokenKind::Le
                        } else {
                            TokenKind::Lt
                        }
                    }
                    b'>' => {
                        if self.peek() == b'=' {
                            self.bump();
                            TokenKind::Ge
                        } else {
                            TokenKind::Gt
                        }
                    }
                    b'&' => {
                        if self.peek() == b'&' {
                            self.bump();
                            TokenKind::AndAnd
                        } else {
                            return Err(self.err(start, "expected `&&`"));
                        }
                    }
                    b'|' => {
                        if self.peek() == b'|' {
                            self.bump();
                            TokenKind::OrOr
                        } else {
                            return Err(self.err(start, "expected `||`"));
                        }
                    }
                    other => {
                        return Err(
                            self.err(start, format!("unexpected character `{}`", other as char))
                        );
                    }
                };
                self.push(kind, start);
            }
        }
        Ok(())
    }

    fn scan_ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn scan_number(&mut self, start: (u32, u32, u32)) -> Result<TokenKind, Diagnostic> {
        let begin = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_real = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_real = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let sign = matches!(self.peek2(), b'+' | b'-');
            let digit_at = if sign { self.pos + 2 } else { self.pos + 1 };
            if self.src.get(digit_at).is_some_and(u8::is_ascii_digit) {
                is_real = true;
                self.bump(); // e
                if sign {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos]).expect("ascii digits");
        if is_real {
            text.parse::<f64>()
                .map(TokenKind::RealLit)
                .map_err(|e| self.err(start, format!("invalid real literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|e| self.err(start, format!("invalid integer literal: {e}")))
        }
    }

    fn err(&self, start: (u32, u32, u32), msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(
            Phase::Lex,
            Span::new(start.0, self.pos as u32, start.1, start.2),
            msg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("   \n\t "), vec![Eof]);
    }

    #[test]
    fn oversized_source_is_rejected_up_front() {
        let big = "x ".repeat(MAX_SOURCE_BYTES / 2 + 1);
        let e = lex(&big).unwrap_err();
        assert!(e.message.contains("maximum accepted size"), "{e}");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("// nothing\nx // trailing\n"),
            vec![Ident("x".into()), Eof]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            kinds("sub subx var vary"),
            vec![Sub, Ident("subx".into()), Var, Ident("vary".into()), Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![IntLit(42), Eof]);
        assert_eq!(kinds("3.5"), vec![RealLit(3.5), Eof]);
        assert_eq!(kinds("1e3"), vec![RealLit(1000.0), Eof]);
        assert_eq!(kinds("2.5e-1"), vec![RealLit(0.25), Eof]);
        // `1.` without following digit is int then error-free only if `.` starts
        // something else; here `.` is not a token so it errors.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn range_like_expression_lexes() {
        // `for i = 1, n` style commas
        assert_eq!(
            kinds("1, n"),
            vec![IntLit(1), Comma, Ident("n".into()), Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || ="),
            vec![EqEq, NotEq, Le, Ge, AndAnd, OrOr, Assign, Eof]
        );
        assert_eq!(kinds("<>!"), vec![Lt, Gt, Not, Eof]);
    }

    #[test]
    fn punctuation_and_ops() {
        assert_eq!(
            kinds("a[i] = b + c * 2;"),
            vec![
                Ident("a".into()),
                LBracket,
                Ident("i".into()),
                RBracket,
                Assign,
                Ident("b".into()),
                Plus,
                Ident("c".into()),
                Star,
                IntLit(2),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn bad_characters_error() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains("unexpected character"), "{e}");
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn mpi_keywords() {
        assert_eq!(
            kinds("send recv bcast reduce allreduce barrier SUM ANY"),
            vec![Send, Recv, Bcast, Reduce, Allreduce, Barrier, OpSum, Any, Eof]
        );
    }
}
