//! Symbol tables produced by semantic analysis.
//!
//! Names resolve with two scopes: subroutine scope (parameters and locals)
//! shadowing program scope (globals). The analysis crates intern these symbols
//! into abstract locations; here we only record names, types, and kinds.

use crate::span::Span;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Where a resolved name lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKind {
    /// Index into [`ProgramSymbols::globals`].
    Global(usize),
    /// Index into the subroutine's parameter list.
    Param(usize),
    /// Index into the subroutine's local list.
    Local(usize),
}

impl fmt::Display for SymKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymKind::Global(i) => write!(f, "global#{i}"),
            SymKind::Param(i) => write!(f, "param#{i}"),
            SymKind::Local(i) => write!(f, "local#{i}"),
        }
    }
}

/// A declared symbol.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// Per-subroutine symbols.
#[derive(Debug, Clone, Default)]
pub struct SubSymbols {
    pub params: Vec<SymbolInfo>,
    pub locals: Vec<SymbolInfo>,
    by_name: HashMap<String, SymKind>,
}

impl SubSymbols {
    pub(crate) fn insert_param(&mut self, info: SymbolInfo) -> bool {
        if self.by_name.contains_key(&info.name) {
            return false;
        }
        let idx = self.params.len();
        self.by_name.insert(info.name.clone(), SymKind::Param(idx));
        self.params.push(info);
        true
    }

    pub(crate) fn insert_local(&mut self, info: SymbolInfo) -> bool {
        if self.by_name.contains_key(&info.name) {
            return false;
        }
        let idx = self.locals.len();
        self.by_name.insert(info.name.clone(), SymKind::Local(idx));
        self.locals.push(info);
        true
    }

    /// Look up a name in subroutine scope only (no globals).
    pub fn lookup_here(&self, name: &str) -> Option<SymKind> {
        self.by_name.get(name).copied()
    }
}

/// All symbols of a checked program.
#[derive(Debug, Clone, Default)]
pub struct ProgramSymbols {
    pub globals: Vec<SymbolInfo>,
    globals_by_name: HashMap<String, usize>,
    subs: HashMap<String, SubSymbols>,
}

impl ProgramSymbols {
    pub(crate) fn insert_global(&mut self, info: SymbolInfo) -> bool {
        if self.globals_by_name.contains_key(&info.name) {
            return false;
        }
        self.globals_by_name
            .insert(info.name.clone(), self.globals.len());
        self.globals.push(info);
        true
    }

    pub(crate) fn insert_sub(&mut self, name: &str, syms: SubSymbols) {
        self.subs.insert(name.to_string(), syms);
    }

    /// Symbols of subroutine `name` (panics if unknown; sema guarantees
    /// every parsed subroutine has an entry).
    pub fn sub(&self, name: &str) -> &SubSymbols {
        self.subs
            .get(name)
            .unwrap_or_else(|| panic!("unknown subroutine `{name}`"))
    }

    pub fn has_sub(&self, name: &str) -> bool {
        self.subs.contains_key(name)
    }

    /// Resolve `name` as seen from inside `sub_name`: subroutine scope first,
    /// then globals.
    pub fn resolve(&self, sub_name: &str, name: &str) -> Option<SymKind> {
        if let Some(k) = self.sub(sub_name).lookup_here(name) {
            return Some(k);
        }
        self.globals_by_name.get(name).map(|&i| SymKind::Global(i))
    }

    /// The declared type of a resolved symbol.
    pub fn type_of(&self, sub_name: &str, kind: SymKind) -> &Type {
        match kind {
            SymKind::Global(i) => &self.globals[i].ty,
            SymKind::Param(i) => &self.sub(sub_name).params[i].ty,
            SymKind::Local(i) => &self.sub(sub_name).locals[i].ty,
        }
    }

    /// The declared info of a resolved symbol.
    pub fn info_of(&self, sub_name: &str, kind: SymKind) -> &SymbolInfo {
        match kind {
            SymKind::Global(i) => &self.globals[i],
            SymKind::Param(i) => &self.sub(sub_name).params[i],
            SymKind::Local(i) => &self.sub(sub_name).locals[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BaseType, Type};

    fn info(name: &str) -> SymbolInfo {
        SymbolInfo {
            name: name.into(),
            ty: Type::scalar(BaseType::Real),
            span: Span::DUMMY,
        }
    }

    #[test]
    fn local_shadows_global() {
        let mut ps = ProgramSymbols::default();
        assert!(ps.insert_global(info("x")));
        let mut ss = SubSymbols::default();
        assert!(ss.insert_local(info("x")));
        ps.insert_sub("f", ss);
        assert_eq!(ps.resolve("f", "x"), Some(SymKind::Local(0)));
    }

    #[test]
    fn param_and_global_resolution() {
        let mut ps = ProgramSymbols::default();
        assert!(ps.insert_global(info("g")));
        let mut ss = SubSymbols::default();
        assert!(ss.insert_param(info("p")));
        ps.insert_sub("f", ss);
        assert_eq!(ps.resolve("f", "p"), Some(SymKind::Param(0)));
        assert_eq!(ps.resolve("f", "g"), Some(SymKind::Global(0)));
        assert_eq!(ps.resolve("f", "q"), None);
    }

    #[test]
    fn duplicates_rejected() {
        let mut ps = ProgramSymbols::default();
        assert!(ps.insert_global(info("x")));
        assert!(!ps.insert_global(info("x")));
        let mut ss = SubSymbols::default();
        assert!(ss.insert_param(info("a")));
        assert!(
            !ss.insert_local(info("a")),
            "local clashing with param rejected"
        );
    }
}
