//! Acceptance tests for cluster-wide observability: trace-context
//! propagation through the hedging router, the `@tele` worker telemetry
//! stream, the access log, and the merged cluster `metrics` scrape —
//! against REAL `mpidfa serve` worker processes, including a SIGKILL of
//! the owner shard mid-request.

use mpi_dfa_service::{
    AccessRecord, BackoffConfig, Cluster, ClusterConfig, HealthConfig, TelemetryHub, WorkerSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn rpc(addr: SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(&stream, "{line}").expect("write request");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response (hang?)");
    resp.trim_end().to_string()
}

/// Start a cluster of real worker processes with `--telemetry-stream`
/// (the flag the CLI cluster spawner always appends) wired into a fresh
/// [`TelemetryHub`] spooling under `log_dir`.
fn start_obs_cluster(
    shards: usize,
    cache_dir: &std::path::Path,
    log_dir: &std::path::Path,
) -> (Cluster, Arc<TelemetryHub>) {
    let mut worker = WorkerSpec::new(
        env!("CARGO_BIN_EXE_mpidfa"),
        vec![
            "serve".into(),
            "--cache-dir".into(),
            cache_dir.to_string_lossy().into_owned(),
            "--max-inflight".into(),
            "8".into(),
            "--telemetry-stream".into(),
        ],
    );
    worker.backoff = BackoffConfig {
        base: Duration::from_millis(20),
        cap: Duration::from_millis(500),
        reset_after: Duration::from_secs(2),
    };
    worker.health = HealthConfig {
        interval: Duration::from_millis(150),
        timeout: Duration::from_millis(1500),
        miss_budget: 3,
    };
    let hub = TelemetryHub::new(Some(log_dir)).expect("hub");
    let cluster = Cluster::start_with_hub(
        ClusterConfig::new(shards, worker),
        "127.0.0.1:0",
        Some(Arc::clone(&hub)),
    )
    .expect("cluster start");
    (cluster, hub)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpidfa-obs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn parse_access(line: &str) -> AccessRecord {
    let v = mpi_dfa_service::json::parse(line).expect("access line parses");
    AccessRecord::parse(&v).expect("access record shape")
}

/// Acceptance: a client-minted trace id survives the hedging router even
/// when the owner shard is SIGKILLed mid-request — the retried/hedged
/// attempts reuse the same trace with a bumped attempt counter, and the
/// access log gets EXACTLY one line for the request, carrying that id.
#[test]
fn trace_id_survives_hedged_retry_with_one_access_line() {
    let cache = tmp_dir("hedge-cache");
    let logs = tmp_dir("hedge-logs");
    let (cluster, hub) = start_obs_cluster(3, &cache, &logs);
    let addr = cluster.local_addr().unwrap();
    let supervisor = cluster.supervisor();
    let router = cluster.router();
    let serve = std::thread::spawn(move || cluster.run());

    let trace_hex = "00000000000000000000cafe00001337";
    let line = format!(
        "{{\"id\":1,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\
         \"trace\":{{\"id\":\"{trace_hex}\",\"parent\":7,\"attempt\":0}}}}"
    );
    let owner = router.shard_for_line(&line).expect("owner shard");

    // SIGKILL the owner, then fire the traced request immediately: the
    // shard table still lists the dead incarnation as alive for one
    // monitor tick, so attempt 1 deterministically hits a dead worker and
    // the router must retry/hedge — reusing the client's trace id with a
    // bumped attempt counter. Whatever answers (a hedged sibling, the
    // restarted owner, or a structured shed), the trace id must appear in
    // exactly one access-log line.
    assert!(supervisor.kill_shard(owner), "kill_shard({owner})");
    let resp = rpc(addr, &line);
    assert!(
        resp.contains("\"ok\":true") || resp.contains("\"code\":\"overloaded\""),
        "unstructured response under kill: {resp}"
    );
    // Responses stay trace-free: determinism (hit ≡ recompute, routed ≡
    // direct) forbids request-varying fields in the payload.
    assert!(
        !resp.contains("trace"),
        "response leaked trace context: {resp}"
    );

    let access = hub.access_lines();
    let with_trace: Vec<&String> = access.iter().filter(|l| l.contains(trace_hex)).collect();
    assert_eq!(
        with_trace.len(),
        1,
        "expected exactly one access line for trace {trace_hex}, got {access:?}"
    );
    let rec = parse_access(with_trace[0]);
    assert_eq!(rec.trace, 0x0000_cafe_0000_1337u128);
    assert_eq!(rec.verb, "analyze");
    assert!(
        rec.attempts >= 2,
        "attempt 1 hit a SIGKILLed worker, so a retry/hedge must be recorded: {rec:?}"
    );
    if resp.contains("\"ok\":true") {
        assert!(rec.shard.is_some(), "ok response with no answering shard");
    }

    // The access spool on disk carries the same single line.
    let spooled = std::fs::read_to_string(logs.join("access.jsonl")).expect("access.jsonl");
    assert_eq!(
        spooled.lines().filter(|l| l.contains(trace_hex)).count(),
        1,
        "access spool diverged from memory: {spooled}"
    );

    assert!(
        supervisor.wait_all_healthy(Duration::from_secs(15)),
        "fleet did not recover"
    );
    let _ = rpc(addr, "{\"id\":9,\"kind\":\"shutdown\"}");
    serve.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&logs);
}

/// Acceptance: the worker telemetry stream reaches the hub — after a few
/// requests the merged trace holds spans from at least one worker process
/// under the client's trace id, stamped with the worker's merged-trace
/// pid (shard + 1) and incarnation epoch, and the span spool supports
/// offline `mpidfa trace` reconstruction.
#[test]
fn worker_spans_reach_the_hub_under_the_client_trace_id() {
    let cache = tmp_dir("spans-cache");
    let logs = tmp_dir("spans-logs");
    let (cluster, hub) = start_obs_cluster(3, &cache, &logs);
    let addr = cluster.local_addr().unwrap();
    let serve = std::thread::spawn(move || cluster.run());

    let trace_hex = "0000000000000000000000000000beef";
    let line = format!(
        "{{\"id\":2,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\
         \"trace\":{{\"id\":\"{trace_hex}\",\"parent\":41,\"attempt\":0}}}}"
    );
    let resp = rpc(addr, &line);
    assert!(resp.contains("\"ok\":true"), "analyze failed: {resp}");

    // Worker flushers run on a 150 ms cadence; poll the hub until the
    // request's spans arrive (bounded — a silent stream is a failure).
    let deadline = Instant::now() + Duration::from_secs(10);
    let spans = loop {
        let spans: Vec<_> = hub
            .spans()
            .into_iter()
            .filter(|s| s.trace == Some(0xbeefu128))
            .collect();
        if spans.iter().any(|s| s.pid >= 1 && s.name == "request") {
            break spans;
        }
        assert!(
            Instant::now() < deadline,
            "worker spans never reached the hub; got {spans:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    let worker_pid = spans.iter().find(|s| s.pid >= 1).unwrap().pid;
    let epoch = spans.iter().find(|s| s.pid == worker_pid).unwrap().epoch;
    assert!(
        (1..=3).contains(&worker_pid),
        "worker pid out of range: {worker_pid}"
    );
    assert!(epoch >= 1, "worker epoch not stamped");
    // The worker's outermost span carries the cross-process parent link
    // back to the router's route span.
    let request = spans
        .iter()
        .find(|s| s.pid == worker_pid && s.name == "request")
        .unwrap();
    assert!(
        request.remote_parent().is_some(),
        "worker request span lost its remote parent: {request:?}"
    );

    // Offline reconstruction from the spool names both processes.
    let spool = std::fs::read_to_string(logs.join("spans.jsonl")).expect("spans.jsonl");
    let access = std::fs::read_to_string(logs.join("access.jsonl")).unwrap_or_default();
    let report =
        mpi_dfa_service::obs::reconstruct_trace(&spool, &access, 0xbeefu128).expect("reconstruct");
    assert!(
        report.contains(&format!("shard {}/e{epoch}", worker_pid - 1)),
        "reconstruction lost the worker process: {report}"
    );

    let _ = rpc(addr, "{\"id\":9,\"kind\":\"shutdown\"}");
    serve.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&logs);
}

/// Acceptance: one `metrics` scrape against the router returns the
/// cluster-wide merge — router counters (sink on or off), worker
/// counters, the access-line total, and per-verb SLO histogram quantiles.
#[test]
fn metrics_verb_returns_cluster_wide_merge() {
    let cache = tmp_dir("metrics-cache");
    let logs = tmp_dir("metrics-logs");
    let (cluster, hub) = start_obs_cluster(3, &cache, &logs);
    let addr = cluster.local_addr().unwrap();
    let serve = std::thread::spawn(move || cluster.run());

    let line = r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#;
    for _ in 0..3 {
        let resp = rpc(addr, line);
        assert!(resp.contains("\"ok\":true"), "analyze failed: {resp}");
    }
    // Let at least one worker flush its cumulative counters.
    let deadline = Instant::now() + Duration::from_secs(10);
    let scrape = loop {
        let resp = rpc(addr, "{\"id\":4,\"kind\":\"metrics\"}");
        assert!(resp.contains("\"ok\":true"), "metrics verb failed: {resp}");
        assert!(
            resp.contains("\"cluster\":{\"shards\":3}"),
            "bad envelope: {resp}"
        );
        let v = mpi_dfa_service::json::parse(&resp).expect("metrics response parses");
        let prom = v
            .get("result")
            .and_then(|r| r.get("prometheus"))
            .and_then(|p| p.as_str())
            .expect("prometheus text in result")
            .to_string();
        if prom.contains("solver_passes_total") {
            break prom;
        }
        assert!(
            Instant::now() < deadline,
            "worker counters never reached the scrape:\n{prom}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    for needle in [
        // Router-side counters and end-to-end histograms are exact and
        // immediate (3 analyze requests; the `metrics` scrapes themselves
        // are control verbs and never counted).
        "router_requests_total 3",
        "access_log_lines_total 3",
        "mpidfa_request_e2e_latency_us{verb=\"analyze\",cache=\"all\",shard=\"all\",quantile=\"0.5\"}",
        "mpidfa_request_e2e_latency_us_count{verb=\"analyze\",cache=\"all\",shard=\"all\"} 3",
        // Worker-side histograms arrive with the telemetry stream (the
        // poll above waited for a worker flush).
        "mpidfa_request_latency_us{verb=\"analyze\",cache=\"all\",shard=\"all\",quantile=\"0.5\"}",
    ] {
        assert!(scrape.contains(needle), "scrape missing `{needle}`:\n{scrape}");
    }
    drop(hub);

    let _ = rpc(addr, "{\"id\":9,\"kind\":\"shutdown\"}");
    serve.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&logs);
}
