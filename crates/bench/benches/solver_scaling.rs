//! Solver scaling ablation (Section 4.2's complexity discussion).
//!
//! The paper bounds convergence by graph depth × number of variables and
//! observes that real iteration counts stay far below the bound. This bench
//! measures how the two solver strategies scale with generated-program size
//! and quantifies the round-robin vs worklist gap on a fixed program.

use mpi_dfa_analyses::activity::{self, ActivityConfig};
use mpi_dfa_analyses::consts::ReachingConsts;
use mpi_dfa_analyses::mpi_match::{build_mpi_icfg, Matching};
use mpi_dfa_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_dfa_core::solver::{Solver, Strategy};
use mpi_dfa_graph::icfg::ProgramIr;
use mpi_dfa_graph::mpi::MpiIcfg;
use mpi_dfa_suite::gen::{generate, GenConfig};
use std::hint::black_box;

fn graph_for(factor: usize) -> MpiIcfg {
    let src = generate(42, &GenConfig::scaled(factor));
    let ir = ProgramIr::from_source(&src).expect("generated program compiles");
    build_mpi_icfg(ir, "main", 1, Matching::ReachingConstants).expect("graph")
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling/activity");
    group.sample_size(10);
    // Collective matching is all-pairs (quadratic in same-root collective
    // count), so generated-program factors stay modest; factor 5 already
    // yields a ~7k-node graph with hundreds of thousands of communication edges.
    for factor in [1usize, 2, 3, 4, 5] {
        let mpi = graph_for(factor);
        let nodes = mpi_dfa_core::FlowGraph::num_nodes(&mpi);
        let config = ActivityConfig::new(["s0"], ["s1"]);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &mpi, |b, mpi| {
            b.iter(|| black_box(activity::analyze_mpi(mpi, &config).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solver_scaling/strategy");
    group.sample_size(10);
    let mpi = graph_for(4);
    group.bench_function("round_robin", |b| {
        let p = ReachingConsts::new(mpi.icfg());
        b.iter(|| black_box(Solver::new(&p, &mpi).strategy(Strategy::RoundRobin).run()));
    });
    group.bench_function("worklist", |b| {
        let p = ReachingConsts::new(mpi.icfg());
        b.iter(|| black_box(Solver::new(&p, &mpi).strategy(Strategy::Worklist).run()));
    });
    group.finish();

    // Budget headroom: both strategies report the same consumption schema
    // (node visits, comm-edge evaluations, elapsed), so the work-unit cost
    // of a full fixpoint — i.e. the budget a production caller must grant
    // before the degradation ladder kicks in — can be charted per strategy.
    let p = ReachingConsts::new(mpi.icfg());
    let rr = Solver::new(&p, &mpi).strategy(Strategy::RoundRobin).run();
    let wl = Solver::new(&p, &mpi).strategy(Strategy::Worklist).run();
    for (name, stats) in [("round_robin", &rr.stats), ("worklist", &wl.stats)] {
        println!(
            "solver_scaling/budget_headroom/{name}: {} node visits, {} comm evals, \
             {} passes, {:?} (converged={})",
            stats.node_visits, stats.comm_evals, stats.passes, stats.elapsed, stats.converged
        );
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
