//! The JSONL request/response protocol shared by `mpidfa batch` and
//! `mpidfa serve`.
//!
//! One request per line, one response line per request, **responses carry
//! the request's `id` and appear in input order** (batch) or arrival order
//! (serve). The full field reference lives in `docs/SERVING.md`; the key
//! invariants enforced here:
//!
//! * a line longer than [`MAX_LINE_BYTES`] (the same 16 MiB cap the lexer
//!   puts on source files) is rejected with a structured `too-large` error
//!   — never buffered further;
//! * unknown request kinds and unknown fields produce structured errors,
//!   not panics or silent drops (the protocol fuzz corpus leans on this);
//! * responses are rendered with a **fixed key order** and contain no
//!   wall-clock fields, so a batch run is byte-identical across worker
//!   pool sizes and repeated runs.

use crate::json::{self, Json};
use mpi_dfa_analyses::governor::DegradeMode;
use mpi_dfa_analyses::mpi_match::Matching;
use mpi_dfa_core::solver::Strategy;
use mpi_dfa_core::telemetry;

/// Hard cap on one request line, reusing the lexer's source cap: a request
/// embedding the largest acceptable program still fits, anything bigger is
/// rejected before parsing.
pub const MAX_LINE_BYTES: usize = mpi_dfa_lang::lexer::MAX_SOURCE_BYTES;

/// A structured protocol error (the `error` object of a failure response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable code (`parse`, `too-large`, `bad-request`,
    /// `unknown-kind`, `unknown-program`, `unknown-row`, `compile`,
    /// `analysis`, `unsupported`, `internal`, `overloaded`,
    /// `deadline-exceeded`).
    pub code: &'static str,
    pub message: String,
    /// Backoff hint in milliseconds, set on `overloaded` sheds so clients
    /// can retry politely instead of hammering a saturated server.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attach a `retry_after_ms` backoff hint (rendered into the error
    /// object of the response line).
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    fn bad(message: impl Into<String>) -> Self {
        Self::new("bad-request", message)
    }
}

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Full activity analysis of a program.
    Analyze,
    /// Incremental activity analysis: re-analyze an edited source seeded
    /// by the solver regions of a previous `analyze` response (`prev`
    /// names that response's request id). Answers are **byte-identical**
    /// to a cold `analyze` of the same source; provenance is
    /// `cache: "partial"` when regions were transplanted, `"miss"` when
    /// the engine fell back to a full solve.
    AnalyzeDelta,
    /// One Table-1 experiment row by id.
    Table1Row,
    /// Is one named variable in the active set?
    ActivityAtLocation,
    /// DOT rendering of the MPI-ICFG.
    Dot,
    /// Static correctness suite (match-set, MHP, deadlock) plus the
    /// schedule-explorer cross-check. The report is deterministic — no
    /// wall-clock fields, seeded exploration — so it caches like any
    /// analysis result.
    Verify,
    /// Liveness probe; answered without touching the pipeline.
    Ping,
    /// Ask a server to stop accepting connections (serve mode only).
    Shutdown,
    /// Introspection: cache/admission counters and the startup fsck report
    /// (serve mode only; deliberately not answerable in batch, where the
    /// counters would depend on pool size and break output determinism).
    CacheStats,
    /// Observability: Prometheus-format telemetry metrics plus SLO latency
    /// histograms. On a worker this is the process-local view; on the
    /// router it is the order-independently merged cluster view. Serve
    /// mode only, for the same determinism reason as `cache-stats`.
    Metrics,
}

impl RequestKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Analyze => "analyze",
            RequestKind::AnalyzeDelta => "analyze-delta",
            RequestKind::Table1Row => "table1-row",
            RequestKind::ActivityAtLocation => "activity-at-location",
            RequestKind::Dot => "dot",
            RequestKind::Verify => "verify",
            RequestKind::Ping => "ping",
            RequestKind::Shutdown => "shutdown",
            RequestKind::CacheStats => "cache-stats",
            RequestKind::Metrics => "metrics",
        }
    }

    fn parse(s: &str) -> Option<RequestKind> {
        Some(match s {
            "analyze" => RequestKind::Analyze,
            "analyze-delta" => RequestKind::AnalyzeDelta,
            "table1-row" => RequestKind::Table1Row,
            "activity-at-location" => RequestKind::ActivityAtLocation,
            "dot" => RequestKind::Dot,
            "verify" => RequestKind::Verify,
            "ping" => RequestKind::Ping,
            "shutdown" => RequestKind::Shutdown,
            "cache-stats" => RequestKind::CacheStats,
            "metrics" => RequestKind::Metrics,
            _ => return None,
        })
    }
}

/// Distributed trace context carried by a request's `trace` field:
/// `{"trace":{"id":"<32 hex>","parent":N,"attempt":N}}`. Minted by the
/// router (or by a client such as `serve_client.py`); `parent` is the span
/// id of the caller's span in *its* process, `attempt` counts hedged
/// retries (0 = first try). Like `id` and `solver`, the trace context is
/// deliberately **not** part of any cache key: tracing a request must not
/// change what it computes or whether it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub id: u128,
    pub parent: u64,
    pub attempt: u64,
}

impl TraceCtx {
    /// Render as the canonical `trace` field value (fixed key order).
    pub fn render(&self) -> String {
        format!(
            "{{\"id\":\"{:032x}\",\"parent\":{},\"attempt\":{}}}",
            self.id, self.parent, self.attempt
        )
    }
}

/// A validated protocol request. Every analysis-configuration field is part
/// of the result cache key (see `cache::result_key`): two requests that
/// differ in any of them can never share a cached result.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub id: u64,
    pub kind: RequestKind,
    /// Bundled benchmark name (`figure1`, `biostat`, …). Exclusive with
    /// `source`.
    pub program: Option<String>,
    /// Inline SMPL source. Exclusive with `program`.
    pub source: Option<String>,
    pub context: Option<String>,
    pub clone_level: usize,
    pub ind: Vec<String>,
    pub dep: Vec<String>,
    /// Variable name for `activity-at-location`.
    pub var: Option<String>,
    /// Row id for `table1-row`.
    pub row: Option<String>,
    /// Simulated process count for `verify` (rank guards, range checks,
    /// schedule exploration). Part of the cache key.
    pub nprocs: Option<u64>,
    /// Adversarial schedules for the `verify` cross-check (0 disables
    /// exploration). Part of the cache key.
    pub schedules: Option<u64>,
    pub matching: Matching,
    /// `mpi` | `global` | `naive` (communication model for `analyze`).
    pub mode: String,
    /// Wall-clock budget. **Nondeterministic**: its presence forces the
    /// result cache to bypass (`cache: "bypass"`).
    pub budget_ms: Option<u64>,
    /// End-to-end deadline for the request. Like `budget_ms` it is a
    /// wall-clock bound and forces a cache bypass; unlike `budget_ms`
    /// (which degrades via the governor ladder) non-governed paths answer
    /// a structured `deadline-exceeded` error when it expires. The engine
    /// uses the *minimum* of the two when both are set.
    pub deadline_ms: Option<u64>,
    pub max_visits: Option<u64>,
    pub max_fact_bytes: Option<u64>,
    pub degrade: DegradeMode,
    pub max_passes: Option<u64>,
    /// Fixpoint strategy (`round-robin` | `worklist` | `region-parallel` |
    /// `region-parallel:N`). Deliberately **not** part of the result cache
    /// key: every strategy produces identical facts (`docs/SOLVER.md`), so
    /// a result computed under one strategy is a valid hit for any other.
    pub solver: Option<Strategy>,
    /// For `analyze-delta`: the request id of a previous `analyze`
    /// response whose solver regions seed the re-solve. Deliberately
    /// **not** part of the result cache key — incremental answers are
    /// byte-identical to cold ones, so which seed produced a result must
    /// not fragment the cache.
    pub prev: Option<u64>,
    /// Demand-driven query: answer activity only *at* this ICFG node
    /// (global node index), solving just the upstream region slice.
    /// **Part of the cache key** — a demand answer is a different result
    /// shape than a whole-program one and must never alias it.
    pub at: Option<u64>,
    /// Distributed trace context. Excluded from cache keys (see
    /// [`TraceCtx`]); forwarded by the router with a bumped `attempt`.
    pub trace: Option<TraceCtx>,
}

impl Request {
    fn with_defaults(id: u64, kind: RequestKind) -> Request {
        Request {
            id,
            kind,
            program: None,
            source: None,
            context: None,
            clone_level: 0,
            ind: Vec::new(),
            dep: Vec::new(),
            var: None,
            row: None,
            nprocs: None,
            schedules: None,
            matching: Matching::ReachingConstants,
            mode: "mpi".to_string(),
            budget_ms: None,
            deadline_ms: None,
            max_visits: None,
            max_fact_bytes: None,
            degrade: DegradeMode::Auto,
            max_passes: None,
            solver: None,
            prev: None,
            at: None,
            trace: None,
        }
    }

    pub fn degrade_str(&self) -> &'static str {
        match self.degrade {
            DegradeMode::Auto => "auto",
            DegradeMode::Off => "off",
        }
    }

    pub fn matching_str(&self) -> &'static str {
        match self.matching {
            Matching::Naive => "naive",
            Matching::Syntactic => "syntactic",
            Matching::ReachingConstants => "consts",
        }
    }
}

fn str_field(v: &Json, name: &str) -> Result<String, ProtoError> {
    v.as_str()
        .map(String::from)
        .ok_or_else(|| ProtoError::bad(format!("field `{name}` must be a string")))
}

fn u64_field(v: &Json, name: &str) -> Result<u64, ProtoError> {
    v.as_u64()
        .ok_or_else(|| ProtoError::bad(format!("field `{name}` must be a non-negative integer")))
}

fn list_field(v: &Json, name: &str) -> Result<Vec<String>, ProtoError> {
    let items = v
        .as_array()
        .ok_or_else(|| ProtoError::bad(format!("field `{name}` must be an array of strings")))?;
    items
        .iter()
        .map(|x| {
            x.as_str()
                .map(String::from)
                .ok_or_else(|| ProtoError::bad(format!("field `{name}` must contain only strings")))
        })
        .collect()
}

/// Parse and validate one request line. Enforces the line cap, rejects
/// non-object payloads, unknown kinds, and unknown fields — all as
/// structured [`ProtoError`]s.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtoError::new(
            "too-large",
            format!(
                "request line is {} bytes; the limit is {} bytes",
                line.len(),
                MAX_LINE_BYTES
            ),
        ));
    }
    let value = json::parse(line).map_err(|e| ProtoError::new("parse", e.to_string()))?;
    let Json::Obj(fields) = &value else {
        return Err(ProtoError::bad("request must be a JSON object"));
    };

    let id = match value.get("id") {
        Some(v) => u64_field(v, "id")?,
        None => return Err(ProtoError::bad("missing required field `id`")),
    };
    let kind_str = match value.get("kind") {
        Some(v) => str_field(v, "kind")?,
        None => return Err(ProtoError::bad("missing required field `kind`")),
    };
    let Some(kind) = RequestKind::parse(&kind_str) else {
        return Err(ProtoError::new(
            "unknown-kind",
            format!(
                "unknown request kind `{kind_str}` (expected analyze | table1-row | \
                 analyze-delta | activity-at-location | dot | verify | ping | shutdown | \
                 cache-stats | metrics)"
            ),
        ));
    };

    let mut req = Request::with_defaults(id, kind);
    for (key, v) in fields {
        match key.as_str() {
            "id" | "kind" => {}
            "program" => req.program = Some(str_field(v, key)?),
            "source" => req.source = Some(str_field(v, key)?),
            "context" => req.context = Some(str_field(v, key)?),
            "clone" => req.clone_level = u64_field(v, key)? as usize,
            "ind" => req.ind = list_field(v, key)?,
            "dep" => req.dep = list_field(v, key)?,
            "var" => req.var = Some(str_field(v, key)?),
            "row" => req.row = Some(str_field(v, key)?),
            "nprocs" => req.nprocs = Some(u64_field(v, key)?),
            "schedules" => req.schedules = Some(u64_field(v, key)?),
            "matching" => {
                req.matching = match str_field(v, key)?.as_str() {
                    "naive" => Matching::Naive,
                    "syntactic" => Matching::Syntactic,
                    "consts" => Matching::ReachingConstants,
                    other => {
                        return Err(ProtoError::bad(format!(
                            "unknown matching `{other}` (naive | syntactic | consts)"
                        )))
                    }
                }
            }
            "mode" => {
                let m = str_field(v, key)?;
                if !matches!(m.as_str(), "mpi" | "global" | "naive") {
                    return Err(ProtoError::bad(format!(
                        "unknown mode `{m}` (mpi | global | naive)"
                    )));
                }
                req.mode = m;
            }
            "budget_ms" => req.budget_ms = Some(u64_field(v, key)?),
            "deadline_ms" => req.deadline_ms = Some(u64_field(v, key)?),
            "max_visits" => req.max_visits = Some(u64_field(v, key)?),
            "max_fact_bytes" => req.max_fact_bytes = Some(u64_field(v, key)?),
            "degrade" => {
                req.degrade = match str_field(v, key)?.as_str() {
                    "auto" => DegradeMode::Auto,
                    "off" => DegradeMode::Off,
                    other => {
                        return Err(ProtoError::bad(format!(
                            "unknown degrade `{other}` (auto | off)"
                        )))
                    }
                }
            }
            "max_passes" => req.max_passes = Some(u64_field(v, key)?),
            "solver" => {
                req.solver = Some(Strategy::parse(&str_field(v, key)?).map_err(ProtoError::bad)?)
            }
            "prev" => req.prev = Some(u64_field(v, key)?),
            "at" => req.at = Some(u64_field(v, key)?),
            "trace" => {
                let Json::Obj(sub) = v else {
                    return Err(ProtoError::bad("field `trace` must be an object"));
                };
                let mut ctx = TraceCtx {
                    id: 0,
                    parent: 0,
                    attempt: 0,
                };
                let mut have_id = false;
                for (k, sv) in sub {
                    match k.as_str() {
                        "id" => {
                            let s = str_field(sv, "trace.id")?;
                            ctx.id = telemetry::parse_trace_id(&s).ok_or_else(|| {
                                ProtoError::bad(
                                    "field `trace.id` must be a hex trace id (1-32 digits)",
                                )
                            })?;
                            have_id = true;
                        }
                        "parent" => ctx.parent = u64_field(sv, "trace.parent")?,
                        "attempt" => ctx.attempt = u64_field(sv, "trace.attempt")?,
                        other => {
                            return Err(ProtoError::bad(format!("unknown field `trace.{other}`")))
                        }
                    }
                }
                if !have_id {
                    return Err(ProtoError::bad("field `trace` requires `id`"));
                }
                req.trace = Some(ctx);
            }
            other => {
                return Err(ProtoError::bad(format!("unknown field `{other}`")));
            }
        }
    }

    if req.program.is_some() && req.source.is_some() {
        return Err(ProtoError::bad(
            "fields `program` and `source` are mutually exclusive",
        ));
    }
    match kind {
        RequestKind::Analyze
        | RequestKind::AnalyzeDelta
        | RequestKind::ActivityAtLocation
        | RequestKind::Dot
        | RequestKind::Verify => {
            if req.program.is_none() && req.source.is_none() {
                return Err(ProtoError::bad(format!(
                    "kind `{}` requires `program` or `source`",
                    kind.as_str()
                )));
            }
        }
        RequestKind::Table1Row => {
            if req.row.is_none() {
                return Err(ProtoError::bad("kind `table1-row` requires `row`"));
            }
        }
        RequestKind::Ping
        | RequestKind::Shutdown
        | RequestKind::CacheStats
        | RequestKind::Metrics => {}
    }
    if kind == RequestKind::ActivityAtLocation && req.var.is_none() {
        return Err(ProtoError::bad(
            "kind `activity-at-location` requires `var`",
        ));
    }
    if kind == RequestKind::AnalyzeDelta && req.prev.is_none() {
        return Err(ProtoError::bad("kind `analyze-delta` requires `prev`"));
    }
    if req.at.is_some() && !matches!(kind, RequestKind::Analyze) {
        return Err(ProtoError::bad(
            "field `at` is only valid on kind `analyze`",
        ));
    }
    // The verify cross-check spawns `nprocs` interpreter threads per
    // schedule, so unbounded values are a resource hazard on a server.
    if let Some(n) = req.nprocs {
        if n == 0 || n > 64 {
            return Err(ProtoError::bad("field `nprocs` must be in 1..=64"));
        }
    }
    if let Some(k) = req.schedules {
        if k > 256 {
            return Err(ProtoError::bad("field `schedules` must be at most 256"));
        }
    }
    Ok(req)
}

/// Render a validated request back to one canonical JSONL line that
/// [`parse_request`] accepts and parses to an equal [`Request`]. The
/// router uses this to forward a request with an injected/bumped `trace`
/// field instead of splicing text into the raw client line. Fields appear
/// in a fixed order and defaults are omitted, so the output is
/// deterministic for a given request.
pub fn render_request(req: &Request) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"id\":{},\"kind\":\"{}\"",
        req.id,
        req.kind.as_str()
    );
    let str_f = |out: &mut String, key: &str, v: &Option<String>| {
        if let Some(s) = v {
            let _ = write!(out, ",\"{key}\":\"{}\"", json::escape(s));
        }
    };
    str_f(&mut out, "program", &req.program);
    str_f(&mut out, "source", &req.source);
    str_f(&mut out, "context", &req.context);
    if req.clone_level != 0 {
        let _ = write!(out, ",\"clone\":{}", req.clone_level);
    }
    let list_f = |out: &mut String, key: &str, v: &[String]| {
        if v.is_empty() {
            return;
        }
        let _ = write!(out, ",\"{key}\":[");
        for (i, s) in v.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json::escape(s));
        }
        out.push(']');
    };
    list_f(&mut out, "ind", &req.ind);
    list_f(&mut out, "dep", &req.dep);
    str_f(&mut out, "var", &req.var);
    str_f(&mut out, "row", &req.row);
    let u64_opt = |out: &mut String, key: &str, v: Option<u64>| {
        if let Some(n) = v {
            let _ = write!(out, ",\"{key}\":{n}");
        }
    };
    u64_opt(&mut out, "nprocs", req.nprocs);
    u64_opt(&mut out, "schedules", req.schedules);
    if req.matching != Matching::ReachingConstants {
        let _ = write!(out, ",\"matching\":\"{}\"", req.matching_str());
    }
    if req.mode != "mpi" {
        let _ = write!(out, ",\"mode\":\"{}\"", json::escape(&req.mode));
    }
    let u64_f = |out: &mut String, key: &str, v: Option<u64>| {
        if let Some(n) = v {
            let _ = write!(out, ",\"{key}\":{n}");
        }
    };
    u64_f(&mut out, "budget_ms", req.budget_ms);
    u64_f(&mut out, "deadline_ms", req.deadline_ms);
    u64_f(&mut out, "max_visits", req.max_visits);
    u64_f(&mut out, "max_fact_bytes", req.max_fact_bytes);
    if req.degrade != DegradeMode::Auto {
        let _ = write!(out, ",\"degrade\":\"{}\"", req.degrade_str());
    }
    u64_f(&mut out, "max_passes", req.max_passes);
    if let Some(s) = req.solver {
        let _ = write!(out, ",\"solver\":\"{s}\"");
    }
    u64_f(&mut out, "prev", req.prev);
    u64_f(&mut out, "at", req.at);
    if let Some(t) = &req.trace {
        let _ = write!(out, ",\"trace\":{}", t.render());
    }
    out.push('}');
    out
}

/// How the result cache participated in a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the in-memory or on-disk result cache.
    Hit,
    /// Computed and stored.
    Miss,
    /// Computed and **not** cached (wall-clock budget present, or the kind
    /// has no cacheable result).
    Bypass,
    /// Computed **incrementally**: the solve was seeded from a previous
    /// result and only invalidated regions were re-solved; the answer is
    /// byte-identical to a cold `miss` and is stored like one.
    Partial,
}

impl CacheStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
            CacheStatus::Partial => "partial",
        }
    }
}

/// Render a success response. `result_json` must already be valid JSON.
/// Fixed key order: `id`, `ok`, `kind`, `cache`, `result`.
pub fn render_ok(id: u64, kind: RequestKind, cache: CacheStatus, result_json: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"kind\":\"{}\",\"cache\":\"{}\",\"result\":{result_json}}}",
        kind.as_str(),
        cache.as_str()
    )
}

/// Render a failure response. Fixed key order: `id`, `ok`, `error`
/// (`code`, `message`, then `retry_after_ms` when present). `id` 0 is used
/// when the line never parsed far enough to yield one.
pub fn render_err(id: u64, e: &ProtoError) -> String {
    let retry = match e.retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"{retry}}}}}",
        e.code,
        json::escape(&e.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_analyze_request_parses_with_defaults() {
        let r = parse_request(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#,
        )
        .unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(r.kind, RequestKind::Analyze);
        assert_eq!(r.program.as_deref(), Some("figure1"));
        assert_eq!(r.clone_level, 0);
        assert_eq!(r.mode, "mpi");
        assert_eq!(r.matching, Matching::ReachingConstants);
        assert_eq!(r.degrade, DegradeMode::Auto);
    }

    #[test]
    fn unknown_kind_is_structured() {
        let e = parse_request(r#"{"id":1,"kind":"explode"}"#).unwrap_err();
        assert_eq!(e.code, "unknown-kind");
        assert!(e.message.contains("explode"));
    }

    #[test]
    fn unknown_field_is_structured() {
        let e = parse_request(r#"{"id":1,"kind":"ping","wat":true}"#).unwrap_err();
        assert_eq!(e.code, "bad-request");
        assert!(e.message.contains("wat"));
    }

    #[test]
    fn oversized_line_is_rejected_before_parsing() {
        let huge = format!(
            r#"{{"id":1,"kind":"analyze","source":"{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let e = parse_request(&huge).unwrap_err();
        assert_eq!(e.code, "too-large");
    }

    #[test]
    fn requires_are_enforced_per_kind() {
        assert_eq!(
            parse_request(r#"{"id":1,"kind":"analyze"}"#)
                .unwrap_err()
                .code,
            "bad-request"
        );
        assert_eq!(
            parse_request(r#"{"id":1,"kind":"table1-row"}"#)
                .unwrap_err()
                .code,
            "bad-request"
        );
        assert_eq!(
            parse_request(r#"{"id":1,"kind":"activity-at-location","program":"cg"}"#)
                .unwrap_err()
                .code,
            "bad-request"
        );
        assert_eq!(
            parse_request(r#"{"id":1,"kind":"dot","program":"cg","source":"program p"}"#)
                .unwrap_err()
                .code,
            "bad-request"
        );
        // ping needs nothing.
        assert!(parse_request(r#"{"id":9,"kind":"ping"}"#).is_ok());
    }

    #[test]
    fn deadline_and_cache_stats_parse() {
        let r = parse_request(
            r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        let r = parse_request(r#"{"id":4,"kind":"cache-stats"}"#).unwrap();
        assert_eq!(r.kind, RequestKind::CacheStats);
        assert_eq!(
            parse_request(r#"{"id":5,"kind":"analyze","program":"p","deadline_ms":"soon"}"#)
                .unwrap_err()
                .code,
            "bad-request"
        );
    }

    #[test]
    fn trace_field_parses_and_round_trips() {
        let r = parse_request(
            r#"{"id":1,"kind":"ping","trace":{"id":"00000000000000000000000000abc123","parent":7,"attempt":2}}"#,
        )
        .unwrap();
        let t = r.trace.unwrap();
        assert_eq!(t.id, 0xabc123);
        assert_eq!(t.parent, 7);
        assert_eq!(t.attempt, 2);
        // parent/attempt default to 0; a bare id is enough (what clients mint).
        let r = parse_request(r#"{"id":1,"kind":"ping","trace":{"id":"ff"}}"#).unwrap();
        assert_eq!(
            r.trace,
            Some(TraceCtx {
                id: 0xff,
                parent: 0,
                attempt: 0
            })
        );
        // Structured errors for malformed contexts.
        for bad in [
            r#"{"id":1,"kind":"ping","trace":"abc"}"#,
            r#"{"id":1,"kind":"ping","trace":{}}"#,
            r#"{"id":1,"kind":"ping","trace":{"id":"zz"}}"#,
            r#"{"id":1,"kind":"ping","trace":{"id":"ff","wat":1}}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code, "bad-request", "{bad}");
        }
    }

    #[test]
    fn render_request_round_trips_through_parse() {
        let lines = [
            r#"{"id":1,"kind":"ping"}"#,
            r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#,
            r#"{"id":3,"kind":"table1-row","row":"Biostat","solver":"region-parallel:2"}"#,
            r#"{"id":4,"kind":"analyze","source":"program \"p\"","ind":["a","b"],"dep":["c"],"clone":2,"matching":"naive","mode":"global","budget_ms":5,"deadline_ms":9,"max_visits":10,"max_fact_bytes":11,"degrade":"off","max_passes":3}"#,
            r#"{"id":5,"kind":"metrics","trace":{"id":"1234","parent":9,"attempt":1}}"#,
            r#"{"id":6,"kind":"verify","program":"figure1","nprocs":4,"schedules":12}"#,
        ];
        for line in lines {
            let req = parse_request(line).unwrap();
            let rendered = render_request(&req);
            let back = parse_request(&rendered)
                .unwrap_or_else(|e| panic!("re-rendered line failed to parse: {rendered}: {e:?}"));
            assert_eq!(back, req, "round trip changed the request: {rendered}");
            // Idempotent: rendering the round-tripped request is stable.
            assert_eq!(render_request(&back), rendered);
        }
    }

    #[test]
    fn analyze_delta_requires_prev_and_source() {
        let r = parse_request(
            r#"{"id":1,"kind":"analyze-delta","source":"program p sub main() { }","ind":["x"],"dep":["f"],"prev":41}"#,
        )
        .unwrap();
        assert_eq!(r.kind, RequestKind::AnalyzeDelta);
        assert_eq!(r.prev, Some(41));
        let e =
            parse_request(r#"{"id":1,"kind":"analyze-delta","source":"program p sub main() { }"}"#)
                .unwrap_err();
        assert!(e.message.contains("prev"), "{}", e.message);
        let e = parse_request(r#"{"id":1,"kind":"analyze-delta","prev":41}"#).unwrap_err();
        assert!(e.message.contains("program"), "{}", e.message);
    }

    #[test]
    fn demand_at_is_analyze_only() {
        let r = parse_request(
            r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"at":12}"#,
        )
        .unwrap();
        assert_eq!(r.at, Some(12));
        let e =
            parse_request(r#"{"id":2,"kind":"verify","program":"figure1","at":12}"#).unwrap_err();
        assert!(e.message.contains("`at`"), "{}", e.message);
    }

    #[test]
    fn delta_and_demand_requests_round_trip() {
        for line in [
            r#"{"id":7,"kind":"analyze-delta","source":"program p sub main() { }","ind":["x"],"dep":["f"],"prev":41}"#,
            r#"{"id":8,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"at":3}"#,
        ] {
            let req = parse_request(line).unwrap();
            let rendered = render_request(&req);
            assert_eq!(parse_request(&rendered).unwrap(), req, "{rendered}");
        }
        assert_eq!(CacheStatus::Partial.as_str(), "partial");
        assert_eq!(RequestKind::AnalyzeDelta.as_str(), "analyze-delta");
    }

    #[test]
    fn metrics_kind_parses() {
        let r = parse_request(r#"{"id":6,"kind":"metrics"}"#).unwrap();
        assert_eq!(r.kind, RequestKind::Metrics);
        assert_eq!(RequestKind::parse("metrics"), Some(RequestKind::Metrics));
        assert_eq!(RequestKind::Metrics.as_str(), "metrics");
    }

    #[test]
    fn retry_after_is_rendered_inside_the_error_object() {
        let err = render_err(
            9,
            &ProtoError::new("overloaded", "shed").with_retry_after(125),
        );
        assert_eq!(
            err,
            r#"{"id":9,"ok":false,"error":{"code":"overloaded","message":"shed","retry_after_ms":125}}"#
        );
        let parsed = crate::json::parse(&err).unwrap();
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(|v| v.as_u64()),
            Some(125)
        );
    }

    #[test]
    fn response_rendering_is_fixed_order() {
        let ok = render_ok(
            7,
            RequestKind::Ping,
            CacheStatus::Bypass,
            r#"{"pong":true}"#,
        );
        assert_eq!(
            ok,
            r#"{"id":7,"ok":true,"kind":"ping","cache":"bypass","result":{"pong":true}}"#
        );
        let err = render_err(0, &ProtoError::new("parse", "boom \"quoted\""));
        assert_eq!(
            err,
            r#"{"id":0,"ok":false,"error":{"code":"parse","message":"boom \"quoted\""}}"#
        );
        // Both responses are themselves valid JSON.
        assert!(crate::json::parse(&ok).is_ok());
        assert!(crate::json::parse(&err).is_ok());
    }
}
