//! Solver behavior on canonical graph shapes — the Section 4.2 complexity
//! discussion, made concrete: convergence is bounded by graph depth (plus a
//! couple of bookkeeping passes), communication edges add depth but not
//! worst-case blowup, and irreducible comm-edge cycles still converge.

use mpi_dfa_core::graph::{EdgeKind, SimpleGraph};
use mpi_dfa_core::lattice::{ConstLattice, MeetSemiLattice};
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{Solver, Strategy};
use mpi_dfa_core::NodeId;

/// Constant propagation where node 0 generates `7` and every node forwards;
/// comm targets copy the incoming comm fact.
struct Forwarder {
    recv: Vec<bool>,
}

impl Dataflow for Forwarder {
    type Fact = ConstLattice<i64>;
    type CommFact = ConstLattice<i64>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> Self::Fact {
        ConstLattice::Top
    }

    fn boundary(&self) -> Self::Fact {
        ConstLattice::Const(7)
    }

    fn meet_into(&self, dst: &mut Self::Fact, src: &Self::Fact) -> bool {
        dst.meet_with(src)
    }

    fn transfer(&self, node: NodeId, input: &Self::Fact, comm: &[Self::CommFact]) -> Self::Fact {
        if self.recv[node.index()] {
            let mut v = ConstLattice::Top;
            for c in comm {
                v.meet_with(c);
            }
            v
        } else {
            *input
        }
    }

    fn comm_transfer(&self, _node: NodeId, input: &Self::Fact) -> Self::CommFact {
        *input
    }
}

fn forwarder(n: usize) -> Forwarder {
    Forwarder {
        recv: vec![false; n],
    }
}

#[test]
fn long_chain_converges_in_constant_passes_with_rpo() {
    // RPO visits a chain front-to-back: one productive pass + one check.
    for n in [10usize, 100, 1000] {
        let mut g = SimpleGraph::new(n);
        for i in 0..n - 1 {
            g.flow(i as u32, i as u32 + 1);
        }
        g.set_entry(0);
        g.set_exit(n as u32 - 1);
        let sol = Solver::new(&forwarder(n), &g)
            .strategy(Strategy::RoundRobin)
            .run();
        assert_eq!(sol.output[n - 1], ConstLattice::Const(7));
        assert!(
            sol.stats.passes <= 2,
            "chain of {n}: {} passes",
            sol.stats.passes
        );
    }
}

#[test]
fn nested_loops_take_passes_proportional_to_depth() {
    // k nested loops: depth k; the fixpoint needs O(k) passes at most —
    // here facts stabilize immediately, so the bound is loose but the
    // solver must not blow up.
    let k = 20;
    let n = 2 * k + 2;
    let mut g = SimpleGraph::new(n);
    g.set_entry(0);
    g.set_exit(n as u32 - 1);
    for i in 0..n - 1 {
        g.flow(i as u32, i as u32 + 1);
    }
    for d in 0..k {
        // back edge from node (n-2-d) to node (1+d): nested loop nest.
        g.flow((n - 2 - d) as u32, (1 + d) as u32);
    }
    let sol = Solver::new(&forwarder(n), &g)
        .strategy(Strategy::RoundRobin)
        .run();
    assert!(sol.stats.converged);
    assert_eq!(sol.output[n - 1], ConstLattice::Const(7));
    assert!(
        sol.stats.passes <= k + 2,
        "{} passes for depth {k}",
        sol.stats.passes
    );
}

#[test]
fn comm_edge_chain_adds_one_pass_per_hop_at_worst() {
    // A pipeline of P disconnected segments linked only by comm edges:
    // send_i --comm--> recv_{i+1}. The constant must hop across all of
    // them; each hop can cost a pass because comm facts read the *input*
    // of the source node.
    let p = 10usize;
    let n = 2 * p;
    let mut g = SimpleGraph::new(n);
    let mut problem = forwarder(n);
    for i in 0..p {
        g.flow(2 * i as u32, 2 * i as u32 + 1); // segment: in -> out
        if i + 1 < p {
            g.comm(2 * i as u32 + 1, 2 * (i + 1) as u32, i as u32);
            problem.recv[2 * (i + 1)] = true;
        }
    }
    g.set_entry(0);
    g.set_exit(n as u32 - 1);
    let sol = Solver::new(&problem, &g)
        .strategy(Strategy::RoundRobin)
        .run();
    assert_eq!(
        sol.output[n - 1],
        ConstLattice::Const(7),
        "constant crossed {p} hops"
    );
    assert!(sol.stats.converged);
    assert!(
        sol.stats.passes <= p + 2,
        "{} passes for {p} comm hops (depth-proportional, not worst-case)",
        sol.stats.passes
    );
    // The worklist agrees.
    let wl = Solver::new(&problem, &g).strategy(Strategy::Worklist).run();
    assert_eq!(wl.output, sol.output);
    // And so does the region-parallel engine: each send/recv pair is its
    // own region here, chained by comm edges in topological order.
    let rp = Solver::new(&problem, &g)
        .strategy(Strategy::RegionParallel { threads: 4 })
        .run();
    assert_eq!(rp.output, sol.output);
    assert_eq!(rp.input, sol.input);
}

#[test]
fn irreducible_comm_cycle_converges() {
    // Two segments that send to each other: the comm edges form a cycle
    // that no control-flow path closes — the irreducibility Section 4.2
    // warns makes depth NP-hard to compute. Convergence must still happen.
    let mut g = SimpleGraph::new(4);
    g.flow(0, 1);
    g.flow(2, 3);
    g.comm(1, 2, 0);
    g.comm(3, 0, 1); // closes the cycle (node 0 ignores its comm fact)
    g.set_entry(0);
    g.set_entry(2);
    g.set_exit(1);
    g.set_exit(3);
    let mut problem = forwarder(4);
    problem.recv[2] = true;
    let sol = Solver::new(&problem, &g)
        .strategy(Strategy::RoundRobin)
        .run();
    assert!(sol.stats.converged);
    // The boundary constant enters at 0, flows to 1, hops the comm edge
    // into the second segment, and reaches 3 despite the graph-level cycle.
    assert_eq!(sol.output[3], ConstLattice::Const(7));
    // The comm cycle condenses into a single region, so the region-parallel
    // strategy degrades gracefully to one sequential region — and agrees.
    let rp = Solver::new(&problem, &g)
        .strategy(Strategy::RegionParallel { threads: 8 })
        .run();
    assert!(rp.stats.converged);
    assert_eq!(rp.output, sol.output);
    assert_eq!(rp.input, sol.input);
}

#[test]
fn wide_fanout_meets_cleanly() {
    // One source fanning out to many receivers, all meeting in one sink:
    // the meet over hundreds of identical constants stays Const.
    let width = 300usize;
    let n = width + 2;
    let mut g = SimpleGraph::new(n);
    g.set_entry(0);
    g.set_exit(n as u32 - 1);
    for i in 0..width {
        g.flow(0, 1 + i as u32);
        g.flow(1 + i as u32, n as u32 - 1);
    }
    let sol = Solver::new(&forwarder(n), &g)
        .strategy(Strategy::RoundRobin)
        .run();
    assert_eq!(sol.output[n - 1], ConstLattice::Const(7));
    assert!(sol.stats.passes <= 2);
}

#[test]
fn conflicting_comm_sources_meet_to_bottom() {
    // Two senders with different constants reaching one receiver: the
    // communication meet (⊓ over commpred) must go to ⊥, not pick one.
    struct TwoConsts;
    impl Dataflow for TwoConsts {
        type Fact = ConstLattice<i64>;
        type CommFact = ConstLattice<i64>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn top(&self) -> Self::Fact {
            ConstLattice::Top
        }
        fn boundary(&self) -> Self::Fact {
            ConstLattice::Top
        }
        fn meet_into(&self, dst: &mut Self::Fact, src: &Self::Fact) -> bool {
            dst.meet_with(src)
        }
        fn transfer(
            &self,
            node: NodeId,
            input: &Self::Fact,
            comm: &[Self::CommFact],
        ) -> Self::Fact {
            match node.0 {
                0 => ConstLattice::Const(1),
                1 => ConstLattice::Const(2),
                2 => {
                    let mut v = ConstLattice::Top;
                    for c in comm {
                        v.meet_with(c);
                    }
                    v
                }
                _ => *input,
            }
        }
        fn comm_transfer(&self, node: NodeId, _input: &Self::Fact) -> Self::CommFact {
            // Senders transmit their generated constants.
            match node.0 {
                0 => ConstLattice::Const(1),
                1 => ConstLattice::Const(2),
                _ => ConstLattice::Top,
            }
        }
    }
    let mut g = SimpleGraph::new(3);
    g.comm(0, 2, 0);
    g.comm(1, 2, 1);
    g.set_entry(0);
    g.set_entry(1);
    g.set_exit(2);
    let sol = Solver::new(&TwoConsts, &g)
        .strategy(Strategy::RoundRobin)
        .run();
    assert!(sol.output[2].is_bottom(), "1 ⊓ 2 over commpred = ⊥");
}

#[test]
fn call_edges_and_comm_edges_interleave() {
    // fact crosses: entry -> call -> [callee with a send] ... comm ...
    // [other segment recv] — exercising translate + comm in one graph.
    struct Inc;
    impl Dataflow for Inc {
        type Fact = ConstLattice<i64>;
        type CommFact = ConstLattice<i64>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn top(&self) -> Self::Fact {
            ConstLattice::Top
        }
        fn boundary(&self) -> Self::Fact {
            ConstLattice::Const(10)
        }
        fn meet_into(&self, dst: &mut Self::Fact, src: &Self::Fact) -> bool {
            dst.meet_with(src)
        }
        fn transfer(
            &self,
            node: NodeId,
            input: &Self::Fact,
            comm: &[Self::CommFact],
        ) -> Self::Fact {
            if node.0 == 3 {
                let mut v = ConstLattice::Top;
                for c in comm {
                    v.meet_with(c);
                }
                v
            } else {
                *input
            }
        }
        fn comm_transfer(&self, _n: NodeId, input: &Self::Fact) -> Self::CommFact {
            *input
        }
        fn translate(&self, edge: &mpi_dfa_core::Edge, fact: &Self::Fact) -> Option<Self::Fact> {
            match (edge.kind, fact) {
                (EdgeKind::Call { .. }, ConstLattice::Const(c)) => Some(ConstLattice::Const(c + 1)),
                _ => None,
            }
        }
    }
    // 0 -call-> 1 (callee, sends) ... comm ... 3 (recv)
    let mut g = SimpleGraph::new(4);
    g.add_edge(0, 1, EdgeKind::Call { site: 0 });
    g.flow(2, 3);
    g.comm(1, 3, 0);
    g.set_entry(0);
    g.set_entry(2);
    g.set_exit(3);
    let sol = Solver::new(&Inc, &g).strategy(Strategy::RoundRobin).run();
    // 10 at entry, +1 across the call edge, sent over the comm edge.
    assert_eq!(sol.output[3], ConstLattice::Const(11));
}
