//! Interprocedural reaching constants over the ICFG and MPI-ICFG.
//!
//! The canonical nonseparable data-flow analysis from Section 3 of the paper.
//! Each location is paired with a value from the constant lattice
//! (⊤ / Const c / ⊥). Over the MPI-ICFG, the communication transfer function
//! propagates the *lattice value of the sent variable* over each
//! communication edge, and the receive transfer meets those values into the
//! received variable — so a constant sent by one branch of an SPMD program
//! reaches the receiving branch, which no CFG-only analysis can see.
//!
//! SPMD subtlety: `rank()` evaluates differently on every process, so it is
//! ⊥, never a constant; `nprocs()` is uniform but statically unknown, also ⊥.

use crate::interproc::BindMaps;
use mpi_dfa_core::graph::{Edge, EdgeKind, NodeId};
use mpi_dfa_core::lattice::{ConstLattice, MeetSemiLattice};
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{Solution, SolveParams, Solver};
use mpi_dfa_graph::icfg::{ActualBinding, Icfg, ProgramIr};
use mpi_dfa_graph::loc::{Loc, ProcId};
use mpi_dfa_graph::mpi::{ConstQuery, MpiIcfg};
use mpi_dfa_graph::node::{MpiKind, NodeKind, RefInfo};
use mpi_dfa_lang::ast::{BinOp, Expr, ExprKind, Intrinsic, RedOp, UnOp};
use std::sync::Arc;

/// A constant runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CVal {
    Int(i64),
    Real(f64),
    Bool(bool),
}

impl std::fmt::Display for CVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CVal::Int(v) => write!(f, "{v}"),
            CVal::Real(v) => write!(f, "{v}"),
            CVal::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl CVal {
    pub fn as_int(self) -> Option<i64> {
        match self {
            CVal::Int(v) => Some(v),
            _ => None,
        }
    }

    fn as_f64(self) -> Option<f64> {
        match self {
            CVal::Int(v) => Some(v as f64),
            CVal::Real(v) => Some(v),
            CVal::Bool(_) => None,
        }
    }

    fn truthy(self) -> bool {
        match self {
            CVal::Int(v) => v != 0,
            CVal::Real(v) => v != 0.0,
            CVal::Bool(b) => b,
        }
    }
}

/// Per-location constant lattice values: the fact type.
///
/// Indexed densely by [`Loc`]. An array location's value models "every
/// element holds this constant" (whole-array assignment of a scalar); any
/// element write meets the element's value into the array's value.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstEnv(pub Vec<ConstLattice<CVal>>);

impl ConstEnv {
    pub fn top(universe: usize) -> Self {
        ConstEnv(vec![ConstLattice::Top; universe])
    }

    pub fn bottom(universe: usize) -> Self {
        ConstEnv(vec![ConstLattice::Bottom; universe])
    }

    pub fn get(&self, loc: Loc) -> &ConstLattice<CVal> {
        &self.0[loc.index()]
    }

    pub fn set(&mut self, loc: Loc, v: ConstLattice<CVal>) {
        self.0[loc.index()] = v;
    }

    /// Weak update: meet `v` into the existing value.
    pub fn weaken(&mut self, loc: Loc, v: &ConstLattice<CVal>) {
        self.0[loc.index()].meet_with(v);
    }

    fn meet_env(&mut self, other: &ConstEnv) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            changed |= a.meet_with(b);
        }
        changed
    }
}

/// Evaluate an expression under `env`, resolving names through `resolve`.
///
/// Result is ⊥ when any needed operand is ⊥ or non-constant by nature
/// (`rank()`, `nprocs()`), ⊤ only when some operand is still ⊤.
pub fn eval_expr(
    e: &Expr,
    env: &ConstEnv,
    resolve: &impl Fn(&str) -> Option<Loc>,
) -> ConstLattice<CVal> {
    use ConstLattice::*;
    match &e.kind {
        ExprKind::IntLit(v) => Const(CVal::Int(*v)),
        ExprKind::RealLit(v) => Const(CVal::Real(*v)),
        ExprKind::BoolLit(b) => Const(CVal::Bool(*b)),
        ExprKind::Rank | ExprKind::Nprocs | ExprKind::AnyWildcard => Bottom,
        ExprKind::Var(lv) => match resolve(&lv.name) {
            Some(loc) => *env.get(loc),
            None => Bottom,
        },
        ExprKind::Unary(op, inner) => {
            let v = eval_expr(inner, env, resolve);
            lift1(v, |c| match (op, c) {
                (UnOp::Neg, CVal::Int(v)) => v.checked_neg().map(CVal::Int),
                (UnOp::Neg, CVal::Real(v)) => Some(CVal::Real(-v)),
                (UnOp::Not, c) => Some(CVal::Bool(!c.truthy())),
                (UnOp::Neg, CVal::Bool(_)) => None,
            })
        }
        ExprKind::Binary(op, a, b) => {
            let va = eval_expr(a, env, resolve);
            let vb = eval_expr(b, env, resolve);
            lift2(va, vb, |x, y| eval_binop(*op, x, y))
        }
        ExprKind::Intrinsic(i, args) => {
            let vals: Vec<ConstLattice<CVal>> =
                args.iter().map(|a| eval_expr(a, env, resolve)).collect();
            if vals.iter().any(|v| v.is_bottom()) {
                return Bottom;
            }
            if vals.iter().any(|v| v.is_top()) {
                return Top;
            }
            // Neither bottom nor top above ⇒ every value is a constant;
            // `filter_map` keeps this panic-free regardless.
            let cs: Vec<CVal> = vals.iter().filter_map(|v| v.as_const().copied()).collect();
            match eval_intrinsic(*i, &cs) {
                Some(c) => Const(c),
                None => Bottom,
            }
        }
    }
}

fn lift1(v: ConstLattice<CVal>, f: impl FnOnce(CVal) -> Option<CVal>) -> ConstLattice<CVal> {
    match v {
        ConstLattice::Const(c) => match f(c) {
            Some(r) => ConstLattice::Const(r),
            None => ConstLattice::Bottom,
        },
        other => other,
    }
}

fn lift2(
    a: ConstLattice<CVal>,
    b: ConstLattice<CVal>,
    f: impl FnOnce(CVal, CVal) -> Option<CVal>,
) -> ConstLattice<CVal> {
    use ConstLattice::*;
    match (a, b) {
        (Bottom, _) | (_, Bottom) => Bottom,
        (Top, _) | (_, Top) => Top,
        (Const(x), Const(y)) => match f(x, y) {
            Some(r) => Const(r),
            None => Bottom,
        },
    }
}

fn eval_binop(op: BinOp, a: CVal, b: CVal) -> Option<CVal> {
    use BinOp::*;
    match op {
        And => return Some(CVal::Bool(a.truthy() && b.truthy())),
        Or => return Some(CVal::Bool(a.truthy() || b.truthy())),
        _ => {}
    }
    // Integer arithmetic stays integral; anything mixing reals goes real.
    // Overflow (including `i64::MIN / -1`) folds to "not a constant"
    // rather than panicking in debug builds — same treatment as division
    // by zero.
    if let (CVal::Int(x), CVal::Int(y)) = (a, b) {
        return match op {
            Add => x.checked_add(y).map(CVal::Int),
            Sub => x.checked_sub(y).map(CVal::Int),
            Mul => x.checked_mul(y).map(CVal::Int),
            Div => x.checked_div(y).map(CVal::Int),
            Eq => Some(CVal::Bool(x == y)),
            Ne => Some(CVal::Bool(x != y)),
            Lt => Some(CVal::Bool(x < y)),
            Le => Some(CVal::Bool(x <= y)),
            Gt => Some(CVal::Bool(x > y)),
            Ge => Some(CVal::Bool(x >= y)),
            // Handled by the early return above; `None` keeps the fold
            // panic-free regardless.
            And | Or => None,
        };
    }
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    match op {
        Add => Some(CVal::Real(x + y)),
        Sub => Some(CVal::Real(x - y)),
        Mul => Some(CVal::Real(x * y)),
        Div => (y != 0.0).then(|| CVal::Real(x / y)),
        Eq => Some(CVal::Bool(x == y)),
        Ne => Some(CVal::Bool(x != y)),
        Lt => Some(CVal::Bool(x < y)),
        Le => Some(CVal::Bool(x <= y)),
        Gt => Some(CVal::Bool(x > y)),
        Ge => Some(CVal::Bool(x >= y)),
        // Handled by the early return above; see the integer arm.
        And | Or => None,
    }
}

/// Fold one intrinsic over constant arguments. Sema enforces arities, but
/// indexing stays checked (`get`) and the `i64` edge cases
/// (`i64::MIN.rem_euclid(-1)`, `i64::MIN.abs()`) fold to "not a constant"
/// instead of panicking.
fn eval_intrinsic(i: Intrinsic, args: &[CVal]) -> Option<CVal> {
    let a0 = *args.first()?;
    match i {
        Intrinsic::Mod => {
            let (a, m) = (a0.as_int()?, args.get(1)?.as_int()?);
            a.checked_rem_euclid(m).map(CVal::Int)
        }
        Intrinsic::Max | Intrinsic::Min => {
            let a1 = *args.get(1)?;
            if let (CVal::Int(x), CVal::Int(y)) = (a0, a1) {
                return Some(CVal::Int(if i == Intrinsic::Max {
                    x.max(y)
                } else {
                    x.min(y)
                }));
            }
            let (x, y) = (a0.as_f64()?, a1.as_f64()?);
            Some(CVal::Real(if i == Intrinsic::Max {
                x.max(y)
            } else {
                x.min(y)
            }))
        }
        Intrinsic::Abs => match a0 {
            CVal::Int(v) => v.checked_abs().map(CVal::Int),
            CVal::Real(v) => Some(CVal::Real(v.abs())),
            CVal::Bool(_) => None,
        },
        Intrinsic::Sqrt => Some(CVal::Real(a0.as_f64()?.abs().sqrt())),
        Intrinsic::Exp => Some(CVal::Real(a0.as_f64()?.exp())),
        Intrinsic::Log => Some(CVal::Real(a0.as_f64()?.abs().max(1e-300).ln())),
        Intrinsic::Sin => Some(CVal::Real(a0.as_f64()?.sin())),
        Intrinsic::Cos => Some(CVal::Real(a0.as_f64()?.cos())),
    }
}

/// The reaching-constants problem. Borrow the ICFG (for payloads/bindings)
/// and solve over either the ICFG itself or its MPI-ICFG.
pub struct ReachingConsts<'g> {
    icfg: &'g Icfg,
    maps: BindMaps,
    universe: usize,
}

impl<'g> ReachingConsts<'g> {
    pub fn new(icfg: &'g Icfg) -> Self {
        ReachingConsts {
            icfg,
            maps: BindMaps::build(icfg),
            universe: icfg.ir.locs.len(),
        }
    }

    fn resolver(&self, node: NodeId) -> impl Fn(&str) -> Option<Loc> + '_ {
        let proc = self.icfg.proc_of(node);
        move |name| self.icfg.ir.locs.resolve(proc, name)
    }

    fn assign(&self, env: &mut ConstEnv, lhs: &RefInfo, v: ConstLattice<CVal>) {
        if lhs.is_strong_def() {
            env.set(lhs.loc, v);
        } else {
            env.weaken(lhs.loc, &v);
        }
    }
}

impl Dataflow for ReachingConsts<'_> {
    type Fact = ConstEnv;
    type CommFact = ConstLattice<CVal>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> ConstEnv {
        ConstEnv::top(self.universe)
    }

    fn boundary(&self) -> ConstEnv {
        // Nothing is known at the context entry.
        ConstEnv::bottom(self.universe)
    }

    fn meet_into(&self, dst: &mut ConstEnv, src: &ConstEnv) -> bool {
        dst.meet_env(src)
    }

    fn transfer(&self, node: NodeId, input: &ConstEnv, comm: &[Self::CommFact]) -> ConstEnv {
        let mut out = input.clone();
        match &self.icfg.payload(node).kind {
            NodeKind::Assign { lhs, rhs } => {
                let v = eval_expr(&rhs.expr, input, &self.resolver(node));
                self.assign(&mut out, lhs, v);
            }
            NodeKind::Read { target } => {
                self.assign(&mut out, target, ConstLattice::Bottom);
            }
            NodeKind::Mpi(m) if m.kind.receives_data() => {
                // A malformed receive with no recorded buffer updates
                // nothing (reported elsewhere; never panic here).
                if let Some(buf) = m.buf.as_ref() {
                    // Meet the values arriving over all communication edges
                    // (the paper's ⊓ over commpred(n)); with no incoming
                    // edges the meet is ⊤ (unreachable receive).
                    let mut v = ConstLattice::Top;
                    for c in comm {
                        v.meet_with(c);
                    }
                    match m.kind {
                        MpiKind::Recv | MpiKind::Irecv => self.assign(&mut out, buf, v),
                        // The root of a bcast/reduce keeps its local value,
                        // so the received value can only be met in weakly.
                        MpiKind::Bcast => out.weaken(buf.loc, &v),
                        MpiKind::Reduce | MpiKind::Allreduce => {
                            // The reduction result is the operator applied
                            // across processes: only idempotent operators
                            // (MAX/MIN) preserve a shared constant.
                            let r = match m.op {
                                Some(RedOp::Max | RedOp::Min) => v,
                                _ => ConstLattice::Bottom,
                            };
                            if m.kind == MpiKind::Allreduce {
                                self.assign(&mut out, buf, r);
                            } else {
                                out.weaken(buf.loc, &r);
                            }
                        }
                        _ => {}
                    }
                }
            }
            // Entry/Exit/Branch/Print/Nop/CallSite/AfterCall: identity.
            _ => {}
        }
        out
    }

    fn comm_transfer(&self, node: NodeId, input: &ConstEnv) -> Self::CommFact {
        // commOUT(n) = f_comm(IN(n)): the lattice value of the sent data.
        match &self.icfg.payload(node).kind {
            NodeKind::Mpi(m) if m.kind.sends_data() => match m.kind {
                // Malformed nodes with a missing operand send ⊥ — the
                // conservative value that never enables edge pruning.
                MpiKind::Reduce | MpiKind::Allreduce => match m.value.as_ref() {
                    Some(value) => eval_expr(&value.expr, input, &self.resolver(node)),
                    None => ConstLattice::Bottom,
                },
                _ => match m.buf.as_ref() {
                    Some(buf) => *input.get(buf.loc),
                    None => ConstLattice::Bottom,
                },
            },
            // Receive-only nodes can be comm-edge *sources* in backward
            // problems, never here; other nodes have no comm edges.
            _ => ConstLattice::Top,
        }
    }

    fn translate(&self, edge: &Edge, fact: &ConstEnv) -> Option<ConstEnv> {
        match edge.kind {
            EdgeKind::Call { site } => {
                let cs = self.icfg.call_site(site);
                let args = self.icfg.call_args(site);
                let mut out = fact.clone();
                // Fresh locals of the callee hold no known constant.
                for &l in self.maps.locals_of(cs.callee) {
                    out.set(l, ConstLattice::Bottom);
                }
                for b in &cs.bindings {
                    let v = match b.actual {
                        ActualBinding::RefWhole(a) | ActualBinding::RefElement(a) => *fact.get(a),
                        ActualBinding::Value => eval_expr(
                            &args.args[b.arg_idx].value.expr,
                            fact,
                            &self.resolver(cs.call_node),
                        ),
                    };
                    out.set(b.formal, v);
                }
                Some(out)
            }
            EdgeKind::Return { site } => {
                let cs = self.icfg.call_site(site);
                let mut out = fact.clone();
                for b in &cs.bindings {
                    match b.actual {
                        ActualBinding::RefWhole(a) => out.set(a, *fact.get(b.formal)),
                        ActualBinding::RefElement(a) => {
                            let v = *fact.get(b.formal);
                            out.weaken(a, &v);
                        }
                        ActualBinding::Value => {}
                    }
                }
                // Callee frame is dead past the return.
                for &l in self.maps.frame_of(cs.callee) {
                    out.set(l, ConstLattice::Top);
                }
                Some(out)
            }
            _ => None,
        }
    }
}

/// Solve reaching constants over the plain ICFG.
pub fn analyze_icfg(icfg: &Icfg) -> Solution<ConstEnv> {
    Solver::new(&ReachingConsts::new(icfg), icfg).run()
}

/// Solve reaching constants over the MPI-ICFG (communication edges active).
pub fn analyze_mpi(mpi: &MpiIcfg) -> Solution<ConstEnv> {
    Solver::new(&ReachingConsts::new(mpi.icfg()), mpi).run()
}

/// A self-contained constant query for MPI-edge matching: snapshots the
/// per-node input environments so it can outlive the ICFG it was computed
/// from (the ICFG is consumed by `MpiIcfg::build`).
pub struct ConstsQuery {
    ir: Arc<ProgramIr>,
    node_proc: Vec<ProcId>,
    env_at: Vec<ConstEnv>,
    /// Round-robin passes the underlying solve took (reported in stats).
    pub passes: usize,
}

impl ConstsQuery {
    /// Run reaching constants over `icfg` (no communication edges — this is
    /// the bootstrap analysis the paper uses for matching) and snapshot.
    pub fn compute(icfg: &Icfg) -> ConstsQuery {
        let sol = analyze_icfg(icfg);
        Self::snapshot(icfg, sol)
    }

    /// Budget-aware [`ConstsQuery::compute`]. A non-fixpoint constant
    /// snapshot could *unsoundly* prune communication edges (a location may
    /// still look constant before the meet that would have lowered it to
    /// ⊥), so if the solve does not converge within `params` the query is
    /// refused and the caller must fall back to a cheaper matching.
    pub fn compute_with(
        icfg: &Icfg,
        params: &SolveParams,
    ) -> Result<ConstsQuery, mpi_dfa_core::budget::Exhaustion> {
        let sol = {
            let mut span = mpi_dfa_core::telemetry::span("analysis", "consts:bootstrap");
            let sol = Solver::new(&ReachingConsts::new(icfg), icfg)
                .params(params.clone())
                .run();
            span.arg("converged", sol.stats.converged);
            sol
        };
        sol.stats.publish_metrics("consts");
        if !sol.stats.converged {
            return Err(sol
                .stats
                .exhausted
                .unwrap_or(mpi_dfa_core::budget::Exhaustion::WorkUnits));
        }
        Ok(Self::snapshot(icfg, sol))
    }

    fn snapshot(icfg: &Icfg, sol: Solution<ConstEnv>) -> ConstsQuery {
        ConstsQuery {
            ir: icfg.ir.clone(),
            node_proc: icfg.nodes().map(|n| icfg.proc_of(n)).collect(),
            passes: sol.stats.passes,
            env_at: sol.input,
        }
    }
}

impl ConstQuery for ConstsQuery {
    fn eval_int(&self, node: NodeId, expr: &Expr) -> Option<i64> {
        let proc = self.node_proc[node.index()];
        let env = &self.env_at[node.index()];
        match eval_expr(expr, env, &|name| self.ir.locs.resolve(proc, name)) {
            ConstLattice::Const(c) => c.as_int(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_graph::icfg::Icfg;
    use mpi_dfa_graph::mpi::SyntacticConsts;

    fn icfg(src: &str, context: &str) -> Icfg {
        let ir = ProgramIr::from_source(src).expect("compile");
        Icfg::build(ir, context, 0).expect("icfg")
    }

    /// Constant value of `name` at the context exit.
    fn const_at_exit(src: &str, name: &str) -> ConstLattice<CVal> {
        let g = icfg(src, "main");
        let mpi = MpiIcfg::build(g, &SyntacticConsts);
        let sol = analyze_mpi(&mpi);
        let loc = mpi.resolve_at(mpi.context_exit(), name).expect("name");
        *sol.input[mpi.context_exit().index()].get(loc)
    }

    #[test]
    fn straight_line_constants() {
        let v = const_at_exit(
            "program p global x: real; sub main() { x = 2.0; x = x * 3.0; }",
            "x",
        );
        assert_eq!(v, ConstLattice::Const(CVal::Real(6.0)));
    }

    #[test]
    fn branch_merge_conflicts() {
        let v = const_at_exit(
            "program p global x: real;\n\
             sub main() { if (rank() == 0) { x = 1.0; } else { x = 2.0; } }",
            "x",
        );
        assert!(v.is_bottom());
        let same = const_at_exit(
            "program p global x: real;\n\
             sub main() { if (rank() == 0) { x = 5.0; } else { x = 5.0; } }",
            "x",
        );
        assert_eq!(same, ConstLattice::Const(CVal::Real(5.0)));
    }

    #[test]
    fn rank_is_never_constant() {
        let v = const_at_exit("program p global k: int; sub main() { k = rank(); }", "k");
        assert!(v.is_bottom());
        let n = const_at_exit("program p global k: int; sub main() { k = nprocs(); }", "k");
        assert!(n.is_bottom());
    }

    #[test]
    fn read_kills_constants() {
        let v = const_at_exit(
            "program p global x: real; sub main() { x = 1.0; read(x); }",
            "x",
        );
        assert!(v.is_bottom());
    }

    #[test]
    fn array_whole_assign_is_strong_element_weak() {
        let whole = const_at_exit("program p global a: real[4]; sub main() { a = 3.0; }", "a");
        assert_eq!(whole, ConstLattice::Const(CVal::Real(3.0)));
        let elem = const_at_exit(
            "program p global a: real[4]; global i: int;\n\
             sub main() { a = 3.0; a[i] = 3.0; }",
            "a",
        );
        assert_eq!(
            elem,
            ConstLattice::Const(CVal::Real(3.0)),
            "same value stays"
        );
        let clobber = const_at_exit(
            "program p global a: real[4]; global i: int;\n\
             sub main() { a = 3.0; a[i] = 4.0; }",
            "a",
        );
        assert!(clobber.is_bottom(), "weak update meets 3 and 4");
    }

    #[test]
    fn figure1_constant_flows_over_comm_edge() {
        // The paper's Figure 1 program. send(x) where x = 0 + 1 = 1; the
        // comm edge gives y the constant 1 at the receive.
        let src = "program fig1\n\
            global x: real; global z: real; global b: real; global y: real;\n\
            global f: real;\n\
            sub main() {\n\
              x = 0.0; z = 2.0; b = 7.0;\n\
              if (rank() == 0) {\n\
                x = x + 1.0; b = x * 3.0; send(x, 1, 9);\n\
              } else {\n\
                recv(y, 0, 9); z = b * y;\n\
              }\n\
              reduce(SUM, z, f, 0);\n\
            }";
        let g = icfg(src, "main");
        let mpi = MpiIcfg::build(g, &SyntacticConsts);
        assert_eq!(mpi.comm_edges.len() - /* reduce self-edge */ 1, 1);
        let sol = analyze_mpi(&mpi);
        // Find the recv node and check y's OUT value.
        let recv = mpi
            .mpi_nodes()
            .iter()
            .copied()
            .find(|&n| matches!(&mpi.payload(n).kind, NodeKind::Mpi(m) if m.kind == MpiKind::Recv))
            .unwrap();
        let y = mpi.resolve_at(recv, "y").unwrap();
        assert_eq!(
            sol.output[recv.index()].get(y),
            &ConstLattice::Const(CVal::Real(1.0)),
            "y receives the constant 1 over the communication edge"
        );
        // z = b * y = 7 * 1 = 7 after the else branch, but the merge with
        // the then branch (z = 2) makes z non-constant at exit.
        let z = mpi.resolve_at(mpi.context_exit(), "z").unwrap();
        assert!(sol.input[mpi.context_exit().index()].get(z).is_bottom());
    }

    #[test]
    fn without_comm_edges_receive_is_unknown() {
        let src = "program p global x: real; global y: real;\n\
             sub main() { x = 4.0; if (rank() == 0) { send(x, 1, 9); } else { recv(y, 0, 9); } }";
        let g = icfg(src, "main");
        let sol_plain = analyze_icfg(&g);
        let y = g.resolve_at(g.context_exit(), "y").unwrap();
        // Plain ICFG: the receive node has no comm preds; the meet over the
        // empty set is ⊤ on the recv path, merged with ⊤ from the other
        // branch (y untouched at entry = ⊥ boundary)... boundary makes y ⊥.
        assert!(sol_plain.input[g.context_exit().index()].get(y).is_bottom());

        let mpi = MpiIcfg::build(icfg(src, "main"), &SyntacticConsts);
        let sol = analyze_mpi(&mpi);
        let y = mpi.resolve_at(mpi.context_exit(), "y").unwrap();
        // With the comm edge, the else-branch OUT has y = 4; the merge with
        // the then-branch (y = ⊥ from entry) is ⊥ at exit — but at the recv
        // node itself y is the constant.
        let recv = mpi
            .mpi_nodes()
            .iter()
            .copied()
            .find(|&n| matches!(&mpi.payload(n).kind, NodeKind::Mpi(m) if m.kind == MpiKind::Recv))
            .unwrap();
        assert_eq!(
            sol.output[recv.index()].get(y),
            &ConstLattice::Const(CVal::Real(4.0))
        );
    }

    #[test]
    fn conflicting_sends_meet_to_bottom() {
        let src = "program p global x: real; global w: real; global y: real;\n\
             sub main() {\n\
               x = 1.0; w = 2.0;\n\
               if (rank() == 0) { send(x, 2, 5); }\n\
               if (rank() == 1) { send(w, 2, 5); }\n\
               if (rank() == 2) { recv(y, ANY, 5); }\n\
             }";
        let mpi = MpiIcfg::build(icfg(src, "main"), &SyntacticConsts);
        assert_eq!(mpi.comm_edges.len(), 2);
        let sol = analyze_mpi(&mpi);
        let recv = mpi
            .mpi_nodes()
            .iter()
            .copied()
            .find(|&n| matches!(&mpi.payload(n).kind, NodeKind::Mpi(m) if m.kind == MpiKind::Recv))
            .unwrap();
        let y = mpi.resolve_at(recv, "y").unwrap();
        assert!(sol.output[recv.index()].get(y).is_bottom(), "1 ⊓ 2 = ⊥");
    }

    #[test]
    fn agreeing_sends_stay_constant() {
        let src = "program p global x: real; global y: real;\n\
             sub main() {\n\
               x = 9.0;\n\
               if (rank() == 0) { send(x, 2, 5); }\n\
               if (rank() == 1) { send(x, 2, 5); }\n\
               if (rank() == 2) { recv(y, ANY, 5); }\n\
             }";
        let mpi = MpiIcfg::build(icfg(src, "main"), &SyntacticConsts);
        let sol = analyze_mpi(&mpi);
        let recv = mpi
            .mpi_nodes()
            .iter()
            .copied()
            .find(|&n| matches!(&mpi.payload(n).kind, NodeKind::Mpi(m) if m.kind == MpiKind::Recv))
            .unwrap();
        let y = mpi.resolve_at(recv, "y").unwrap();
        assert_eq!(
            sol.output[recv.index()].get(y),
            &ConstLattice::Const(CVal::Real(9.0))
        );
    }

    #[test]
    fn bcast_propagates_constant_to_receivers() {
        let src = "program p global c: real;\n\
             sub main() { if (rank() == 0) { c = 3.5; } bcast(c, 0); }";
        let mpi = MpiIcfg::build(icfg(src, "main"), &SyntacticConsts);
        let sol = analyze_mpi(&mpi);
        let bcast = mpi.mpi_nodes()[0];
        let c = mpi.resolve_at(bcast, "c").unwrap();
        // At the bcast, IN(c) = 3.5 ⊓ ⊥ (branch not taken) = ⊥, so even the
        // comm edge carries ⊥: correct, non-root processes had c unset.
        assert!(sol.output[bcast.index()].get(c).is_bottom());

        // When every process sets the same constant first, it survives.
        let src2 = "program p global c: real;\n\
             sub main() { c = 3.5; bcast(c, 0); }";
        let mpi2 = MpiIcfg::build(icfg(src2, "main"), &SyntacticConsts);
        let sol2 = analyze_mpi(&mpi2);
        let bcast2 = mpi2.mpi_nodes()[0];
        let c2 = mpi2.resolve_at(bcast2, "c").unwrap();
        assert_eq!(
            sol2.output[bcast2.index()].get(c2),
            &ConstLattice::Const(CVal::Real(3.5))
        );
    }

    #[test]
    fn reduce_max_of_shared_constant_survives_sum_does_not() {
        let max = "program p global s: real; global r: real;\n\
             sub main() { s = 2.0; reduce(MAX, s, r, 0); }";
        let mpi = MpiIcfg::build(icfg(max, "main"), &SyntacticConsts);
        let sol = analyze_mpi(&mpi);
        let node = mpi.mpi_nodes()[0];
        let r = mpi.resolve_at(node, "r").unwrap();
        // Weak on reduce (root-only write): r was ⊥ from entry; stays ⊥.
        assert!(sol.output[node.index()].get(r).is_bottom());

        let allmax = "program p global s: real; global r: real;\n\
             sub main() { s = 2.0; allreduce(MAX, s, r); }";
        let mpi2 = MpiIcfg::build(icfg(allmax, "main"), &SyntacticConsts);
        let sol2 = analyze_mpi(&mpi2);
        let node2 = mpi2.mpi_nodes()[0];
        let r2 = mpi2.resolve_at(node2, "r").unwrap();
        assert_eq!(
            sol2.output[node2.index()].get(r2),
            &ConstLattice::Const(CVal::Real(2.0)),
            "allreduce MAX writes everywhere: strong update with shared constant"
        );

        let allsum = "program p global s: real; global r: real;\n\
             sub main() { s = 2.0; allreduce(SUM, s, r); }";
        let mpi3 = MpiIcfg::build(icfg(allsum, "main"), &SyntacticConsts);
        let sol3 = analyze_mpi(&mpi3);
        let node3 = mpi3.mpi_nodes()[0];
        let r3 = mpi3.resolve_at(node3, "r").unwrap();
        assert!(
            sol3.output[node3.index()].get(r3).is_bottom(),
            "SUM depends on nprocs"
        );
    }

    #[test]
    fn constants_cross_call_boundaries() {
        let src = "program p global g: real;\n\
             sub setit(v: real) { v = 8.0; }\n\
             sub main() { g = 1.0; call setit(g); }";
        let v = {
            let g = icfg(src, "main");
            let sol = analyze_icfg(&g);
            let loc = g.resolve_at(g.context_exit(), "g").unwrap();
            *sol.input[g.context_exit().index()].get(loc)
        };
        assert_eq!(
            v,
            ConstLattice::Const(CVal::Real(8.0)),
            "by-ref write propagates back"
        );
    }

    #[test]
    fn value_args_do_not_write_back() {
        let src = "program p global g: real;\n\
             sub f(v: real) { v = 8.0; }\n\
             sub main() { g = 1.0; call f(g + 0.0); }";
        let g = icfg(src, "main");
        let sol = analyze_icfg(&g);
        let loc = g.resolve_at(g.context_exit(), "g").unwrap();
        assert_eq!(
            sol.input[g.context_exit().index()].get(loc),
            &ConstLattice::Const(CVal::Real(1.0))
        );
    }

    #[test]
    fn callee_sees_actual_constant() {
        let src = "program p global g: real; global out: real;\n\
             sub f(v: real) { out = v * 2.0; }\n\
             sub main() { g = 3.0; call f(g); }";
        let g = icfg(src, "main");
        let sol = analyze_icfg(&g);
        let loc = g.resolve_at(g.context_exit(), "out").unwrap();
        assert_eq!(
            sol.input[g.context_exit().index()].get(loc),
            &ConstLattice::Const(CVal::Real(6.0))
        );
    }

    #[test]
    fn two_call_sites_merge_at_shared_instance() {
        let src = "program p global a: real; global b: real;\n\
             sub f(v: real) { v = v + 1.0; }\n\
             sub main() { a = 1.0; b = 10.0; call f(a); call f(b); }";
        let g = icfg(src, "main");
        let sol = analyze_icfg(&g);
        let exit = g.context_exit();
        let a = g.resolve_at(exit, "a").unwrap();
        // Context-insensitive: f's formal merges 1 and 10 → ⊥ inside f,
        // so a's written-back value is ⊥ (the paper's ICFG imprecision).
        assert!(sol.input[exit.index()].get(a).is_bottom());
    }

    #[test]
    fn consts_query_resolves_computed_tags() {
        let src = "program p global x: real; global y: real; global t: int;\n\
             sub main() { t = 3 + 4; send(x, 1, t); recv(y, 0, 7); recv(y, 0, 8); }";
        let g = icfg(src, "main");
        let q = ConstsQuery::compute(&g);
        assert!(q.passes > 0);
        let mpi = MpiIcfg::build(g, &q);
        // t = 7 matches only the tag-7 recv.
        assert_eq!(mpi.comm_edges.len(), 1);
    }

    #[test]
    fn eval_expr_handles_intrinsics() {
        let env = ConstEnv::top(0);
        let resolve = |_: &str| None;
        let e = mpi_dfa_lang::parser::parse(
            "program t sub f() { var q: real; q = max(2.0, 3.0) + abs(-(1)); }",
        )
        .unwrap();
        let mpi_dfa_lang::ast::StmtKind::Assign { rhs, .. } = &e.subs[0].body.stmts[1].kind else {
            unreachable!()
        };
        assert_eq!(
            eval_expr(rhs, &env, &resolve),
            ConstLattice::Const(CVal::Real(4.0))
        );
    }
}
