//! Rank-sensitive may-happen-in-parallel over the MPI-ICFG.
//!
//! SPMD execution means every rank runs the whole program concurrently;
//! what limits parallelism is synchronization. We model the blocking
//! collectives (`barrier`, `bcast`, `reduce`, `allreduce`) as global
//! synchronization points and compute, per node, the set of *phases*
//! (inter-synchronization regions) the node can execute in. The phase
//! computation is an ordinary forward may-analysis run through the
//! [`Solver`] builder, so it inherits region-parallel execution, budget
//! metering, and fixpoint telemetry like every other analysis client.
//!
//! Two communication statements may happen in parallel on ranks `(a, b)`
//! iff they share a phase and their [`RankGuard`]s admit `a` and `b`
//! respectively. Soundness direction: *may* — the verdict
//! over-approximates concurrency **under the assumption that collectives
//! are textually aligned across ranks** (every rank passes the same
//! collective node between phases). Programs that violate that
//! assumption are exactly the ones the match-set and deadlock passes
//! flag, so a clean verify report makes the MHP assumption checkable.

use crate::guard::{Guards, RankGuard};
use crate::report::Diag;
use crate::VerifyConfig;
use mpi_dfa_core::budget::Budget;
use mpi_dfa_core::graph::NodeId;
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{Solution, SolveParams, Solver};
use mpi_dfa_core::varset::VarSet;
use mpi_dfa_graph::icfg::Icfg;
use mpi_dfa_graph::mpi::MpiIcfg;
use mpi_dfa_graph::node::{MpiKind, NodeKind};

/// Cap on sample pairs included in reports (counts are always exact).
pub const SAMPLE_CAP: usize = 12;

/// One concurrent statement pair on one rank pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhpPair {
    pub a: Diag,
    pub b: Diag,
    pub ranks: (usize, usize),
}

/// Concurrency per rank pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPairMhp {
    pub ranks: (usize, usize),
    pub pairs: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhpReport {
    pub nprocs: usize,
    /// Number of synchronization phases discovered (≥ 1).
    pub phases: usize,
    pub per_rank_pair: Vec<RankPairMhp>,
    pub total_pairs: u64,
    pub sample: Vec<MhpPair>,
}

/// True for operations modelled as rank-synchronizing.
fn is_sync(kind: MpiKind) -> bool {
    matches!(
        kind,
        MpiKind::Barrier | MpiKind::Bcast | MpiKind::Reduce | MpiKind::Allreduce
    )
}

/// Forward may-analysis: the set of phases that can reach each node.
/// Phase 0 is the entry phase; each synchronization node begins a fresh
/// phase numbered after itself.
struct PhaseReach {
    /// `phase_of[node.index()]` = the phase this node *starts*, if any.
    phase_of: Vec<u32>,
    universe: usize,
}

const NO_PHASE: u32 = u32::MAX;

impl PhaseReach {
    fn new(icfg: &Icfg) -> Self {
        let mut phase_of = vec![NO_PHASE; mpi_dfa_core::graph::FlowGraph::num_nodes(icfg)];
        let mut next = 1u32;
        for &n in icfg.mpi_nodes() {
            if let NodeKind::Mpi(m) = &icfg.payload(n).kind {
                if is_sync(m.kind) {
                    phase_of[n.index()] = next;
                    next += 1;
                }
            }
        }
        PhaseReach {
            phase_of,
            universe: next as usize,
        }
    }
}

impl Dataflow for PhaseReach {
    type Fact = VarSet;
    type CommFact = ();

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> VarSet {
        VarSet::empty(self.universe)
    }

    fn boundary(&self) -> VarSet {
        let mut f = VarSet::empty(self.universe);
        f.insert(0);
        f
    }

    fn meet_into(&self, dst: &mut VarSet, src: &VarSet) -> bool {
        dst.union_into(src)
    }

    fn transfer(&self, node: NodeId, input: &VarSet, _comm: &[()]) -> VarSet {
        let p = self.phase_of[node.index()];
        if p == NO_PHASE {
            input.clone()
        } else {
            let mut f = VarSet::empty(self.universe);
            f.insert(p as usize);
            f
        }
    }

    fn comm_transfer(&self, _node: NodeId, _input: &VarSet) {}

    // Phases are global: call/return edges carry the fact unchanged, so
    // the default identity `translate` is exactly right.
}

pub struct MhpError(pub String);

/// Run the phase solve and derive the per-rank-pair MHP relation over the
/// communication statements.
pub fn analyze(
    g: &MpiIcfg,
    guards: &Guards,
    reachable: &[bool],
    cfg: &VerifyConfig,
    budget: &Budget,
) -> Result<MhpReport, MhpError> {
    let mut span = mpi_dfa_core::telemetry::span("verify", "mhp");
    let icfg = g.icfg();
    let problem = PhaseReach::new(icfg);
    let phases = problem.universe;
    let sol: Solution<VarSet> = Solver::new(&problem, g)
        .params(SolveParams {
            max_passes: cfg.max_passes,
            budget: budget.clone(),
            ..SolveParams::default()
        })
        .run();
    sol.stats.publish_metrics("verify_mhp");
    if !sol.stats.converged {
        let why = match &sol.stats.exhausted {
            Some(e) => format!("budget exhausted: {e:?}"),
            None => "pass bound hit".to_string(),
        };
        return Err(MhpError(format!(
            "mhp phase solve did not converge ({why})"
        )));
    }

    // Candidate statements: reachable communication operations.
    let stmts: Vec<NodeId> = icfg
        .mpi_nodes()
        .iter()
        .copied()
        .filter(|n| reachable.get(n.index()).copied().unwrap_or(false))
        .collect();
    let guard_of = |n: NodeId| -> &RankGuard {
        match icfg.payload(n).stmt {
            Some(sid) => guards.of(sid),
            None => {
                static ANY: RankGuard = RankGuard::any_const();
                &ANY
            }
        }
    };

    let nprocs = cfg.nprocs;
    let mut per_pair: Vec<RankPairMhp> = Vec::new();
    for a in 0..nprocs {
        for b in (a + 1)..nprocs {
            per_pair.push(RankPairMhp {
                ranks: (a, b),
                pairs: 0,
            });
        }
    }
    let mut total = 0u64;
    let mut sample: Vec<MhpPair> = Vec::new();

    let sync_of = |n: NodeId| match &icfg.payload(n).kind {
        NodeKind::Mpi(m) => is_sync(m.kind),
        _ => false,
    };
    for (i, &n1) in stmts.iter().enumerate() {
        let p1 = sol.before(n1);
        let g1 = guard_of(n1);
        let s1 = sync_of(n1);
        for &n2 in &stmts[i..] {
            // A rank parked *at* a synchronization point is not executing
            // in a race-relevant sense: cross pairs between a sync node
            // and an ordinary statement are noise, so only sync‖sync and
            // plain‖plain pairs are reported.
            if s1 != sync_of(n2) {
                continue;
            }
            let p2 = sol.before(n2);
            if p1.intersection(p2).is_empty() {
                continue;
            }
            let g2 = guard_of(n2);
            let mut slot = 0usize;
            for a in 0..nprocs {
                for b in (a + 1)..nprocs {
                    let forward = g1.admits(a, nprocs) && g2.admits(b, nprocs);
                    let backward = g1.admits(b, nprocs) && g2.admits(a, nprocs);
                    if forward || backward {
                        per_pair[slot].pairs += 1;
                        total += 1;
                        if sample.len() < SAMPLE_CAP {
                            sample.push(MhpPair {
                                a: Diag::at(g, n1, String::new()),
                                b: Diag::at(g, n2, String::new()),
                                ranks: (a, b),
                            });
                        }
                    }
                    slot += 1;
                }
            }
        }
    }

    span.arg("phases", phases.to_string());
    span.arg("pairs", total.to_string());
    Ok(MhpReport {
        nprocs,
        phases,
        per_rank_pair: per_pair,
        total_pairs: total,
        sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{build, reachable_from_entry};

    fn run(src: &str, nprocs: usize) -> MhpReport {
        let g = build(src);
        let guards = Guards::build(&g.icfg().ir.unit.program);
        let reach = reachable_from_entry(&g);
        let cfg = VerifyConfig {
            nprocs,
            ..VerifyConfig::default()
        };
        analyze(&g, &guards, &reach, &cfg, &Budget::unlimited())
            .map_err(|e| e.0)
            .unwrap()
    }

    #[test]
    fn disjoint_rank_branches_are_not_self_parallel() {
        // send runs only on rank 0, recv only on rank 1: the send can
        // never happen in parallel with *itself* on two ranks, but it can
        // with the recv.
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); } }",
            2,
        );
        assert_eq!(r.phases, 1);
        assert_eq!(r.per_rank_pair.len(), 1);
        // Exactly one concurrent pair: (send, recv).
        assert_eq!(r.total_pairs, 1, "{r:?}");
    }

    #[test]
    fn barrier_separates_phases() {
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() {\n\
               if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); }\n\
               barrier();\n\
               if (rank() == 0) { send(x, 1, 8); } else { recv(y, 0, 8); }\n\
             }",
            2,
        );
        assert_eq!(r.phases, 2);
        // send/recv across the barrier never overlap: 1 pair per phase,
        // plus the barrier itself is concurrent with nothing p2p... the
        // barrier statement pairs with itself on the two ranks.
        let pre_post_cross: Vec<&MhpPair> = r
            .sample
            .iter()
            .filter(|p| {
                p.a.span != p.b.span && (p.a.op.contains("barrier") || p.b.op.contains("barrier"))
            })
            .collect();
        assert!(pre_post_cross.is_empty(), "{r:#?}");
        assert_eq!(r.total_pairs, 3, "{r:#?}");
    }

    #[test]
    fn unsynchronized_statements_all_overlap() {
        let r = run(
            "program p global x: real; global y: real;\n\
             sub main() { send(x, 1 - rank(), 5); recv(y, 1 - rank(), 5); }",
            2,
        );
        // send‖send, send‖recv, recv‖recv on the single rank pair.
        assert_eq!(r.total_pairs, 3, "{r:#?}");
    }
}
