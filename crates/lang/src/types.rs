//! The SMPL type system: four base types plus rectangular arrays.
//!
//! Byte sizes follow the Fortran conventions the paper's benchmarks use:
//! `int` and `logical` are 4 bytes, `real` is an 8-byte double, `real4` a
//! 4-byte single. Active-byte accounting (Table 1) sums these sizes over the
//! active symbol list, counting arrays at full size.

use std::fmt;

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    Int,
    /// 8-byte floating point (Fortran `real*8` / `double precision`).
    Real,
    /// 4-byte floating point (Fortran `real*4`).
    Real4,
    Logical,
}

impl BaseType {
    /// Size of one element in bytes.
    pub fn byte_size(self) -> u64 {
        match self {
            BaseType::Int | BaseType::Logical | BaseType::Real4 => 4,
            BaseType::Real => 8,
        }
    }

    /// Whether values of this type participate in differentiation.
    /// Activity analysis only tracks floating-point data.
    pub fn is_float(self) -> bool {
        matches!(self, BaseType::Real | BaseType::Real4)
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int => write!(f, "int"),
            BaseType::Real => write!(f, "real"),
            BaseType::Real4 => write!(f, "real4"),
            BaseType::Logical => write!(f, "logical"),
        }
    }
}

/// A complete SMPL type: a base type plus zero or more array dimensions.
/// An empty dimension list denotes a scalar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    pub base: BaseType,
    /// Extents of each dimension; all dimensions are 1-based like Fortran.
    pub dims: Vec<i64>,
}

impl Type {
    pub fn scalar(base: BaseType) -> Self {
        Type {
            base,
            dims: Vec::new(),
        }
    }

    pub fn array(base: BaseType, dims: Vec<i64>) -> Self {
        debug_assert!(!dims.is_empty());
        Type { base, dims }
    }

    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }

    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total number of scalar elements (1 for scalars). Saturating: a
    /// product past `u64::MAX` clamps instead of overflowing — sema rejects
    /// such declarations (see its `MAX_DECL_BYTES` cap) before any analysis
    /// consumes the size, but size queries must stay panic-free on
    /// arbitrary ASTs regardless.
    pub fn elem_count(&self) -> u64 {
        self.dims
            .iter()
            .map(|&d| d.max(0) as u64)
            .fold(1u64, u64::saturating_mul)
    }

    /// Total storage in bytes (saturating, see [`Type::elem_count`]).
    pub fn byte_size(&self) -> u64 {
        self.elem_count().saturating_mul(self.base.byte_size())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if !self.dims.is_empty() {
            write!(f, "[")?;
            for (i, d) in self.dims.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::scalar(BaseType::Int).byte_size(), 4);
        assert_eq!(Type::scalar(BaseType::Real).byte_size(), 8);
        assert_eq!(Type::scalar(BaseType::Real4).byte_size(), 4);
        assert_eq!(Type::scalar(BaseType::Logical).byte_size(), 4);
    }

    #[test]
    fn array_sizes_multiply_dims() {
        let t = Type::array(BaseType::Real, vec![5, 10, 3]);
        assert_eq!(t.elem_count(), 150);
        assert_eq!(t.byte_size(), 1200);
    }

    #[test]
    fn float_classification() {
        assert!(BaseType::Real.is_float());
        assert!(BaseType::Real4.is_float());
        assert!(!BaseType::Int.is_float());
        assert!(!BaseType::Logical.is_float());
    }

    #[test]
    fn display_round_trip_shape() {
        assert_eq!(Type::scalar(BaseType::Real).to_string(), "real");
        assert_eq!(
            Type::array(BaseType::Real4, vec![2, 3]).to_string(),
            "real4[2,3]"
        );
    }
}
