//! On-disk Table-1 row cache for the `repro` driver (`--cache-dir`).
//!
//! Keys are content-addressed: the 128-bit FNV hash of the row's *entire
//! analysis configuration* — the spec's identity and inputs, the bundled
//! program's exact source text, and the governor knobs that can change the
//! published numbers (deterministic budget caps, degrade mode, pass
//! bound). Flipping any knob — including `--degrade` — changes the key, so
//! a degraded row can never be served for a precise request (the same
//! contract as the service's result cache in `crates/service`).
//!
//! Runs under a wall-clock deadline (`--budget-ms`) get **no** key: their
//! tier outcome is timing-dependent, so "hit ≡ recompute" cannot hold and
//! they bypass the cache entirely.
//!
//! Records are a versioned plain-text format (the workspace is
//! dependency-free); any parse failure is treated as a miss, so stale or
//! truncated files only cost a recompute. A cached row restores with
//! `budget_spent.elapsed == 0` — wall clock is an observation of the
//! original run, not part of the result, and a hit does no analysis work.

use crate::experiments::ExperimentSpec;
use crate::programs;
use crate::runner::{MeasuredMode, MeasuredRow};
use mpi_dfa_analyses::governor::{AnalysisProvenance, GovernorConfig, Tier};
use mpi_dfa_core::budget::BudgetSpent;
use mpi_dfa_core::cache::DiskStore;
use mpi_dfa_core::hash::Hasher128;
use std::time::Duration;

/// Disk namespace holding serialized rows.
pub const ROWS_NAMESPACE: &str = "table1-rows";

/// Bump when the record format or key schema changes; old entries miss.
pub const ROW_SCHEMA_VERSION: u64 = 1;

/// A [`DiskStore`]-backed cache of measured Table-1 rows.
#[derive(Debug)]
pub struct RowCache {
    store: DiskStore,
}

impl RowCache {
    /// Open (creating directories as needed) a row cache rooted at `dir`.
    pub fn open(dir: &str) -> Result<RowCache, String> {
        Ok(RowCache {
            store: DiskStore::open(dir).map_err(|e| format!("--cache-dir {dir}: {e}"))?,
        })
    }

    /// The content-addressed key for `spec` under `gov`, or `None` when
    /// the run must bypass the cache (wall-clock deadline budget).
    ///
    /// The governor's solver `strategy` is deliberately **not** hashed:
    /// every strategy produces identical rows (`docs/SOLVER.md`), so a row
    /// computed under one strategy is a valid hit for any other.
    pub fn key(spec: &ExperimentSpec, gov: Option<&GovernorConfig>) -> Option<u128> {
        if gov.is_some_and(|g| g.budget.deadline.is_some()) {
            return None;
        }
        // Unknown program: nothing to hash; the runner will fail loudly.
        let source = programs::source(spec.program)?;
        let mut h = Hasher128::new();
        h.write_str("table1-row")
            .write_u64(ROW_SCHEMA_VERSION)
            .write_str(spec.id)
            .write_str(spec.program)
            .write_str(source)
            .write_str(spec.context)
            .write_u64(spec.clone_level as u64)
            .write_strs(spec.independents)
            .write_strs(spec.dependents)
            .write_u64(spec.num_indeps);
        match gov {
            None => {
                h.write_str("ungoverned");
            }
            Some(g) => {
                h.write_str("governed")
                    .write_u64(g.clone_level as u64)
                    .write_str(&format!("{:?}", g.matching))
                    .write_opt_u64(g.budget.max_work)
                    .write_opt_u64(g.budget.max_fact_bytes)
                    .write_str(&format!("{:?}", g.degrade))
                    .write_u64(g.max_passes as u64);
            }
        }
        Some(h.finish())
    }

    /// Fetch a cached row for `spec`; any missing, corrupt, or
    /// version-skewed record is a miss.
    pub fn get(&self, key: u128, spec: &ExperimentSpec) -> Option<MeasuredRow> {
        let bytes = self.store.get(ROWS_NAMESPACE, key)?;
        let text = String::from_utf8(bytes).ok()?;
        parse_row(&text, spec)
    }

    /// Store a freshly measured row; failures are silent (they only cost
    /// future misses).
    pub fn put(&self, key: u128, row: &MeasuredRow) {
        let _ = self
            .store
            .put(ROWS_NAMESPACE, key, render_row(row).as_bytes());
    }
}

fn render_mode(m: &MeasuredMode) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {}",
        m.iterations,
        m.active_bytes,
        m.deriv_bytes,
        m.active_locs,
        m.converged,
        m.node_visits,
        m.meets,
        m.comm_evals,
        m.worklist_peak
    )
}

fn render_row(row: &MeasuredRow) -> String {
    let prov = match &row.provenance {
        None => "none".to_string(),
        Some(p) => format!(
            "{} {} {} {}",
            p.tier,
            p.saturated,
            p.budget_spent.work,
            // Reason last: free text, newlines escaped.
            p.degradation_reason
                .as_deref()
                .map(|r| r.replace('\\', "\\\\").replace('\n', "\\n"))
                .unwrap_or_else(|| "-".to_string()),
        ),
    };
    format!(
        "rowcache v{ROW_SCHEMA_VERSION}\nicfg {}\nmpi {}\ncomm_edges {}\nprov {}\n",
        render_mode(&row.icfg),
        render_mode(&row.mpi),
        row.comm_edges,
        prov
    )
}

fn parse_mode(line: &str) -> Option<MeasuredMode> {
    let mut it = line.split_ascii_whitespace();
    let mut num = || it.next()?.parse::<u64>().ok();
    let iterations = num()?;
    let active_bytes = num()?;
    let deriv_bytes = num()?;
    let active_locs = num()?;
    let converged = match it.next()? {
        "true" => true,
        "false" => false,
        _ => return None,
    };
    let mut num = || it.next()?.parse::<u64>().ok();
    let node_visits = num()?;
    let meets = num()?;
    let comm_evals = num()?;
    let worklist_peak = num()?;
    Some(MeasuredMode {
        iterations,
        active_bytes,
        deriv_bytes,
        active_locs,
        converged,
        node_visits,
        meets,
        comm_evals,
        worklist_peak,
    })
}

fn parse_row(text: &str, spec: &ExperimentSpec) -> Option<MeasuredRow> {
    let mut lines = text.lines();
    if lines.next()? != format!("rowcache v{ROW_SCHEMA_VERSION}") {
        return None;
    }
    let icfg = parse_mode(lines.next()?.strip_prefix("icfg ")?)?;
    let mpi = parse_mode(lines.next()?.strip_prefix("mpi ")?)?;
    let comm_edges: usize = lines.next()?.strip_prefix("comm_edges ")?.parse().ok()?;
    let prov_line = lines.next()?.strip_prefix("prov ")?;
    let provenance = if prov_line == "none" {
        None
    } else {
        let mut it = prov_line.splitn(4, ' ');
        let tier = match it.next()? {
            "T0" => Tier::T0,
            "T1" => Tier::T1,
            "T2" => Tier::T2,
            _ => return None,
        };
        let saturated = match it.next()? {
            "true" => true,
            "false" => false,
            _ => return None,
        };
        let work: u64 = it.next()?.parse().ok()?;
        let reason = match it.next()? {
            "-" => None,
            r => Some(r.replace("\\n", "\n").replace("\\\\", "\\")),
        };
        Some(AnalysisProvenance {
            tier,
            budget_spent: BudgetSpent {
                work,
                elapsed: Duration::ZERO,
            },
            degradation_reason: reason,
            saturated,
        })
    };
    Some(MeasuredRow {
        spec: spec.clone(),
        icfg,
        mpi,
        comm_edges,
        provenance,
        cache: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::by_id;
    use crate::runner;
    use mpi_dfa_analyses::governor::DegradeMode;
    use mpi_dfa_core::budget::Budget;

    fn tmpdir(tag: &str) -> String {
        let d = std::env::temp_dir().join(format!("mpi-dfa-rowcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn round_trips_a_measured_row_exactly() {
        let spec = by_id("Biostat").unwrap();
        let row = runner::run_experiment(&spec);
        let dir = tmpdir("roundtrip");
        let cache = RowCache::open(&dir).unwrap();
        let key = RowCache::key(&spec, None).unwrap();
        assert!(cache.get(key, &spec).is_none(), "cold store is empty");
        cache.put(key, &row);
        let back = cache.get(key, &spec).unwrap();
        assert_eq!(back.icfg, row.icfg);
        assert_eq!(back.mpi, row.mpi);
        assert_eq!(back.comm_edges, row.comm_edges);
        assert_eq!(back.provenance, row.provenance);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governed_provenance_round_trips_without_wall_clock() {
        let spec = by_id("Biostat").unwrap();
        let gov = GovernorConfig::default();
        let row = runner::run_experiment_governed(&spec, &gov).unwrap();
        let dir = tmpdir("prov");
        let cache = RowCache::open(&dir).unwrap();
        let key = RowCache::key(&spec, Some(&gov)).unwrap();
        cache.put(key, &row);
        let back = cache.get(key, &spec).unwrap();
        let p = back.provenance.unwrap();
        let q = row.provenance.unwrap();
        assert_eq!(p.tier, q.tier);
        assert_eq!(p.saturated, q.saturated);
        assert_eq!(p.budget_spent.work, q.budget_spent.work);
        assert_eq!(p.degradation_reason, q.degradation_reason);
        assert_eq!(p.budget_spent.elapsed, Duration::ZERO, "no wall clock");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_governor_knob_changes_the_key() {
        // Satellite regression: flipping `--degrade` (or any deterministic
        // budget cap) must be a MISS, never a stale hit.
        let spec = by_id("Biostat").unwrap();
        let base = GovernorConfig::default();
        let k0 = RowCache::key(&spec, Some(&base)).unwrap();
        let degrade_off = GovernorConfig {
            degrade: DegradeMode::Off,
            ..base.clone()
        };
        assert_ne!(k0, RowCache::key(&spec, Some(&degrade_off)).unwrap());
        let capped = GovernorConfig {
            budget: Budget::unlimited().with_max_work(10),
            ..base.clone()
        };
        assert_ne!(k0, RowCache::key(&spec, Some(&capped)).unwrap());
        let fewer_passes = GovernorConfig {
            max_passes: 3,
            ..base.clone()
        };
        assert_ne!(k0, RowCache::key(&spec, Some(&fewer_passes)).unwrap());
        // Governed-with-defaults and ungoverned are distinct configs too.
        assert_ne!(k0, RowCache::key(&spec, None).unwrap());
        // But the key is stable for an identical config.
        assert_eq!(k0, RowCache::key(&spec, Some(&base.clone())).unwrap());
    }

    #[test]
    fn solver_strategy_does_not_change_the_key() {
        // Satellite regression: the warm row cache must HIT across solver
        // strategies — all strategies produce identical rows, so hashing
        // the strategy would only manufacture cold misses.
        use mpi_dfa_core::solver::Strategy;
        let spec = by_id("Biostat").unwrap();
        let base = GovernorConfig::default();
        let k0 = RowCache::key(&spec, Some(&base)).unwrap();
        for strategy in [
            Strategy::RoundRobin,
            Strategy::Worklist,
            Strategy::RegionParallel { threads: 0 },
            Strategy::RegionParallel { threads: 8 },
        ] {
            let gov = GovernorConfig {
                strategy,
                ..base.clone()
            };
            assert_eq!(
                k0,
                RowCache::key(&spec, Some(&gov)).unwrap(),
                "{strategy} must share the strategy-agnostic row key"
            );
        }
    }

    #[test]
    fn deadline_budgets_bypass() {
        let spec = by_id("Biostat").unwrap();
        let gov = GovernorConfig {
            budget: Budget::unlimited().with_deadline_ms(5),
            ..GovernorConfig::default()
        };
        assert!(RowCache::key(&spec, Some(&gov)).is_none());
    }

    #[test]
    fn bit_flipped_row_file_is_a_miss_and_recomputes() {
        // Satellite regression for the crash-only store: `repro
        // --cache-dir` inherits DiskStore's checksummed framing, so a bit
        // flip anywhere in a persisted row file must read as a miss (the
        // file quarantined), and re-putting the recomputed row must serve
        // hits again — never a panic, never a corrupted row.
        let spec = by_id("Biostat").unwrap();
        let row = runner::run_experiment(&spec);
        let dir = tmpdir("bitflip");
        let cache = RowCache::open(&dir).unwrap();
        let key = RowCache::key(&spec, None).unwrap();
        cache.put(key, &row);
        assert!(cache.get(key, &spec).is_some());

        // Flip one payload byte in the single file under the namespace.
        let ns = std::path::Path::new(&dir).join(ROWS_NAMESPACE);
        let path = std::fs::read_dir(&ns)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.is_file())
            .expect("one persisted row file");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert!(cache.get(key, &spec).is_none(), "bit flip must miss");
        assert_eq!(cache.store.counters().snapshot().quarantined, 1);
        // Recompute + re-put restores service.
        cache.put(key, &row);
        let back = cache.get(key, &spec).unwrap();
        assert_eq!(back.mpi, row.mpi);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_misses() {
        let spec = by_id("Biostat").unwrap();
        let dir = tmpdir("corrupt");
        let cache = RowCache::open(&dir).unwrap();
        let key = RowCache::key(&spec, None).unwrap();
        cache
            .store
            .put(ROWS_NAMESPACE, key, b"rowcache v1\nicfg not numbers\n")
            .unwrap();
        assert!(cache.get(key, &spec).is_none());
        cache
            .store
            .put(ROWS_NAMESPACE, key, b"rowcache v999\n")
            .unwrap();
        assert!(cache.get(key, &spec).is_none(), "version skew is a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
