//! Deterministic fuzz harness for the front end and graph pipeline.
//!
//! Mutates the bundled benchmark programs (plus a handful of generated
//! ones) with a [`SplitMix64`]-seeded byte/token mutator and pushes every
//! mutant through **lexer → parser → sema → ICFG → MPI-ICFG**, asserting
//! the robustness contract:
//!
//! * **no panic** — every malformed input must surface as a `Diagnostic`
//!   or `IcfgError`, never as an unwind;
//! * **no hang** — graph construction and the reaching-constants bootstrap
//!   run under a wall-clock [`Budget`]; a case that still exceeds a large
//!   multiple of its deadline is reported as a hang;
//! * **deterministic verification** — every mutant that builds an
//!   MPI-ICFG also runs the static verify passes (match-set, MHP,
//!   deadlock; no schedule exploration) twice, and the two reports must
//!   be identical. A divergent verdict is surfaced as a failure with the
//!   usual span-tree diagnosis.
//!
//! A second, *edit-mutation* mode ([`run_edits`]) targets the incremental
//! solver instead of the front end: it applies structured source edits
//! (statement insertion into one procedure, a fresh declaration that
//! renumbers the location table, statement duplication) and, for every
//! mutant that still builds, asserts the equivalence contract — a seeded
//! incremental re-solve from the base program's converged region-parallel
//! solution must match a cold solve of the mutant **byte for byte** (facts,
//! active set, iteration counts, node visits), without panicking or
//! hanging.
//!
//! Everything is deterministic in the seed, so a CI failure reproduces
//! locally with `FUZZ_SEED=<seed> FUZZ_CASES=1 cargo test -p mpi-dfa-suite
//! --test fuzz_smoke`.

use crate::gen::{self, GenConfig};
use crate::programs;
use mpi_dfa_analyses::activity::{
    analyze_mpi_delta, analyze_mpi_with, ActivityConfig, ActivityResult,
};
use mpi_dfa_analyses::mpi_match::{build_mpi_icfg_with_budget, Matching};
use mpi_dfa_core::budget::Budget;
use mpi_dfa_core::solver::{SolveParams, Strategy};
use mpi_dfa_core::telemetry::{self, TraceLevel};
use mpi_dfa_graph::icfg::{dirty_procs, ProgramIr};
use mpi_dfa_lang::rng::SplitMix64;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Fuzzing run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases; seeds are `start_seed .. start_seed + cases`.
    pub cases: usize,
    pub start_seed: u64,
    /// Wall-clock budget for the graph/matching stages of one case. A case
    /// counts as a hang when its total time exceeds [`HANG_FACTOR`] times
    /// this deadline (the front end is linear-time and uncapped).
    pub per_case_deadline: Duration,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 64,
            start_seed: 0,
            per_case_deadline: Duration::from_millis(500),
        }
    }
}

/// Grace multiplier between the per-case budget deadline and the point at
/// which a case is declared hung. The budget is polled cooperatively every
/// `CHECK_INTERVAL` work units, so some overshoot is expected; an order of
/// magnitude is not.
pub const HANG_FACTOR: u32 = 10;

/// How one fuzz case violated the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    Panic,
    Hang,
}

/// A contract violation, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    pub seed: u64,
    pub kind: FailureKind,
    pub detail: String,
}

/// Aggregate outcome of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub cases: usize,
    /// Mutants that made it all the way to an MPI-ICFG.
    pub built: usize,
    /// Mutants cleanly rejected by lexer/parser/sema.
    pub rejected_frontend: usize,
    /// Mutants cleanly rejected during graph construction/matching
    /// (unknown context, budget, node caps, …).
    pub rejected_graph: usize,
    pub failures: Vec<FuzzFailure>,
    /// Slowest single case observed.
    pub max_case: Duration,
}

/// The mutation corpus: all bundled benchmarks plus a few deterministic
/// generated programs (which exercise wrapper calls and deeper nesting).
pub fn corpus() -> Vec<String> {
    let mut v: Vec<String> = programs::ALL
        .iter()
        .map(|(_, src)| (*src).to_string())
        .collect();
    for seed in 0..3u64 {
        v.push(gen::generate(seed, &GenConfig::default()));
    }
    v
}

/// ASCII fragments spliced into mutants: statement/keyword/punctuation
/// shrapnel chosen to hit parser and sema edges (unbalanced brackets,
/// wildcards, huge literals, MPI forms, nesting openers).
const SPLICE: &[&str] = &[
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "-",
    "&&",
    "||",
    "==",
    "=",
    "if (",
    "else",
    "while (",
    "for ",
    "call ",
    "return;",
    "var v: int;",
    "global g: real[1000];",
    "send(",
    "recv(",
    "bcast(",
    "reduce(SUM,",
    "allreduce(MAX,",
    "barrier();",
    "wait();",
    "ANY",
    "rank()",
    "nprocs()",
    "9999999999999999999",
    "0",
    "1e308",
    "sub ",
    "program ",
    "x",
    "_",
];

/// Deterministically mutate `src` (1–8 stacked edits). ASCII-only splices
/// keep the result valid UTF-8; a lossy pass guards the boundary cuts.
pub fn mutate(src: &str, rng: &mut SplitMix64) -> String {
    let mut bytes = src.as_bytes().to_vec();
    let edits = rng.range(1, 9);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.extend_from_slice(SPLICE[rng.below(SPLICE.len())].as_bytes());
            continue;
        }
        match rng.below(5) {
            // Delete a short range.
            0 => {
                let at = rng.below(bytes.len());
                let len = rng.range(1, 32).min(bytes.len() - at);
                bytes.drain(at..at + len);
            }
            // Duplicate a short range.
            1 => {
                let at = rng.below(bytes.len());
                let len = rng.range(1, 32).min(bytes.len() - at);
                let dup: Vec<u8> = bytes[at..at + len].to_vec();
                let insert_at = rng.below(bytes.len() + 1);
                bytes.splice(insert_at..insert_at, dup);
            }
            // Splice a fragment.
            2 => {
                let frag = SPLICE[rng.below(SPLICE.len())];
                let at = rng.below(bytes.len() + 1);
                bytes.splice(at..at, frag.bytes());
            }
            // Flip one byte to a printable ASCII char.
            3 => {
                let at = rng.below(bytes.len());
                bytes[at] = (rng.range(0x20, 0x7f)) as u8;
            }
            // Truncate.
            _ => {
                let at = rng.below(bytes.len() + 1);
                bytes.truncate(at);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Stage a mutant reached without violating the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    RejectedFrontend,
    RejectedGraph,
    Built,
}

/// Push one source through the full pipeline under a wall-clock budget.
/// Returns the stage reached; all rejections must be clean `Err`s.
pub fn pipeline(src: &str, deadline: Duration) -> Stage {
    let Ok(ir) = ProgramIr::from_source(src) else {
        return Stage::RejectedFrontend;
    };
    let budget = Budget::unlimited().with_deadline_ms(deadline.as_millis() as u64);
    // Clone level 1 + reaching-constants matching exercises instantiation,
    // the bootstrap solve, and pairwise matching. Mutants usually keep a
    // `main`; those that lose it exercise the unknown-context error path.
    match build_mpi_icfg_with_budget(ir, "main", 1, Matching::ReachingConstants, &budget) {
        Ok(g) => {
            verify_contract(&g);
            Stage::Built
        }
        Err(_) => Stage::RejectedGraph,
    }
}

/// The verify leg of the fuzz contract: the static passes must neither
/// panic nor hang on any buildable mutant (the pass-bounded solver keeps
/// them finite without a wall-clock budget), and two runs over the same
/// graph must produce identical reports. Schedule exploration stays off —
/// the fuzzer must never spawn interpreter threads per case. A divergence
/// panics, which the harness catches and reports like any other
/// contract violation.
fn verify_contract(g: &mpi_dfa_graph::mpi::MpiIcfg) {
    let cfg = mpi_dfa_verify::VerifyConfig {
        schedules: 0,
        ..mpi_dfa_verify::VerifyConfig::default()
    };
    let a = mpi_dfa_verify::verify_static(g, &cfg, &Budget::unlimited());
    let b = mpi_dfa_verify::verify_static(g, &cfg, &Budget::unlimited());
    assert!(
        a == b,
        "verify verdict diverged across two runs on one graph:\n  first:  {a:?}\n  second: {b:?}"
    );
}

/// Run one seeded case against `corpus`. `Err` means contract violation.
pub fn run_case(
    seed: u64,
    corpus: &[String],
    deadline: Duration,
) -> Result<(Stage, Duration), FuzzFailure> {
    let mut rng = SplitMix64::fork(seed, 0xF0CC);
    let base = &corpus[rng.below(corpus.len())];
    let mutant = mutate(base, &mut rng);
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| pipeline(&mutant, deadline)));
    let elapsed = started.elapsed();
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(FuzzFailure {
                seed,
                kind: FailureKind::Panic,
                detail: msg,
            })
        }
        Ok(stage) => {
            if elapsed > deadline * HANG_FACTOR {
                Err(FuzzFailure {
                    seed,
                    kind: FailureKind::Hang,
                    detail: format!("case took {elapsed:?} against a {deadline:?} deadline"),
                })
            } else {
                Ok((stage, elapsed))
            }
        }
    }
}

/// Re-run a failing case's mutant with the telemetry sink enabled and
/// render a diagnosis: coarse per-stage wall-clock timings plus the span
/// tree of the pipeline stages the case reached. Used by [`run`] to enrich
/// [`FuzzFailure::detail`] so a CI failure shows *where* the case spent its
/// time, not just the seed.
///
/// Installs (and drains) the **global** telemetry sink, so any concurrently
/// recorded events are stolen — acceptable in the failure path, where the
/// run is already doomed. A panic during the re-run is caught: the
/// diagnosis describes it instead of propagating.
pub fn diagnose_case(seed: u64, corpus: &[String], deadline: Duration) -> String {
    let mut rng = SplitMix64::fork(seed, 0xF0CC);
    let base = &corpus[rng.below(corpus.len())];
    let mutant = mutate(base, &mut rng);
    telemetry::install(TraceLevel::Spans);

    let mut out = String::new();
    let _ = writeln!(out, "per-stage timings (seed {seed}, re-run):");
    let front_started = Instant::now();
    let front = catch_unwind(AssertUnwindSafe(|| ProgramIr::from_source(&mutant)));
    let _ = writeln!(out, "  frontend+cfg:   {:?}", front_started.elapsed());
    match front {
        Ok(Ok(ir)) => {
            let budget = Budget::unlimited().with_deadline_ms(deadline.as_millis() as u64);
            let graph_started = Instant::now();
            let graph = catch_unwind(AssertUnwindSafe(|| {
                build_mpi_icfg_with_budget(ir, "main", 1, Matching::ReachingConstants, &budget)
            }));
            let _ = writeln!(out, "  graph+matching: {:?}", graph_started.elapsed());
            let verdict = match &graph {
                Ok(Ok(_)) => "built".to_string(),
                Ok(Err(e)) => format!("rejected: {e}"),
                Err(_) => "PANICKED during graph construction/matching".to_string(),
            };
            let _ = writeln!(out, "  outcome:        {verdict}");
            if let Ok(Ok(g)) = &graph {
                let verify_started = Instant::now();
                let vr = catch_unwind(AssertUnwindSafe(|| verify_contract(g)));
                let _ = writeln!(out, "  verify:         {:?}", verify_started.elapsed());
                if vr.is_err() {
                    let _ = writeln!(
                        out,
                        "  verify outcome: PANICKED (or diverged) in the verify passes"
                    );
                }
            }
        }
        Ok(Err(e)) => {
            let _ = writeln!(out, "  outcome:        rejected by the front end: {e}");
        }
        Err(_) => {
            let _ = writeln!(out, "  outcome:        PANICKED in the front end");
        }
    }
    let report = telemetry::finish();
    out.push_str("span tree of the failing case:\n");
    out.push_str(&telemetry::render_span_tree(&report.events));
    out
}

/// Run the whole seeded range and aggregate. Failures carry the
/// [`diagnose_case`] breakdown (per-stage timings + span tree) in their
/// `detail`.
pub fn run(config: &FuzzConfig) -> FuzzReport {
    let corpus = corpus();
    let mut report = FuzzReport {
        cases: config.cases,
        ..FuzzReport::default()
    };
    for seed in config.start_seed..config.start_seed + config.cases as u64 {
        match run_case(seed, &corpus, config.per_case_deadline) {
            Ok((stage, elapsed)) => {
                report.max_case = report.max_case.max(elapsed);
                match stage {
                    Stage::RejectedFrontend => report.rejected_frontend += 1,
                    Stage::RejectedGraph => report.rejected_graph += 1,
                    Stage::Built => report.built += 1,
                }
            }
            Err(mut f) => {
                let diagnosis = diagnose_case(seed, &corpus, config.per_case_deadline);
                f.detail = format!("{}\n{diagnosis}", f.detail);
                report.failures.push(f);
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Edit-mutation mode: incremental-equivalence fuzzing.
// ---------------------------------------------------------------------------

/// How far one edit-equivalence case got without violating the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditStage {
    /// The base solve could not anchor the case (no globals to build an
    /// activity config from, or the cold base solve missed the deadline and
    /// captured no seed regions). Vacuous, not a violation.
    Skipped,
    /// The edit broke the build (front end or graph) or the mutant's cold
    /// solve missed the deadline; nothing to compare.
    RejectedEdit,
    /// Cold solve and seeded re-solve both ran and matched byte for byte.
    Verified,
}

/// One verified/skipped/rejected edit case, with transplant coverage.
#[derive(Debug, Clone, Copy)]
pub struct EditOutcome {
    pub stage: EditStage,
    /// Regions transplanted from the seed (vary + useful phases summed).
    pub regions_reused: usize,
    /// Regions re-solved.
    pub regions_resolved: usize,
}

impl EditOutcome {
    fn bare(stage: EditStage) -> Self {
        EditOutcome {
            stage,
            regions_reused: 0,
            regions_resolved: 0,
        }
    }
}

/// Aggregate outcome of an edit-mutation run.
#[derive(Debug, Default)]
pub struct EditReport {
    pub cases: usize,
    /// Buildable mutants whose seeded re-solve matched the cold solve.
    pub verified: usize,
    /// Edits that broke the build (cleanly rejected).
    pub rejected: usize,
    /// Cases with no usable base solve to seed from.
    pub skipped: usize,
    /// Transplant coverage summed over verified cases — the run must
    /// exercise both reuse (> 0) and re-solving (> 0) to mean anything.
    pub regions_reused: usize,
    pub regions_resolved: usize,
    pub failures: Vec<FuzzFailure>,
    pub max_case: Duration,
}

/// Deterministically apply one structured *edit* to a base program. Unlike
/// [`mutate`] (byte shrapnel for robustness testing), these edits model a
/// developer touching the source, so most mutants stay buildable and the
/// seeded re-solve actually runs:
///
/// * insert two `print` statements into one procedure body — the canonical
///   one-procedure delta, where downstream-only regions should transplant;
/// * add a fresh global after the header — renumbers the location table,
///   shifting every fingerprint, so the re-solve must re-solve everything
///   and still match the cold solve;
/// * declare an unused local in one procedure;
/// * duplicate one `;`-terminated statement line.
pub fn edit_mutate(src: &str, rng: &mut SplitMix64) -> String {
    let sub_starts: Vec<usize> = src.match_indices("sub ").map(|(i, _)| i).collect();
    match rng.below(4) {
        0 | 2 if sub_starts.is_empty() => src.to_string(),
        0 => {
            let at = sub_starts[rng.below(sub_starts.len())];
            match src[at..].find('{') {
                Some(off) => {
                    let pos = at + off + 1;
                    format!("{} print(1.0); print(2.0);{}", &src[..pos], &src[pos..])
                }
                None => src.to_string(),
            }
        }
        1 => {
            // Globals must follow the `program` header line.
            let header_end = src
                .find("program ")
                .and_then(|at| src[at..].find('\n').map(|nl| at + nl));
            match header_end {
                Some(nl) => format!("{}\nglobal zq9: real;{}", &src[..nl], &src[nl..]),
                None => src.to_string(),
            }
        }
        2 => {
            let at = sub_starts[rng.below(sub_starts.len())];
            match src[at..].find('{') {
                Some(off) => {
                    let pos = at + off + 1;
                    format!("{} var zq8: real;{}", &src[..pos], &src[pos..])
                }
                None => src.to_string(),
            }
        }
        _ => {
            let lines: Vec<&str> = src.lines().collect();
            // Plain statements only — duplicating a declaration would just
            // trip the redeclaration error, wasting the case.
            let stmts: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.trim_end().ends_with(';') && !l.contains(':'))
                .map(|(i, _)| i)
                .collect();
            if stmts.is_empty() {
                return src.to_string();
            }
            let pick = stmts[rng.below(stmts.len())];
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == pick {
                    out.push(l);
                }
            }
            out.join("\n")
        }
    }
}

/// Activity config for an arbitrary corpus program: first global
/// independent, last global dependent. `None` when the program declares no
/// globals to anchor the analysis.
fn edit_config(ir: &ProgramIr) -> Option<ActivityConfig> {
    let globals = &ir.unit.program.globals;
    let first = globals.first()?;
    let last = globals.last()?;
    Some(ActivityConfig::new(
        [first.name.as_str()],
        [last.name.as_str()],
    ))
}

fn edit_params(deadline: Duration) -> SolveParams {
    SolveParams {
        strategy: Strategy::RegionParallel { threads: 2 },
        budget: Budget::unlimited().with_deadline_ms(deadline.as_millis() as u64),
        ..SolveParams::default()
    }
}

/// The byte-for-byte leg of the edit contract. Facts, the derived active
/// set, and the deterministic work counters must all agree — transplanted
/// regions carry their original solve's stats, so even `node_visits`
/// matches a cold solve exactly. A mismatch panics; the harness catches it
/// and reports the seed.
fn assert_incremental_equivalence(delta: &ActivityResult, cold: &ActivityResult) {
    assert_eq!(delta.vary.input, cold.vary.input, "vary IN facts diverged");
    assert_eq!(
        delta.vary.output, cold.vary.output,
        "vary OUT facts diverged"
    );
    assert_eq!(
        delta.useful.input, cold.useful.input,
        "useful IN facts diverged"
    );
    assert_eq!(
        delta.useful.output, cold.useful.output,
        "useful OUT facts diverged"
    );
    assert_eq!(delta.active, cold.active, "active sets diverged");
    assert_eq!(
        delta.active_bytes, cold.active_bytes,
        "active-byte totals diverged"
    );
    assert_eq!(delta.iterations, cold.iterations, "pass counts diverged");
    assert_eq!(
        delta.vary.stats.node_visits, cold.vary.stats.node_visits,
        "vary node-visit counters diverged"
    );
    assert_eq!(
        delta.useful.stats.node_visits, cold.useful.stats.node_visits,
        "useful node-visit counters diverged"
    );
}

/// Push one (base, mutant) pair through the incremental-equivalence
/// contract: cold region-parallel solve of the base captures seed regions;
/// the mutant is re-solved both cold and seeded (dirtying exactly the
/// procedures [`dirty_procs`] reports as textually changed); the two
/// results must match byte for byte. Contract violations panic — the
/// caller runs this under `catch_unwind`.
pub fn edit_pipeline(base: &str, mutant: &str, deadline: Duration) -> EditOutcome {
    let Ok(base_ir) = ProgramIr::from_source(base) else {
        return EditOutcome::bare(EditStage::Skipped);
    };
    let Some(config) = edit_config(&base_ir) else {
        return EditOutcome::bare(EditStage::Skipped);
    };
    let budget = Budget::unlimited().with_deadline_ms(deadline.as_millis() as u64);
    let params = edit_params(deadline);
    let Ok(base_mpi) = build_mpi_icfg_with_budget(
        base_ir.clone(),
        "main",
        1,
        Matching::ReachingConstants,
        &budget,
    ) else {
        return EditOutcome::bare(EditStage::Skipped);
    };
    let Ok(prev) = analyze_mpi_with(&base_mpi, &config, &params) else {
        return EditOutcome::bare(EditStage::Skipped);
    };
    if !prev.converged() || prev.vary.regions.is_none() || prev.useful.regions.is_none() {
        return EditOutcome::bare(EditStage::Skipped);
    }

    let Ok(mut_ir) = ProgramIr::from_source(mutant) else {
        return EditOutcome::bare(EditStage::RejectedEdit);
    };
    let Ok(mut_mpi) = build_mpi_icfg_with_budget(
        mut_ir.clone(),
        "main",
        1,
        Matching::ReachingConstants,
        &budget,
    ) else {
        return EditOutcome::bare(EditStage::RejectedEdit);
    };
    let Ok(cold) = analyze_mpi_with(&mut_mpi, &config, &params) else {
        return EditOutcome::bare(EditStage::RejectedEdit);
    };
    if !cold.converged() {
        // Deadline-bound snapshot; the equivalence contract only speaks
        // about fixpoints.
        return EditOutcome::bare(EditStage::RejectedEdit);
    }

    let dirty = mut_mpi
        .icfg()
        .nodes_of_procs(&dirty_procs(&base_ir, &mut_ir));
    let delta = analyze_mpi_delta(&mut_mpi, &config, &params, &prev, &dirty)
        .unwrap_or_else(|e| panic!("seeded re-solve rejected a buildable mutant: {e}"));
    assert_incremental_equivalence(&delta.result, &cold);
    EditOutcome {
        stage: EditStage::Verified,
        regions_reused: delta.regions_reused,
        regions_resolved: delta.regions_resolved,
    }
}

/// Run one seeded edit case against `corpus`. `Err` means contract
/// violation (panic — including an equivalence mismatch — or hang).
pub fn run_edit_case(
    seed: u64,
    corpus: &[String],
    deadline: Duration,
) -> Result<(EditOutcome, Duration), FuzzFailure> {
    let mut rng = SplitMix64::fork(seed, 0xED17);
    let base = &corpus[rng.below(corpus.len())];
    let mutant = edit_mutate(base, &mut rng);
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| edit_pipeline(base, &mutant, deadline)));
    let elapsed = started.elapsed();
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(FuzzFailure {
                seed,
                kind: FailureKind::Panic,
                detail: msg,
            })
        }
        Ok(out) => {
            // Three solves and two graph builds per case, so the hang bar
            // is HANG_FACTOR times *five* deadlines rather than one.
            if elapsed > deadline * HANG_FACTOR * 5 {
                Err(FuzzFailure {
                    seed,
                    kind: FailureKind::Hang,
                    detail: format!("edit case took {elapsed:?} against a {deadline:?} deadline"),
                })
            } else {
                Ok((out, elapsed))
            }
        }
    }
}

/// Run the whole seeded edit-mutation range and aggregate.
pub fn run_edits(config: &FuzzConfig) -> EditReport {
    let corpus = corpus();
    let mut report = EditReport {
        cases: config.cases,
        ..EditReport::default()
    };
    for seed in config.start_seed..config.start_seed + config.cases as u64 {
        match run_edit_case(seed, &corpus, config.per_case_deadline) {
            Ok((out, elapsed)) => {
                report.max_case = report.max_case.max(elapsed);
                match out.stage {
                    EditStage::Skipped => report.skipped += 1,
                    EditStage::RejectedEdit => report.rejected += 1,
                    EditStage::Verified => {
                        report.verified += 1;
                        report.regions_reused += out.regions_reused;
                        report.regions_resolved += out.regions_resolved;
                    }
                }
            }
            Err(f) => report.failures.push(f),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let base = programs::FIGURE1;
        let a = mutate(base, &mut SplitMix64::fork(7, 0xF0CC));
        let b = mutate(base, &mut SplitMix64::fork(7, 0xF0CC));
        let c = mutate(base, &mut SplitMix64::fork(8, 0xF0CC));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (virtually always) differ");
    }

    #[test]
    fn unmutated_corpus_builds_or_rejects_cleanly() {
        for src in corpus() {
            // The bundled/generated programs themselves must never panic.
            let stage = pipeline(&src, Duration::from_secs(5));
            assert_ne!(
                stage,
                Stage::RejectedFrontend,
                "corpus program failed the front end"
            );
        }
    }

    #[test]
    fn diagnosis_includes_stage_timings_and_span_tree() {
        // Serialize against other tests that install the global sink.
        let _g = telemetry::TEST_SINK_GATE
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let corpus = corpus();
        for seed in [0u64, 3, 17] {
            let d = diagnose_case(seed, &corpus, Duration::from_millis(500));
            assert!(d.contains("per-stage timings"), "{d}");
            assert!(d.contains("frontend+cfg"), "{d}");
            assert!(d.contains("outcome:"), "{d}");
            assert!(d.contains("span tree of the failing case:"), "{d}");
        }
        // A mutant that survives the front end leaves pipeline spans in the
        // tree; an unmutated corpus program certainly does. Use the real
        // FIGURE1 text through the same path to pin the span names.
        let fig = vec![programs::FIGURE1.to_string()];
        let d = diagnose_case(0, &fig, Duration::from_millis(500));
        assert!(d.contains("compile"), "span tree names stages: {d}");
    }

    #[test]
    fn verify_contract_holds_on_the_unmutated_corpus() {
        // Every corpus program builds; `pipeline` therefore runs the
        // verify determinism contract on each (a divergence panics).
        for src in corpus() {
            assert_eq!(pipeline(&src, Duration::from_secs(5)), Stage::Built);
        }
    }

    #[test]
    fn edit_mutation_is_deterministic_in_the_seed() {
        let base = programs::LU;
        let a = edit_mutate(base, &mut SplitMix64::fork(5, 0xED17));
        let b = edit_mutate(base, &mut SplitMix64::fork(5, 0xED17));
        assert_eq!(a, b);
        // Structured edits keep the program recognizable: they only ever
        // grow the source.
        assert!(a.len() >= base.len());
    }

    #[test]
    fn one_procedure_edit_verifies_and_transplants_regions() {
        // The canonical delta: insert prints into LU's first procedure. The
        // mutant must verify byte-for-byte against a cold solve, and a
        // multi-procedure program must reuse at least one region.
        let base = programs::LU;
        let at = base.find("sub ").unwrap();
        let pos = at + base[at..].find('{').unwrap() + 1;
        let mutant = format!("{} print(1.0); print(2.0);{}", &base[..pos], &base[pos..]);
        let out = edit_pipeline(base, &mutant, Duration::from_secs(5));
        assert_eq!(out.stage, EditStage::Verified);
        assert!(out.regions_reused > 0, "{out:?}");
        assert!(out.regions_resolved > 0, "{out:?}");
    }

    #[test]
    fn declaration_edit_forces_a_full_resolve_that_still_verifies() {
        // A fresh global renumbers the location table: every fingerprint
        // shifts, nothing transplants, and the answer must still match.
        let base = programs::LU;
        let at = base.find("program ").unwrap();
        let nl = at + base[at..].find('\n').unwrap();
        let mutant = format!("{}\nglobal zq9: real;{}", &base[..nl], &base[nl..]);
        let out = edit_pipeline(base, &mutant, Duration::from_secs(5));
        assert_eq!(out.stage, EditStage::Verified);
        assert_eq!(out.regions_reused, 0, "{out:?}");
        assert!(out.regions_resolved > 0, "{out:?}");
    }

    #[test]
    fn seeded_edit_run_verifies_every_buildable_mutant() {
        let report = run_edits(&FuzzConfig {
            cases: 32,
            per_case_deadline: Duration::from_secs(2),
            ..FuzzConfig::default()
        });
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
        assert_eq!(
            report.verified + report.rejected + report.skipped,
            report.cases
        );
        // Structured edits must mostly survive the build — and the run is
        // only meaningful if it exercised both transplanting and
        // re-solving.
        assert!(report.verified > report.cases / 2, "{report:?}");
        assert!(report.regions_reused > 0, "{report:?}");
        assert!(report.regions_resolved > 0, "{report:?}");
    }

    #[test]
    fn small_seeded_run_is_clean_and_covers_both_outcomes() {
        let report = run(&FuzzConfig {
            cases: 48,
            ..FuzzConfig::default()
        });
        assert!(report.failures.is_empty(), "{:#?}", report.failures);
        assert_eq!(
            report.built + report.rejected_frontend + report.rejected_graph,
            report.cases
        );
        // With 1–8 stacked random edits most mutants break, but the mix
        // should still contain both rejected and surviving cases.
        assert!(report.rejected_frontend > 0, "{report:?}");
    }
}
