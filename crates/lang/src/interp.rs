//! A rank-simulating SPMD interpreter for SMPL.
//!
//! The paper's analyses are purely static — MPI calls are analyzed, never
//! executed. This interpreter exists so the test suite can demonstrate that
//! the benchmark programs are *meaningful* SPMD programs: they run to
//! completion under P processes, communicate, and produce deterministic
//! results.
//!
//! Each process runs on its own OS thread; all communication goes through a
//! [`Transport`] (see [`crate::fault`]) — by default per-rank mailboxes with
//! a blocked-rank registry that detects genuine deadlocks immediately, and
//! optionally a seeded [`FaultPlan`] that perturbs delivery for adversarial
//! schedule exploration. `send` is eager/buffered (never blocks); `recv`
//! blocks until a matching message arrives, the registry proves a deadlock,
//! or the fallback timeout expires. Collectives are lowered onto
//! point-to-point transfers using a reserved tag space keyed by a
//! per-process collective sequence number, which is valid because SMPL
//! programs (like the paper's benchmarks) execute collectives in the same
//! order on every process.
//!
//! Semantics notes:
//! * numbers are stored as `f64` (exact for the integer ranges used);
//! * whole-array assignment is elementwise; scalar-to-array assignment
//!   broadcasts the scalar;
//! * `read(x)` produces deterministic pseudo-inputs from a per-process
//!   counter, so runs are reproducible;
//! * array-element actuals bind by value; whole-array and scalar-variable
//!   actuals bind by reference (Fortran style);
//! * nonblocking `isend`/`irecv` are executed eagerly and `wait()` is a
//!   no-op, which preserves SMPL's value semantics because `irecv` blocks
//!   like `recv` (a deliberate simplification; the *analyses* treat them
//!   distinctly where it matters).

use crate::ast::*;
use crate::fault::{ChannelTransport, FaultPlan, RankWait, RecvError, Transport};
use crate::span::Span;
use mpi_dfa_core::telemetry::{self, ArgValue, TraceLevel};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Runtime failure during interpretation. Communication deadlocks carry a
/// structured per-rank wait-for report from the transport's blocked-rank
/// registry; everything else is a per-rank failure with a source span.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// A rank failed executing a statement (bad index, budget exceeded,
    /// arity mismatch, receive timeout, ...).
    Failed {
        rank: usize,
        span: Span,
        message: String,
    },
    /// Every live rank was blocked with no matching message in flight.
    Deadlock { waiting: Vec<RankWait> },
}

impl RuntimeError {
    /// The rank that reported the error (the lowest blocked rank for a
    /// deadlock).
    pub fn rank(&self) -> usize {
        match self {
            RuntimeError::Failed { rank, .. } => *rank,
            RuntimeError::Deadlock { waiting } => {
                waiting.first().map(|w| w.rank).unwrap_or(usize::MAX)
            }
        }
    }

    /// True for the structured deadlock report.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RuntimeError::Deadlock { .. })
    }

    /// Render the per-rank wait-for cycle of a deadlock, when one is
    /// recoverable from the blocked set: follow each rank's awaited
    /// source rank until the walk closes. Wildcard receives (`src=ANY`)
    /// have no concrete awaited peer and break the chain; a deadlock
    /// without any closed chain (e.g. all-wildcard) returns `None`.
    ///
    /// The rendering mirrors the static wait-for cycles of the verify
    /// subsystem (`rank → blocked op → awaited rank → …`), so dynamic
    /// and static reports read side by side.
    pub fn waitfor_cycle(&self) -> Option<String> {
        let RuntimeError::Deadlock { waiting } = self else {
            return None;
        };
        let wait_of = |rank: usize| waiting.iter().find(|w| w.rank == rank);
        // Start the walk from the lowest blocked rank that participates
        // in a closed chain, so the rendering is deterministic.
        for start in waiting.iter().map(|w| w.rank) {
            let mut path: Vec<usize> = vec![start];
            let mut cur = start;
            while let Some(next) = wait_of(cur).and_then(|w| w.src) {
                if next == start {
                    // Closed: render the cycle.
                    let mut out = String::from("wait-for cycle:");
                    for &r in &path {
                        let w = wait_of(r).expect("path ranks are blocked");
                        let tag = match w.tag {
                            Some(t) => t.to_string(),
                            None => "ANY".to_string(),
                        };
                        let peer = match w.src {
                            Some(s) => s.to_string(),
                            None => "ANY".to_string(),
                        };
                        out.push_str(&format!(
                            "\n  rank {r} -> blocked recv(src={peer}, tag={tag}) at {} -> rank {peer}",
                            w.span
                        ));
                    }
                    out.push_str(&format!("\n  rank {start} closes the cycle"));
                    return Some(out);
                }
                if path.contains(&next) || wait_of(next).is_none() {
                    break;
                }
                path.push(next);
                cur = next;
            }
        }
        None
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Failed {
                rank,
                span,
                message,
            } => {
                write!(f, "runtime error on rank {rank} at {span}: {message}")
            }
            RuntimeError::Deadlock { waiting } => {
                write!(
                    f,
                    "deadlock detected: every live rank is blocked with no matching message in flight"
                )?;
                for w in waiting {
                    write!(f, "\n  {w}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Execution limits that keep interpreter runs bounded.
///
/// Every "magic" safety constant of the runtime lives here, so library
/// callers, the test suites, and `mpidfa run` all draw from one documented
/// source instead of scattering literals. The named presets cover the
/// recurring configurations:
///
/// * [`RuntimeLimits::default`] — production defaults, generous enough for
///   the full benchmark suite (20 M steps, 10 s receive backstop);
/// * [`RuntimeLimits::quick_test`] — a shorter receive backstop for fast
///   in-process unit tests that are not expected to block;
/// * [`RuntimeLimits::detector_backstop`] — a deliberately *long* receive
///   timeout for tests asserting the structural deadlock detector fires
///   (a test that finishes quickly under this limit proves the detector,
///   not the timeout, reported the deadlock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeLimits {
    /// Per-process statement execution budget (guards infinite loops).
    pub max_steps: u64,
    /// How long a blocked `recv` waits before reporting deadlock. The
    /// structural deadlock detector normally fires long before this; the
    /// timeout is the backstop for schedules the detector cannot prove.
    pub recv_timeout: Duration,
}

impl RuntimeLimits {
    /// Default per-process statement budget.
    pub const DEFAULT_MAX_STEPS: u64 = 20_000_000;
    /// Default receive-timeout backstop.
    pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

    /// Short receive backstop (5 s) for unit tests that should never block.
    pub fn quick_test() -> Self {
        RuntimeLimits {
            recv_timeout: Duration::from_secs(5),
            ..RuntimeLimits::default()
        }
    }

    /// Patient receive backstop (30 s) for tests asserting that the
    /// structural deadlock detector — not the timeout — reports deadlocks.
    pub fn detector_backstop() -> Self {
        RuntimeLimits {
            recv_timeout: Duration::from_secs(30),
            ..RuntimeLimits::default()
        }
    }
}

impl Default for RuntimeLimits {
    fn default() -> Self {
        RuntimeLimits {
            max_steps: Self::DEFAULT_MAX_STEPS,
            recv_timeout: Self::DEFAULT_RECV_TIMEOUT,
        }
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Number of simulated MPI processes.
    pub nprocs: usize,
    /// Entry subroutine (must take no parameters).
    pub entry: String,
    /// Step and timeout limits; see [`RuntimeLimits`].
    pub limits: RuntimeLimits,
    /// Initial values for global scalars (arrays are filled elementwise),
    /// applied identically on every rank before the entry runs. Used by the
    /// dynamic-vs-static cross-validation tests to perturb independents.
    pub init_globals: Vec<(String, f64)>,
    /// Capture every global's final value into
    /// [`ProcessResult::final_globals`].
    pub capture_globals: bool,
    /// Optional seeded fault-injection / adversarial-schedule plan applied
    /// by the transport (see [`crate::fault::FaultPlan`]).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            nprocs: 4,
            entry: "main".to_string(),
            limits: RuntimeLimits::default(),
            init_globals: Vec::new(),
            capture_globals: false,
            fault_plan: None,
        }
    }
}

/// The observable result of one process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcessResult {
    /// Values passed to `print`, in order. Whole arrays are flattened.
    pub printed: Vec<f64>,
    /// Number of statements executed.
    pub steps: u64,
    /// Messages sent / received (point-to-point + lowered collectives).
    pub sends: u64,
    pub recvs: u64,
    /// Final global values (flattened arrays), when
    /// [`InterpConfig::capture_globals`] is set. Sorted by name.
    pub final_globals: Vec<(String, Vec<f64>)>,
}

/// Run `program` under `config`, returning per-rank results. Uses the
/// default [`ChannelTransport`], configured with `config.fault_plan`.
pub fn run(program: &Program, config: &InterpConfig) -> Result<Vec<ProcessResult>, RuntimeError> {
    let transport = ChannelTransport::new(config.nprocs.max(1), config.fault_plan.clone());
    run_with_transport(program, config, &transport)
}

/// Run `program` with an explicit [`Transport`] implementation.
pub fn run_with_transport(
    program: &Program,
    config: &InterpConfig,
    transport: &(dyn Transport + Sync),
) -> Result<Vec<ProcessResult>, RuntimeError> {
    let nprocs = config.nprocs.max(1);
    let program = Arc::new(program.clone());
    let mut run_span = telemetry::span("runtime", "interp:run");
    run_span.arg("nprocs", nprocs);
    run_span.arg("entry", config.entry.as_str());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for rank in 0..nprocs {
            let program = Arc::clone(&program);
            let config = config.clone();
            handles.push(scope.spawn(move || {
                transport.rank_started(rank);
                let mut proc = Process {
                    program: &program,
                    rank,
                    nprocs,
                    transport,
                    result: ProcessResult::default(),
                    read_counter: rank as u64,
                    coll_seq: 0,
                    config: &config,
                };
                let outcome = proc.run_entry().map(|_| proc.result);
                // Always unregister from the wait graph, success or not, so
                // the deadlock detector never counts a dead rank as live.
                transport.rank_finished(rank);
                outcome
            }));
        }
        let mut results = Vec::with_capacity(nprocs);
        let mut errors: Vec<RuntimeError> = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(r)) => results.push(r),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push(RuntimeError::Failed {
                    rank: usize::MAX,
                    span: Span::DUMMY,
                    message: "interpreter thread panicked".to_string(),
                }),
            }
        }
        // A deadlock report is often the *consequence* of another rank's
        // failure (it died and left its peers stranded); prefer the root
        // cause when both kinds are present.
        match errors.iter().position(|e| !e.is_deadlock()) {
            Some(pos) => Err(errors.swap_remove(pos)),
            None => match errors.into_iter().next() {
                Some(e) => Err(e),
                None => Ok(results),
            },
        }
    })
}

/// Tag space reserved for lowered collectives; user tags must stay below.
const COLLECTIVE_TAG_BASE: i64 = 1 << 40;

// ---- values and storage -----------------------------------------------------

/// Runtime storage: a scalar or a flattened array with its dims.
#[derive(Debug, Clone, PartialEq)]
enum Storage {
    Scalar(f64),
    Array { data: Vec<f64>, dims: Vec<i64> },
}

impl Storage {
    fn from_type(ty: &crate::types::Type) -> Storage {
        if ty.is_scalar() {
            Storage::Scalar(0.0)
        } else {
            Storage::Array {
                data: vec![0.0; ty.elem_count() as usize],
                dims: ty.dims.clone(),
            }
        }
    }
}

type Slot = Rc<RefCell<Storage>>;

/// One call frame: name → storage slot. Parameters may alias caller slots.
struct Frame {
    vars: HashMap<String, Slot>,
}

/// A value produced by expression evaluation.
#[derive(Debug, Clone)]
enum Val {
    Num(f64),
    Arr(Vec<f64>),
}

impl Val {
    fn as_num(&self, err: impl FnOnce() -> RuntimeError) -> Result<f64, RuntimeError> {
        match self {
            Val::Num(v) => Ok(*v),
            Val::Arr(_) => Err(err()),
        }
    }
}

// ---- the per-process interpreter --------------------------------------------

/// Control-flow signal from statement execution.
enum Flow {
    Normal,
    Return,
}

struct Process<'a> {
    program: &'a Program,
    rank: usize,
    nprocs: usize,
    transport: &'a (dyn Transport + Sync),
    result: ProcessResult,
    read_counter: u64,
    coll_seq: i64,
    config: &'a InterpConfig,
}

impl<'a> Process<'a> {
    fn run_entry(&mut self) -> Result<(), RuntimeError> {
        let entry = self.program.sub(&self.config.entry).ok_or_else(|| {
            self.err(
                Span::DUMMY,
                format!("entry subroutine `{}` not found", self.config.entry),
            )
        })?;
        if !entry.params.is_empty() {
            return Err(self.err(entry.span, "entry subroutine must take no parameters"));
        }
        // Globals live in the root frame of every call (by-name fallback).
        let mut globals = HashMap::new();
        for g in &self.program.globals {
            let mut storage = Storage::from_type(&g.ty);
            if let Some((_, v)) = self
                .config
                .init_globals
                .iter()
                .find(|(name, _)| *name == g.name)
            {
                match &mut storage {
                    Storage::Scalar(x) => *x = *v,
                    Storage::Array { data, .. } => data.fill(*v),
                }
            }
            globals.insert(g.name.clone(), Rc::new(RefCell::new(storage)));
        }
        let globals = Frame { vars: globals };
        let mut frame = Frame {
            vars: HashMap::new(),
        };
        self.exec_block(&entry.body, &mut frame, &globals)?;
        if self.config.capture_globals {
            let mut finals: Vec<(String, Vec<f64>)> = globals
                .vars
                .iter()
                .map(|(name, slot)| {
                    let values = match &*slot.borrow() {
                        Storage::Scalar(v) => vec![*v],
                        Storage::Array { data, .. } => data.clone(),
                    };
                    (name.clone(), values)
                })
                .collect();
            finals.sort_by(|a, b| a.0.cmp(&b.0));
            self.result.final_globals = finals;
        }
        Ok(())
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> RuntimeError {
        RuntimeError::Failed {
            rank: self.rank,
            span,
            message: msg.into(),
        }
    }

    fn lookup(
        &self,
        frame: &Frame,
        globals: &Frame,
        name: &str,
        span: Span,
    ) -> Result<Slot, RuntimeError> {
        frame
            .vars
            .get(name)
            .or_else(|| globals.vars.get(name))
            .cloned()
            .ok_or_else(|| self.err(span, format!("undefined variable `{name}`")))
    }

    fn tick(&mut self, span: Span) -> Result<(), RuntimeError> {
        self.result.steps += 1;
        if self.result.steps > self.config.limits.max_steps {
            return Err(self.err(span, "statement budget exceeded (possible infinite loop)"));
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        block: &Block,
        frame: &mut Frame,
        globals: &Frame,
    ) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            if let Flow::Return = self.exec_stmt(stmt, frame, globals)? {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        frame: &mut Frame,
        globals: &Frame,
    ) -> Result<Flow, RuntimeError> {
        self.tick(stmt.span)?;
        match &stmt.kind {
            StmtKind::Local { decl, init } => {
                let slot = Rc::new(RefCell::new(Storage::from_type(&decl.ty)));
                if let Some(e) = init {
                    let v = self.eval(e, frame, globals)?;
                    self.store_into(&slot, &[], v, stmt.span)?;
                }
                frame.vars.insert(decl.name.clone(), slot);
            }
            StmtKind::Assign { lhs, rhs } => {
                let v = self.eval(rhs, frame, globals)?;
                let slot = self.lookup(frame, globals, &lhs.name, lhs.span)?;
                let idx = self.eval_indices(lhs, frame, globals)?;
                self.store_into(&slot, &idx, v, stmt.span)?;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self
                    .eval(cond, frame, globals)?
                    .as_num(|| self.err(cond.span, "array condition"))?;
                if c != 0.0 {
                    return self.exec_block(then_blk, frame, globals);
                } else if let Some(e) = else_blk {
                    return self.exec_block(e, frame, globals);
                }
            }
            StmtKind::While { cond, body } => loop {
                self.tick(stmt.span)?;
                let c = self
                    .eval(cond, frame, globals)?
                    .as_num(|| self.err(cond.span, "array condition"))?;
                if c == 0.0 {
                    break;
                }
                if let Flow::Return = self.exec_block(body, frame, globals)? {
                    return Ok(Flow::Return);
                }
            },
            StmtKind::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = self
                    .eval(lo, frame, globals)?
                    .as_num(|| self.err(stmt.span, "array loop bound"))?;
                let hi = self
                    .eval(hi, frame, globals)?
                    .as_num(|| self.err(stmt.span, "array loop bound"))?;
                let st = match step {
                    Some(s) => self
                        .eval(s, frame, globals)?
                        .as_num(|| self.err(stmt.span, "array step"))?,
                    None => 1.0,
                };
                if st == 0.0 {
                    return Err(self.err(stmt.span, "zero loop step"));
                }
                let slot = self.lookup(frame, globals, var, stmt.span)?;
                let mut i = lo;
                while (st > 0.0 && i <= hi) || (st < 0.0 && i >= hi) {
                    self.tick(stmt.span)?;
                    *slot.borrow_mut() = Storage::Scalar(i);
                    if let Flow::Return = self.exec_block(body, frame, globals)? {
                        return Ok(Flow::Return);
                    }
                    // Re-read in case the body modified the loop variable.
                    i = match *slot.borrow() {
                        Storage::Scalar(v) => v + st,
                        _ => return Err(self.err(stmt.span, "loop variable became an array")),
                    };
                }
            }
            StmtKind::Call { name, args } => {
                self.exec_call(name, args, stmt.span, frame, globals)?;
            }
            StmtKind::Return => return Ok(Flow::Return),
            StmtKind::Mpi(m) => self.exec_mpi(m, stmt.span, frame, globals)?,
            StmtKind::Read(lv) => {
                let slot = self.lookup(frame, globals, &lv.name, lv.span)?;
                let idx = self.eval_indices(lv, frame, globals)?;
                let v = self.next_input();
                if idx.is_empty() {
                    // Whole-variable read: fill arrays elementwise with a
                    // deterministic ramp.
                    let mut s = slot.borrow_mut();
                    match &mut *s {
                        Storage::Scalar(x) => *x = v,
                        Storage::Array { data, .. } => {
                            for (k, x) in data.iter_mut().enumerate() {
                                *x = v + (k % 97) as f64 * 0.001;
                            }
                        }
                    }
                } else {
                    self.store_into(&slot, &idx, Val::Num(v), stmt.span)?;
                }
            }
            StmtKind::Print(e) => {
                let v = self.eval(e, frame, globals)?;
                match v {
                    Val::Num(x) => self.result.printed.push(x),
                    Val::Arr(xs) => self.result.printed.extend(xs),
                }
            }
        }
        Ok(Flow::Normal)
    }

    /// Deterministic pseudo-input stream, distinct per rank.
    fn next_input(&mut self) -> f64 {
        self.read_counter = self
            .read_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map to a small stable range to keep arithmetic well-behaved.
        ((self.read_counter >> 33) % 1000) as f64 / 100.0 + 1.0
    }

    fn exec_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        frame: &mut Frame,
        globals: &Frame,
    ) -> Result<(), RuntimeError> {
        let callee = self
            .program
            .sub(name)
            .ok_or_else(|| self.err(span, format!("call to unknown subroutine `{name}`")))?;
        if callee.params.len() != args.len() {
            return Err(self.err(span, format!("arity mismatch calling `{name}`")));
        }
        let mut new_frame = Frame {
            vars: HashMap::new(),
        };
        for (param, arg) in callee.params.iter().zip(args) {
            let slot = match arg.as_lvalue() {
                Some(lv) if lv.is_whole() => {
                    // Whole variable: alias the caller's storage (by reference).
                    self.lookup(frame, globals, &lv.name, lv.span)?
                }
                _ => {
                    // Expression or array element: fresh storage (by value).
                    let v = self.eval(arg, frame, globals)?;
                    let storage = match v {
                        Val::Num(x) => {
                            if param.ty.is_array() {
                                Storage::Array {
                                    data: vec![x; param.ty.elem_count() as usize],
                                    dims: param.ty.dims.clone(),
                                }
                            } else {
                                Storage::Scalar(x)
                            }
                        }
                        Val::Arr(xs) => Storage::Array {
                            data: xs,
                            dims: param.ty.dims.clone(),
                        },
                    };
                    Rc::new(RefCell::new(storage))
                }
            };
            new_frame.vars.insert(param.name.clone(), slot);
        }
        self.exec_block(&callee.body, &mut new_frame, globals)?;
        Ok(())
    }

    // ---- MPI -----------------------------------------------------------

    fn exec_mpi(
        &mut self,
        m: &MpiStmt,
        span: Span,
        frame: &mut Frame,
        globals: &Frame,
    ) -> Result<(), RuntimeError> {
        match m {
            MpiStmt::Send {
                buf,
                dest,
                tag,
                comm,
                ..
            } => {
                let payload = self.load_payload(buf, frame, globals)?;
                let dest = self.eval_rank(dest, frame, globals)?;
                let tag = self.eval_int(tag, frame, globals)?;
                let comm = self.eval_comm(comm, frame, globals)?;
                self.post(dest, tag, comm, payload, span)?;
            }
            MpiStmt::Recv {
                buf,
                src,
                tag,
                comm,
                ..
            } => {
                let src = match src.kind {
                    ExprKind::AnyWildcard => None,
                    _ => Some(self.eval_rank(src, frame, globals)?),
                };
                let tag = match tag.kind {
                    ExprKind::AnyWildcard => None,
                    _ => Some(self.eval_int(tag, frame, globals)?),
                };
                let comm = self.eval_comm(comm, frame, globals)?;
                let msg = self.take(src, tag, comm, span)?;
                self.store_payload(buf, msg.payload, frame, globals, span)?;
            }
            MpiStmt::Bcast { buf, root, comm } => {
                let root = self.eval_rank(root, frame, globals)?;
                let comm = self.eval_comm(comm, frame, globals)?;
                let tag = self.next_coll_tag();
                self.trace_collective("bcast", root);
                if self.rank == root {
                    let payload = self.load_payload(buf, frame, globals)?;
                    for dest in 0..self.nprocs {
                        if dest != root {
                            self.post(dest, tag, comm, payload.clone(), span)?;
                        }
                    }
                } else {
                    let msg = self.take(Some(root), Some(tag), comm, span)?;
                    self.store_payload(buf, msg.payload, frame, globals, span)?;
                }
            }
            MpiStmt::Reduce {
                op,
                send,
                recv,
                root,
                comm,
            } => {
                let root = self.eval_rank(root, frame, globals)?;
                let comm = self.eval_comm(comm, frame, globals)?;
                let tag = self.next_coll_tag();
                self.trace_collective("reduce", root);
                let mine = self.eval(send, frame, globals)?;
                let mine = match mine {
                    Val::Num(x) => vec![x],
                    Val::Arr(xs) => xs,
                };
                if self.rank == root {
                    let mut acc = mine;
                    // Combine in rank order for determinism.
                    for src in 0..self.nprocs {
                        if src == root {
                            continue;
                        }
                        let msg = self.take(Some(src), Some(tag), comm, span)?;
                        if msg.payload.len() != acc.len() {
                            return Err(self.err(span, "reduce payload length mismatch"));
                        }
                        for (a, b) in acc.iter_mut().zip(msg.payload) {
                            *a = combine(*op, *a, b);
                        }
                    }
                    let v = if acc.len() == 1 {
                        Val::Num(acc[0])
                    } else {
                        Val::Arr(acc)
                    };
                    let slot = self.lookup(frame, globals, &recv.name, recv.span)?;
                    let idx = self.eval_indices(recv, frame, globals)?;
                    self.store_into(&slot, &idx, v, span)?;
                } else {
                    self.post(root, tag, comm, mine, span)?;
                }
            }
            MpiStmt::Allreduce {
                op,
                send,
                recv,
                comm,
            } => {
                // Lower to reduce-to-0 + bcast using two collective tags.
                let comm_v = self.eval_comm(comm, frame, globals)?;
                let tag_r = self.next_coll_tag();
                let tag_b = self.next_coll_tag();
                self.trace_collective("allreduce", 0);
                let mine = match self.eval(send, frame, globals)? {
                    Val::Num(x) => vec![x],
                    Val::Arr(xs) => xs,
                };
                let result = if self.rank == 0 {
                    let mut acc = mine;
                    for src in 1..self.nprocs {
                        let msg = self.take(Some(src), Some(tag_r), comm_v, span)?;
                        if msg.payload.len() != acc.len() {
                            return Err(self.err(span, "allreduce payload length mismatch"));
                        }
                        for (a, b) in acc.iter_mut().zip(msg.payload) {
                            *a = combine(*op, *a, b);
                        }
                    }
                    for dest in 1..self.nprocs {
                        self.post(dest, tag_b, comm_v, acc.clone(), span)?;
                    }
                    acc
                } else {
                    self.post(0, tag_r, comm_v, mine, span)?;
                    self.take(Some(0), Some(tag_b), comm_v, span)?.payload
                };
                let v = if result.len() == 1 {
                    Val::Num(result[0])
                } else {
                    Val::Arr(result)
                };
                let slot = self.lookup(frame, globals, &recv.name, recv.span)?;
                let idx = self.eval_indices(recv, frame, globals)?;
                self.store_into(&slot, &idx, v, span)?;
            }
            MpiStmt::Barrier => {
                // All-to-root gather of empty payloads, then root broadcast.
                let tag_r = self.next_coll_tag();
                let tag_b = self.next_coll_tag();
                self.trace_collective("barrier", 0);
                if self.rank == 0 {
                    for src in 1..self.nprocs {
                        self.take(Some(src), Some(tag_r), 0, span)?;
                    }
                    for dest in 1..self.nprocs {
                        self.post(dest, tag_b, 0, Vec::new(), span)?;
                    }
                } else {
                    self.post(0, tag_r, 0, Vec::new(), span)?;
                    self.take(Some(0), Some(tag_b), 0, span)?;
                }
            }
            MpiStmt::Wait => {}
        }
        Ok(())
    }

    fn next_coll_tag(&mut self) -> i64 {
        self.coll_seq += 1;
        COLLECTIVE_TAG_BASE + self.coll_seq
    }

    /// Emit a collective-entry event on the communication timeline (the
    /// lowered point-to-point traffic appears as individual send/recv
    /// events from the transport). No-op below [`TraceLevel::Full`].
    fn trace_collective(&self, name: &str, root: usize) {
        if telemetry::level() < TraceLevel::Full {
            return;
        }
        telemetry::comm_event(
            name,
            vec![
                ("rank", ArgValue::U64(self.rank as u64)),
                ("root", ArgValue::U64(root as u64)),
                ("seq", ArgValue::I64(self.coll_seq)),
            ],
        );
    }

    fn post(
        &mut self,
        dest: usize,
        tag: i64,
        comm: i64,
        payload: Vec<f64>,
        span: Span,
    ) -> Result<(), RuntimeError> {
        if dest >= self.nprocs {
            return Err(self.err(
                span,
                format!("send to invalid rank {dest} (nprocs={})", self.nprocs),
            ));
        }
        self.result.sends += 1;
        self.transport.send(self.rank, dest, tag, comm, payload);
        Ok(())
    }

    fn take(
        &mut self,
        src: Option<usize>,
        tag: Option<i64>,
        comm: i64,
        span: Span,
    ) -> Result<crate::fault::Message, RuntimeError> {
        match self.transport.recv(
            self.rank,
            src,
            tag,
            comm,
            span,
            self.config.limits.recv_timeout,
        ) {
            Ok(m) => {
                self.result.recvs += 1;
                Ok(m)
            }
            Err(RecvError::Timeout) => Err(self.err(
                span,
                "recv timed out: missing matching send (no deadlock proven)",
            )),
            Err(RecvError::Deadlock(waiting)) => Err(RuntimeError::Deadlock { waiting }),
        }
    }

    fn load_payload(
        &mut self,
        lv: &LValue,
        frame: &Frame,
        globals: &Frame,
    ) -> Result<Vec<f64>, RuntimeError> {
        let slot = self.lookup(frame, globals, &lv.name, lv.span)?;
        let idx = self.eval_indices(lv, frame, globals)?;
        let s = slot.borrow();
        match (&*s, idx.is_empty()) {
            (Storage::Scalar(v), true) => Ok(vec![*v]),
            (Storage::Array { data, .. }, true) => Ok(data.clone()),
            (Storage::Array { data, dims }, false) => {
                let off = self.flat_index(dims, &idx, lv.span)?;
                Ok(vec![data[off]])
            }
            (Storage::Scalar(_), false) => Err(self.err(lv.span, "cannot index scalar")),
        }
    }

    fn store_payload(
        &mut self,
        lv: &LValue,
        payload: Vec<f64>,
        frame: &Frame,
        globals: &Frame,
        span: Span,
    ) -> Result<(), RuntimeError> {
        let slot = self.lookup(frame, globals, &lv.name, lv.span)?;
        let idx = self.eval_indices(lv, frame, globals)?;
        let v = if payload.len() == 1 {
            Val::Num(payload[0])
        } else {
            Val::Arr(payload)
        };
        self.store_into(&slot, &idx, v, span)
    }

    fn eval_rank(
        &mut self,
        e: &Expr,
        frame: &Frame,
        globals: &Frame,
    ) -> Result<usize, RuntimeError> {
        let v = self.eval_int(e, frame, globals)?;
        usize::try_from(v).map_err(|_| self.err(e.span, format!("negative rank {v}")))
    }

    fn eval_int(&mut self, e: &Expr, frame: &Frame, globals: &Frame) -> Result<i64, RuntimeError> {
        let v = self
            .eval(e, frame, globals)?
            .as_num(|| self.err(e.span, "expected scalar"))?;
        Ok(v as i64)
    }

    fn eval_comm(
        &mut self,
        comm: &Option<Expr>,
        frame: &Frame,
        globals: &Frame,
    ) -> Result<i64, RuntimeError> {
        match comm {
            Some(c) => self.eval_int(c, frame, globals),
            None => Ok(0),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn eval_indices(
        &mut self,
        lv: &LValue,
        frame: &Frame,
        globals: &Frame,
    ) -> Result<Vec<i64>, RuntimeError> {
        lv.indices
            .iter()
            .map(|e| self.eval_int(e, frame, globals))
            .collect()
    }

    /// Column-major (Fortran) flattening of 1-based subscripts.
    fn flat_index(&self, dims: &[i64], idx: &[i64], span: Span) -> Result<usize, RuntimeError> {
        if dims.len() != idx.len() {
            return Err(self.err(span, "subscript count mismatch"));
        }
        let mut off: i64 = 0;
        let mut stride: i64 = 1;
        for (d, i) in dims.iter().zip(idx) {
            if *i < 1 || *i > *d {
                return Err(self.err(span, format!("index {i} out of bounds 1..={d}")));
            }
            off += (i - 1) * stride;
            stride *= d;
        }
        Ok(off as usize)
    }

    fn store_into(&self, slot: &Slot, idx: &[i64], v: Val, span: Span) -> Result<(), RuntimeError> {
        let mut s = slot.borrow_mut();
        match (&mut *s, idx.is_empty(), v) {
            (Storage::Scalar(dst), true, Val::Num(x)) => *dst = x,
            (Storage::Scalar(_), true, Val::Arr(_)) => {
                return Err(self.err(span, "cannot assign array to scalar"));
            }
            (Storage::Scalar(_), false, _) => {
                return Err(self.err(span, "cannot index scalar"));
            }
            (Storage::Array { data, .. }, true, Val::Num(x)) => {
                data.fill(x);
            }
            (Storage::Array { data, .. }, true, Val::Arr(xs)) => {
                if xs.len() != data.len() {
                    return Err(self.err(
                        span,
                        format!("array length mismatch: {} vs {}", xs.len(), data.len()),
                    ));
                }
                data.copy_from_slice(&xs);
            }
            (Storage::Array { data, dims }, false, Val::Num(x)) => {
                let dims = dims.clone();
                let off = self.flat_index(&dims, idx, span)?;
                data[off] = x;
            }
            (Storage::Array { .. }, false, Val::Arr(_)) => {
                return Err(self.err(span, "cannot assign array to array element"));
            }
        }
        Ok(())
    }

    fn eval(&mut self, e: &Expr, frame: &Frame, globals: &Frame) -> Result<Val, RuntimeError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Val::Num(*v as f64)),
            ExprKind::RealLit(v) => Ok(Val::Num(*v)),
            ExprKind::BoolLit(b) => Ok(Val::Num(if *b { 1.0 } else { 0.0 })),
            ExprKind::Rank => Ok(Val::Num(self.rank as f64)),
            ExprKind::Nprocs => Ok(Val::Num(self.nprocs as f64)),
            ExprKind::AnyWildcard => Err(self.err(e.span, "`ANY` has no value")),
            ExprKind::Var(lv) => {
                let slot = self.lookup(frame, globals, &lv.name, lv.span)?;
                let idx = self.eval_indices(lv, frame, globals)?;
                let s = slot.borrow();
                match (&*s, idx.is_empty()) {
                    (Storage::Scalar(v), true) => Ok(Val::Num(*v)),
                    (Storage::Array { data, .. }, true) => Ok(Val::Arr(data.clone())),
                    (Storage::Array { data, dims }, false) => {
                        let dims = dims.clone();
                        let data_ref = data;
                        let off = self.flat_index(&dims, &idx, lv.span)?;
                        Ok(Val::Num(data_ref[off]))
                    }
                    (Storage::Scalar(_), false) => Err(self.err(lv.span, "cannot index scalar")),
                }
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, frame, globals)?;
                Ok(match (op, v) {
                    (UnOp::Neg, Val::Num(x)) => Val::Num(-x),
                    (UnOp::Neg, Val::Arr(xs)) => Val::Arr(xs.into_iter().map(|x| -x).collect()),
                    (UnOp::Not, Val::Num(x)) => Val::Num(if x == 0.0 { 1.0 } else { 0.0 }),
                    (UnOp::Not, Val::Arr(_)) => {
                        return Err(self.err(e.span, "cannot negate array logically"));
                    }
                })
            }
            ExprKind::Binary(op, a, b) => {
                let va = self.eval(a, frame, globals)?;
                let vb = self.eval(b, frame, globals)?;
                self.binop(*op, va, vb, e.span)
            }
            ExprKind::Intrinsic(i, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(
                        self.eval(a, frame, globals)?
                            .as_num(|| self.err(a.span, "array intrinsic arg"))?,
                    );
                }
                let r = match i {
                    Intrinsic::Sqrt => vals[0].abs().sqrt(),
                    Intrinsic::Exp => vals[0].min(50.0).exp(),
                    Intrinsic::Log => vals[0].abs().max(1e-12).ln(),
                    Intrinsic::Sin => vals[0].sin(),
                    Intrinsic::Cos => vals[0].cos(),
                    Intrinsic::Abs => vals[0].abs(),
                    Intrinsic::Max => vals[0].max(vals[1]),
                    Intrinsic::Min => vals[0].min(vals[1]),
                    Intrinsic::Mod => {
                        let m = vals[1] as i64;
                        if m == 0 {
                            return Err(self.err(e.span, "mod by zero"));
                        }
                        ((vals[0] as i64).rem_euclid(m)) as f64
                    }
                };
                Ok(Val::Num(r))
            }
        }
    }

    fn binop(&self, op: BinOp, a: Val, b: Val, span: Span) -> Result<Val, RuntimeError> {
        use BinOp::*;
        fn scalar(op: BinOp, x: f64, y: f64) -> f64 {
            match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        0.0 // benign: benchmarks guard real divisions
                    } else {
                        x / y
                    }
                }
                Eq => (x == y) as i64 as f64,
                Ne => (x != y) as i64 as f64,
                Lt => (x < y) as i64 as f64,
                Le => (x <= y) as i64 as f64,
                Gt => (x > y) as i64 as f64,
                Ge => (x >= y) as i64 as f64,
                And => ((x != 0.0) && (y != 0.0)) as i64 as f64,
                Or => ((x != 0.0) || (y != 0.0)) as i64 as f64,
            }
        }
        Ok(match (a, b) {
            (Val::Num(x), Val::Num(y)) => Val::Num(scalar(op, x, y)),
            (Val::Arr(xs), Val::Num(y)) => {
                Val::Arr(xs.into_iter().map(|x| scalar(op, x, y)).collect())
            }
            (Val::Num(x), Val::Arr(ys)) => {
                Val::Arr(ys.into_iter().map(|y| scalar(op, x, y)).collect())
            }
            (Val::Arr(xs), Val::Arr(ys)) => {
                if xs.len() != ys.len() {
                    return Err(self.err(span, "elementwise op on arrays of different lengths"));
                }
                Val::Arr(
                    xs.into_iter()
                        .zip(ys)
                        .map(|(x, y)| scalar(op, x, y))
                        .collect(),
                )
            }
        })
    }
}

fn combine(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Sum => a + b,
        RedOp::Prod => a * b,
        RedOp::Max => a.max(b),
        RedOp::Min => a.min(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run_src(src: &str, nprocs: usize) -> Vec<ProcessResult> {
        let p = parse(src).expect("parse");
        crate::sema::check(&p).expect("sema");
        run(
            &p,
            &InterpConfig {
                nprocs,
                limits: RuntimeLimits::quick_test(),
                ..Default::default()
            },
        )
        .expect("run")
    }

    #[test]
    fn sequential_arithmetic() {
        let r = run_src(
            "program t sub main() { var x: real; x = 2.0 * 3.0 + 1.0; print(x); }",
            1,
        );
        assert_eq!(r[0].printed, vec![7.0]);
    }

    #[test]
    fn rank_branching_and_p2p() {
        let r = run_src(
            "program t sub main() {\n\
               var x: real; var y: real;\n\
               x = 0.0; y = 0.0;\n\
               if (rank() == 0) { x = 41.0 + 1.0; send(x, 1, 5); }\n\
               else { recv(y, 0, 5); }\n\
               print(y);\n\
             }",
            2,
        );
        assert_eq!(r[0].printed, vec![0.0]);
        assert_eq!(r[1].printed, vec![42.0]);
        assert_eq!(r[0].sends, 1);
        assert_eq!(r[1].recvs, 1);
    }

    #[test]
    fn wildcard_recv() {
        let r = run_src(
            "program t sub main() {\n\
               var x: real; var y: real; x = rank() * 1.0 + 10.0; y = 0.0 - 1.0;\n\
               if (rank() > 0) { send(x, 0, rank()); }\n\
               else { var k: int; for k = 1, nprocs() - 1 { recv(y, ANY, ANY); print(y); } }\n\
             }",
            4,
        );
        let mut got = r[0].printed.clone();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn bcast_distributes_root_value() {
        let r = run_src(
            "program t sub main() {\n\
               var a: real[4];\n\
               if (rank() == 0) { a = 3.0; } else { a = 0.0; }\n\
               bcast(a, 0);\n\
               print(a[2]);\n\
             }",
            3,
        );
        for pr in &r {
            assert_eq!(pr.printed, vec![3.0]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let r = run_src(
            "program t sub main() {\n\
               var s: real; var t: real; s = 0.0; t = 0.0;\n\
               reduce(SUM, rank() * 1.0 + 1.0, s, 0);\n\
               allreduce(MAX, rank() * 1.0, t);\n\
               print(s); print(t);\n\
             }",
            4,
        );
        assert_eq!(r[0].printed, vec![10.0, 3.0]); // 1+2+3+4, max rank
        assert_eq!(r[3].printed, vec![0.0, 3.0]);
    }

    #[test]
    fn barrier_all_ranks_pass() {
        let r = run_src("program t sub main() { barrier(); print(1.0); }", 5);
        assert_eq!(r.len(), 5);
        for pr in r {
            assert_eq!(pr.printed, vec![1.0]);
        }
    }

    #[test]
    fn by_reference_parameters_mutate_caller() {
        let r = run_src(
            "program t\n\
             sub inc(v: real) { v = v + 1.0; }\n\
             sub main() { var x: real; x = 1.0; call inc(x); call inc(x); print(x); }",
            1,
        );
        assert_eq!(r[0].printed, vec![3.0]);
    }

    #[test]
    fn array_element_actual_is_by_value() {
        let r = run_src(
            "program t\n\
             sub clobber(v: real) { v = 99.0; }\n\
             sub main() { var a: real[2]; a = 5.0; call clobber(a[1]); print(a[1]); }",
            1,
        );
        assert_eq!(r[0].printed, vec![5.0]);
    }

    #[test]
    fn whole_array_aliasing() {
        let r = run_src(
            "program t\n\
             sub fill(v: real[3]) { var i: int; for i = 1, 3 { v[i] = i * 1.0; } }\n\
             sub main() { var a: real[3]; call fill(a); print(a[3]); }",
            1,
        );
        assert_eq!(r[0].printed, vec![3.0]);
    }

    /// Run expecting a structured deadlock; the detector (not the timeout)
    /// must fire, so a generous timeout still finishes almost instantly.
    fn expect_deadlock(src: &str, nprocs: usize) -> Vec<crate::fault::RankWait> {
        let p = parse(src).unwrap();
        let cfg = InterpConfig {
            nprocs,
            limits: RuntimeLimits::detector_backstop(),
            ..Default::default()
        };
        let started = std::time::Instant::now();
        let e = run(&p, &cfg).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "deadlock took {:?} — detector did not fire, timeout did",
            started.elapsed()
        );
        match e {
            RuntimeError::Deadlock { waiting } => waiting,
            other => panic!("expected structured deadlock, got: {other}"),
        }
    }

    #[test]
    fn deadlock_is_detected_structurally() {
        let waiting = expect_deadlock("program t sub main() { var x: real; recv(x, 0, 1); }", 2);
        assert_eq!(waiting.len(), 2);
        assert_eq!(waiting[0].rank, 0);
        assert_eq!(waiting[0].src, Some(0), "rank 0 waits on itself");
        assert_eq!(waiting[1].rank, 1);
        assert_eq!(waiting[1].src, Some(0));
    }

    #[test]
    fn self_recv_deadlocks() {
        let waiting = expect_deadlock(
            "program t sub main() { var x: real; recv(x, rank(), 7); }",
            1,
        );
        assert_eq!(waiting.len(), 1);
        assert_eq!(
            waiting[0],
            crate::fault::RankWait {
                rank: 0,
                src: Some(0),
                tag: Some(7),
                comm: 0,
                span: waiting[0].span,
            }
        );
    }

    #[test]
    fn cyclic_recv_before_send_deadlocks() {
        // Classic head-to-head: both ranks recv first, send after. With a
        // rendezvous send this deadlocks in real MPI; our sends are eager,
        // but the recv-before-send cycle still blocks both ranks forever.
        let waiting = expect_deadlock(
            "program t sub main() {\n\
               var x: real; var y: real; x = 1.0;\n\
               recv(y, 1 - rank(), 5);\n\
               send(x, 1 - rank(), 5);\n\
             }",
            2,
        );
        assert_eq!(waiting.len(), 2);
        assert_eq!(waiting[0].src, Some(1));
        assert_eq!(waiting[1].src, Some(0));
    }

    #[test]
    fn mismatched_collective_deadlocks() {
        // Rank 1 skips the barrier and exits; rank 0 is stranded inside the
        // lowered collective. The finished rank must trigger detection.
        let waiting = expect_deadlock(
            "program t sub main() { if (rank() == 0) { barrier(); } }",
            2,
        );
        assert_eq!(waiting.len(), 1);
        assert_eq!(waiting[0].rank, 0);
        assert_eq!(waiting[0].src, Some(1), "waiting on rank 1's barrier token");
    }

    #[test]
    fn deadlock_report_formats_per_rank_lines() {
        let p = parse("program t sub main() { var x: real; recv(x, 0, 1); }").unwrap();
        let e = run(
            &p,
            &InterpConfig {
                nprocs: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("deadlock detected"), "{msg}");
        assert!(msg.contains("rank 0 waiting for recv(src=0"), "{msg}");
        assert!(msg.contains("rank 1 waiting for recv(src=0"), "{msg}");
    }

    #[test]
    fn infinite_loop_is_bounded() {
        let p = parse("program t sub main() { while (true) { } }").unwrap();
        let cfg = InterpConfig {
            nprocs: 1,
            limits: RuntimeLimits {
                max_steps: 1000,
                ..RuntimeLimits::default()
            },
            ..Default::default()
        };
        let e = run(&p, &cfg).unwrap_err();
        assert!(e.to_string().contains("budget"), "{e}");
    }

    #[test]
    fn failed_rank_wins_over_consequent_deadlock() {
        // Rank 1 dies on an out-of-bounds store; rank 0 is left waiting and
        // the registry reports a deadlock — but the *root cause* must be
        // the failure, not the deadlock it caused.
        let p = parse(
            "program t sub main() {\n\
               var a: real[2]; var x: real;\n\
               if (rank() == 0) { recv(x, 1, 1); } else { a[3] = 1.0; }\n\
             }",
        )
        .unwrap();
        let e = run(
            &p,
            &InterpConfig {
                nprocs: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(!e.is_deadlock(), "root cause must win: {e}");
        assert_eq!(e.rank(), 1);
        assert!(e.to_string().contains("out of bounds"), "{e}");
    }

    #[test]
    fn out_of_bounds_index() {
        let p = parse("program t sub main() { var a: real[2]; a[3] = 1.0; }").unwrap();
        let e = run(
            &p,
            &InterpConfig {
                nprocs: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(e.to_string().contains("out of bounds"), "{e}");
    }

    #[test]
    fn column_major_indexing() {
        let r = run_src(
            "program t sub main() {\n\
               var a: real[2,3]; var i: int; var j: int; var k: real; k = 0.0;\n\
               for j = 1, 3 { for i = 1, 2 { k = k + 1.0; a[i, j] = k; } }\n\
               print(a[1, 1]); print(a[2, 1]); print(a[1, 2]); print(a[2, 3]);\n\
             }",
            1,
        );
        assert_eq!(r[0].printed, vec![1.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn ring_pipeline() {
        // Each rank sends to the next; value accumulates around the ring.
        let r = run_src(
            "program t sub main() {\n\
               var v: real; v = 0.0;\n\
               if (rank() == 0) {\n\
                 v = 1.0; send(v, 1, 9); recv(v, nprocs() - 1, 9); print(v);\n\
               } else {\n\
                 recv(v, rank() - 1, 9); v = v + 1.0;\n\
                 send(v, mod(rank() + 1, nprocs()), 9);\n\
               }\n\
             }",
            4,
        );
        assert_eq!(r[0].printed, vec![4.0]);
    }

    #[test]
    fn determinism_across_runs() {
        let src = "program t sub main() {\n\
             var a: real[8]; var s: real; read(a); reduce(SUM, a[1], s, 0);\n\
             if (rank() == 0) { print(s); } }";
        let a = run_src(src, 3);
        let b = run_src(src, 3);
        assert_eq!(a[0].printed, b[0].printed);
        assert!(!a[0].printed.is_empty());
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;
    use crate::parser::parse;

    fn run_cfg(src: &str, cfg: &InterpConfig) -> Vec<ProcessResult> {
        let p = parse(src).expect("parse");
        crate::sema::check(&p).expect("sema");
        run(&p, cfg).expect("run")
    }

    #[test]
    fn init_globals_sets_scalars_and_fills_arrays() {
        let src = "program t global s: real; global a: real[3];\n\
             sub main() { print(s); print(a[2]); }";
        let cfg = InterpConfig {
            nprocs: 2,
            init_globals: vec![("s".into(), 5.5), ("a".into(), 2.0)],
            ..Default::default()
        };
        let r = run_cfg(src, &cfg);
        for pr in &r {
            assert_eq!(pr.printed, vec![5.5, 2.0]);
        }
    }

    #[test]
    fn capture_globals_reports_finals_sorted() {
        let src = "program t global b: real; global a: real[2];\n\
             sub main() { b = 3.0; a[1] = 1.0; a[2] = 2.0; }";
        let cfg = InterpConfig {
            nprocs: 1,
            capture_globals: true,
            ..Default::default()
        };
        let r = run_cfg(src, &cfg);
        let finals = &r[0].final_globals;
        assert_eq!(finals.len(), 2);
        assert_eq!(finals[0], ("a".to_string(), vec![1.0, 2.0]));
        assert_eq!(finals[1], ("b".to_string(), vec![3.0]));
    }

    #[test]
    fn capture_off_by_default() {
        let src = "program t global b: real; sub main() { b = 1.0; }";
        let r = run_cfg(
            src,
            &InterpConfig {
                nprocs: 1,
                ..Default::default()
            },
        );
        assert!(r[0].final_globals.is_empty());
    }

    #[test]
    fn init_globals_apply_before_entry_on_every_rank() {
        // A perturbed independent visibly flows through communication.
        let src = "program t global x: real; global y: real;\n\
             sub main() {\n\
               if (rank() == 0) { x = x * 10.0; send(x, 1, 1); } else { recv(y, 0, 1); }\n\
               print(y);\n\
             }";
        let mk = |v: f64| InterpConfig {
            nprocs: 2,
            init_globals: vec![("x".into(), v)],
            ..Default::default()
        };
        let a = run_cfg(src, &mk(1.0));
        let b = run_cfg(src, &mk(2.0));
        assert_eq!(a[1].printed, vec![10.0]);
        assert_eq!(b[1].printed, vec![20.0]);
    }

    #[test]
    fn whole_array_reduce_payloads() {
        // Reducing an array value: elementwise SUM across ranks.
        let src = "program t global a: real[3]; global r: real[3];\n\
             sub main() { a = rank() * 1.0 + 1.0; reduce(SUM, a, r, 0); print(r[1]); }";
        let out = run_cfg(
            src,
            &InterpConfig {
                nprocs: 3,
                ..Default::default()
            },
        );
        // 1 + 2 + 3 on the root; others untouched (0).
        assert_eq!(out[0].printed, vec![6.0]);
        assert_eq!(out[1].printed, vec![0.0]);
    }

    #[test]
    fn allreduce_array_agrees_everywhere() {
        let src = "program t global a: real[2]; global r: real[2];\n\
             sub main() { a = rank() * 1.0; allreduce(MAX, a, r); print(r[2]); }";
        let out = run_cfg(
            src,
            &InterpConfig {
                nprocs: 4,
                ..Default::default()
            },
        );
        for pr in &out {
            assert_eq!(pr.printed, vec![3.0]);
        }
    }

    #[test]
    fn collectives_interleave_with_p2p_without_crosstalk() {
        // User tags share the mailbox with lowered collective tags; the
        // reserved tag space must keep them apart.
        let src = "program t global x: real; global s: real;\n\
             sub main() {\n\
               x = rank() * 1.0 + 1.0;\n\
               if (rank() == 0) { send(x, 1, 3); }\n\
               allreduce(SUM, x, s);\n\
               if (rank() == 1) { recv(x, 0, 3); }\n\
               print(s); print(x);\n\
             }";
        let out = run_cfg(
            src,
            &InterpConfig {
                nprocs: 2,
                ..Default::default()
            },
        );
        assert_eq!(out[0].printed, vec![3.0, 1.0]);
        assert_eq!(
            out[1].printed,
            vec![3.0, 1.0],
            "recv got the p2p message, not a collective"
        );
    }

    #[test]
    fn nested_by_reference_chains() {
        let src = "program t\n\
             sub add1(v: real) { v = v + 1.0; }\n\
             sub add2(v: real) { call add1(v); call add1(v); }\n\
             sub main() { var x: real; x = 0.0; call add2(x); call add2(x); print(x); }";
        let out = run_cfg(
            src,
            &InterpConfig {
                nprocs: 1,
                ..Default::default()
            },
        );
        assert_eq!(out[0].printed, vec![4.0]);
    }
}
