//! # mpi-dfa-core — the MPI-aware data-flow analysis framework
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! reusable Rust library: an iterative data-flow framework whose graphs may
//! contain **communication edges** in addition to control-flow and
//! interprocedural call/return edges (Strout, Kreaseck, Hovland,
//! *Data-Flow Analysis for MPI Programs*, ICPP 2006).
//!
//! A client analysis specifies (see [`problem::Dataflow`]):
//!
//! * direction, lattice top, boundary fact, and meet — as in any classic
//!   framework;
//! * the node transfer function, which additionally receives the
//!   communication facts arriving over communication edges;
//! * the **communication transfer function** `f_comm`, computing the fact a
//!   send-like node emits over its communication edges from its IN set
//!   (forward) or a receive-like node emits from its OUT set (backward);
//! * optional fact translation across call/return edges.
//!
//! The [`solver`] module exposes a single builder entry point,
//! [`solver::Solver`], over three interchangeable [`solver::Strategy`]
//! values: a round-robin strategy (whose pass count is the paper's "Iter"
//! statistic), a sequential worklist, and an SCC-region-parallel engine
//! (backed by [`scc`]) that produces byte-identical facts at any thread
//! count. [`varset::VarSet`] and the lattices in [`lattice`] cover the fact
//! types the canonical analyses need.
//!
//! ```
//! use mpi_dfa_core::graph::SimpleGraph;
//! use mpi_dfa_core::solver::{Solver, Strategy};
//! # use mpi_dfa_core::graph::NodeId;
//! # use mpi_dfa_core::problem::{Dataflow, Direction};
//! # struct Reach;
//! # impl Dataflow for Reach {
//! #     type Fact = bool; type CommFact = ();
//! #     fn direction(&self) -> Direction { Direction::Forward }
//! #     fn top(&self) -> bool { false }
//! #     fn boundary(&self) -> bool { true }
//! #     fn meet_into(&self, d: &mut bool, s: &bool) -> bool { let c = !*d && *s; *d |= *s; c }
//! #     fn transfer(&self, _: NodeId, i: &bool, _: &[()]) -> bool { *i }
//! #     fn comm_transfer(&self, _: NodeId, _: &bool) {}
//! # }
//! let mut g = SimpleGraph::new(2);
//! g.flow(0, 1);
//! g.set_entry(0);
//! g.set_exit(1);
//! let sol = Solver::new(&Reach, &g).strategy(Strategy::Worklist).run();
//! assert!(sol.output[1]);
//! assert!(sol.stats.converged);
//! ```

pub mod budget;
pub mod cache;
pub mod graph;
pub mod hash;
pub mod hist;
pub mod lattice;
pub mod problem;
pub mod scc;
pub mod solver;
pub mod telemetry;
pub mod varset;

pub use budget::{Budget, BudgetMeter, BudgetSpent, CancelToken, Exhaustion};
pub use cache::{CacheCounters, CacheSnapshot, DiskStore, LruCache, SharedLru};
pub use graph::{Edge, EdgeKind, FlowGraph, NodeId};
pub use hash::{fnv128, fnv64, hex128, Hasher128};
pub use hist::LogHistogram;
pub use lattice::{BoolAnd, BoolOr, ConstLattice, MeetSemiLattice};
pub use problem::{Dataflow, Direction};
pub use scc::{
    condense, region_fingerprints, upstream_closure, Condensation, ExtInEdge, RegionFingerprints,
};
pub use solver::{
    ConvergenceStats, DemandRun, DemandSolver, IncrementalSolver, SeedRegions, SeededRun,
    SeededSolver, Solution, SolveParams, Solver, SolverConfigError, Strategy,
};
pub use telemetry::{SpanGuard, TelemetryReport, TraceLevel};
pub use varset::VarSet;
