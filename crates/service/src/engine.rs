//! The query engine: executes one protocol request against the cached
//! pipeline.
//!
//! Layering per request (all misses fall through, all hits short-circuit):
//!
//! ```text
//! result LRU ── result disk store ── IR LRU ── per-procedure CFG LRU ── lower/solve
//! ```
//!
//! Determinism contract: for any request without a wall-clock budget, the
//! rendered `result` object is a pure function of the request fields and
//! the program text — it contains **no wall-clock measurements**, so a
//! cache hit is byte-identical to a recompute and batch output does not
//! depend on worker-pool size. Requests with `budget_ms` are answered but
//! never cached (`cache: "bypass"`).

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::cache::{proc_cfg_key, result_key, source_key, ServiceCaches, RESULTS_NAMESPACE};
use crate::json::escape;
use crate::proto::{CacheStatus, ProtoError, Request, RequestKind};
use crate::slo::SloRegistry;
use mpi_dfa_analyses::activity::{self, demand_active_at, ActivityConfig, ActivityResult, Mode};
use mpi_dfa_analyses::governor::{
    governed_activity, governed_activity_delta, AnalysisProvenance, GovernorConfig, Tier,
};
use mpi_dfa_analyses::mpi_match::build_mpi_icfg_with_budget;
use mpi_dfa_core::budget::{Budget, Exhaustion};
use mpi_dfa_core::cache::{CacheSnapshot, DiskStore, FsckReport};
use mpi_dfa_core::graph::NodeId;
use mpi_dfa_core::hash::Hasher128;
use mpi_dfa_core::solver::{SolveParams, Strategy};
use mpi_dfa_core::telemetry;
use mpi_dfa_graph::cfg::ProcCfg;
use mpi_dfa_graph::icfg::{dirty_procs, Icfg, ProgramIr};
use mpi_dfa_graph::loc::LocTable;
use mpi_dfa_suite::experiments::{by_id, ExperimentSpec};
use mpi_dfa_suite::programs;
use mpi_dfa_suite::runner;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;
use std::sync::Mutex;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Entry bound per in-memory cache layer; 0 disables in-memory caching.
    pub cache_capacity: usize,
    /// Optional on-disk result store root (`--cache-dir`).
    pub cache_dir: Option<String>,
    /// Admission-control watermarks (see [`crate::admission`]). The engine
    /// only *holds* the control — the server consults it per request; in
    /// batch mode it stays idle (batch is closed-loop and bounded by the
    /// pool size already).
    pub admission: AdmissionConfig,
    /// Shard identity when this engine is one worker of a sharded cluster
    /// (`mpidfa serve --shards N`); surfaced in `cache-stats` so a worker's
    /// answers are attributable through the router. `None` outside a
    /// cluster.
    pub shard_id: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 256,
            cache_dir: None,
            admission: AdmissionConfig::default(),
            shard_id: None,
        }
    }
}

/// How many incremental seeds a worker retains (FIFO). Seeds are
/// in-memory only — an `ActivityResult` with its solver regions is cheap
/// to hold but pointless to persist, since an unknown `prev` id simply
/// falls back to a full solve with the identical answer.
const SEED_CAPACITY: usize = 64;

/// One retained seed for `analyze-delta`: the analyzed source text, the
/// analysis-configuration signature it was computed under, and the result
/// whose solutions carry the solver's seed regions.
#[derive(Debug)]
struct SeedEntry {
    source: String,
    sig: u128,
    result: Arc<ActivityResult>,
}

/// Bounded FIFO map from `analyze` request id → seed. Populated by every
/// computed precise T0 `analyze` whose solutions captured seed regions
/// (i.e. a converged region-parallel solve); consulted by `analyze-delta`
/// via its `prev` field.
/// FIFO insertion order paired with the id → seed map it bounds.
type SeedEntries = (HashMap<u64, Arc<SeedEntry>>, VecDeque<u64>);

#[derive(Debug, Default)]
struct SeedStore {
    entries: Mutex<SeedEntries>,
}

impl SeedStore {
    fn put(&self, id: u64, entry: SeedEntry) {
        let mut guard = self.entries.lock().unwrap();
        let (map, order) = &mut *guard;
        if map.insert(id, Arc::new(entry)).is_none() {
            order.push_back(id);
        }
        while map.len() > SEED_CAPACITY {
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
    }

    fn get(&self, id: u64) -> Option<Arc<SeedEntry>> {
        self.entries.lock().unwrap().0.get(&id).cloned()
    }
}

/// The shared, thread-safe query engine. One instance serves the whole
/// worker pool / all server connections.
#[derive(Debug)]
pub struct Engine {
    caches: ServiceCaches,
    admission: Arc<AdmissionControl>,
    /// The startup integrity pass over the disk store (`None` without
    /// `--cache-dir`), reported by `cache-stats`.
    fsck: Option<FsckReport>,
    /// Cluster shard identity, echoed in `cache-stats` (see
    /// [`EngineConfig::shard_id`]).
    shard_id: Option<u64>,
    /// Per-process latency histograms (verb × cache outcome × shard),
    /// recorded by the serving layer and exposed by the `metrics` verb.
    slo: SloRegistry,
    /// Incremental seeds for `analyze-delta` (see [`SeedStore`]).
    seeds: SeedStore,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Result<Engine, String> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(DiskStore::open(dir).map_err(|e| format!("--cache-dir {dir}: {e}"))?),
            None => None,
        };
        // Crash-only startup: validate every persisted entry before serving
        // from it, so a torn write from a previous crash can never be read.
        let fsck = disk.as_ref().map(DiskStore::fsck);
        Ok(Engine {
            caches: ServiceCaches::new(config.cache_capacity, disk),
            admission: AdmissionControl::new(config.admission),
            fsck,
            shard_id: config.shard_id,
            slo: SloRegistry::new(),
            seeds: SeedStore::default(),
        })
    }

    /// The cache layers (counters are used by tests, benches, and the
    /// telemetry exporters).
    pub fn caches(&self) -> &ServiceCaches {
        &self.caches
    }

    /// The shared admission control (the server's per-request gate).
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// The startup fsck report, when a disk store is configured.
    pub fn fsck_report(&self) -> Option<FsckReport> {
        self.fsck
    }

    /// The request-latency histogram registry. The serving layer records
    /// one sample per answered request; the `metrics` verb reports it.
    pub fn slo(&self) -> &SloRegistry {
        &self.slo
    }

    /// The shard label used for this engine's SLO series (`-` unsharded).
    pub fn shard_label(&self) -> String {
        match self.shard_id {
            Some(id) => id.to_string(),
            None => "-".to_string(),
        }
    }

    /// Process one already-parsed request into a response line.
    pub fn handle(&self, req: &Request) -> String {
        self.handle_with_floor(req, Tier::T0)
    }

    /// [`Engine::handle`] with a load-shedding governor floor (see
    /// [`crate::admission`]): `T1`/`T2` skip the more precise ladder rungs.
    /// Floored requests always **bypass** the result cache — a degraded
    /// answer must never be cached under the precise request's key, and an
    /// already-cached precise answer is still fine to serve (a hit costs no
    /// compute, which is the whole point of shedding).
    pub fn handle_with_floor(&self, req: &Request, floor: Tier) -> String {
        let run = || {
            let mut span = telemetry::span("service", "request");
            span.arg("kind", req.kind.as_str());
            if floor > Tier::T0 {
                span.arg("tier_floor", floor.as_str());
            }
            if let Some(t) = &req.trace {
                if t.attempt > 0 {
                    span.arg("attempt", t.attempt);
                }
            }
            match self.handle_inner(req, floor) {
                Ok((cache, result)) => {
                    span.arg("cache", cache.as_str());
                    crate::proto::render_ok(req.id, req.kind, cache, &result)
                }
                Err(e) => {
                    span.arg("error", e.code);
                    crate::proto::render_err(req.id, &e)
                }
            }
        };
        // Seed the distributed trace context only when the request carries
        // one — wrapping with `None` would clear a context installed by an
        // outer layer (e.g. the router handling this in-process).
        match &req.trace {
            Some(t) => telemetry::with_trace(
                Some(telemetry::TraceContext {
                    trace_id: t.id,
                    parent_span: t.parent,
                }),
                run,
            ),
            None => run(),
        }
    }

    /// Parse + process one raw request line.
    pub fn handle_line(&self, line: &str) -> String {
        match crate::proto::parse_request(line) {
            Ok(req) => self.handle(&req),
            Err(e) => crate::proto::render_err(0, &e),
        }
    }

    /// The request's result-cache key, or `None` when it bypasses the
    /// cache (wall-clock budget, ping/shutdown, or an unresolvable
    /// program/row — those produce their error during [`Engine::handle`]).
    /// The batch scheduler uses this to group identical requests so hit/
    /// miss labels do not depend on scheduling order.
    pub fn request_key(&self, req: &Request) -> Option<u128> {
        let (source, _, _) = self.resolve_source(req).ok()?;
        result_key(req, source_key(&source), self.effective_max_passes(req))
    }

    fn effective_max_passes(&self, req: &Request) -> u64 {
        req.max_passes
            .unwrap_or(SolveParams::default().max_passes as u64)
    }

    fn handle_inner(
        &self,
        req: &Request,
        floor: Tier,
    ) -> Result<(CacheStatus, String), ProtoError> {
        match req.kind {
            RequestKind::Ping => return Ok((CacheStatus::Bypass, "{\"pong\":true}".into())),
            RequestKind::Shutdown => {
                return Ok((CacheStatus::Bypass, "{\"stopping\":true}".into()))
            }
            RequestKind::CacheStats => return Ok((CacheStatus::Bypass, self.render_cache_stats())),
            RequestKind::Metrics => return Ok((CacheStatus::Bypass, self.render_metrics())),
            _ => {}
        }
        // An already-expired deadline fails fast and deterministically —
        // the client has given up on the answer, so don't start the work.
        // (Deadlines that expire *mid*-analysis are caught by the budget
        // meter's periodic polls and surface via `analysis_error`.)
        if let Some(ms) = req.deadline_ms {
            if Budget::unlimited()
                .with_deadline_ms(ms)
                .meter()
                .poll()
                .is_err()
            {
                return Err(ProtoError::new(
                    "deadline-exceeded",
                    format!("deadline_ms {ms} expired before the request started"),
                ));
            }
        }
        let (source, context, spec) = self.resolve_source(req)?;
        let key = result_key(req, source_key(&source), self.effective_max_passes(req));

        if let Some(key) = key {
            let mut span = telemetry::span("service", "cache_lookup");
            if let Some(result) = self.caches.results.get(key) {
                span.arg("layer", "memory");
                return Ok((CacheStatus::Hit, result));
            }
            if let Some(disk) = &self.caches.disk {
                if let Some(bytes) = disk.get(RESULTS_NAMESPACE, key) {
                    if let Ok(result) = String::from_utf8(bytes) {
                        // Warm the memory layer so the next hit skips I/O.
                        self.caches.results.put(key, result.clone());
                        span.arg("layer", "disk");
                        return Ok((CacheStatus::Hit, result));
                    }
                }
            }
        }

        let (result, incremental) = self.compute(req, &source, &context, spec.as_ref(), floor)?;

        match key {
            // A load-shedding floor produces a possibly degraded answer:
            // never store it under the precise request's key.
            Some(_) if floor > Tier::T0 => Ok((CacheStatus::Bypass, result)),
            Some(key) => {
                self.caches.results.put(key, result.clone());
                if let Some(disk) = &self.caches.disk {
                    // Best-effort: a failed spill only costs future misses.
                    let _ = disk.put(RESULTS_NAMESPACE, key, result.as_bytes());
                }
                // An incrementally computed answer is byte-identical to a
                // cold one and is stored like a miss; only its provenance
                // label differs.
                if incremental {
                    Ok((CacheStatus::Partial, result))
                } else {
                    Ok((CacheStatus::Miss, result))
                }
            }
            None => Ok((CacheStatus::Bypass, result)),
        }
    }

    /// Deterministic-key-order JSON for the `cache-stats` verb: admission
    /// counters, per-layer cache counters, and the startup fsck report.
    /// Values are live counters, so the verb always bypasses the cache.
    fn render_cache_stats(&self) -> String {
        fn layer(s: &CacheSnapshot) -> String {
            format!(
                "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{}}}",
                s.hits, s.misses, s.insertions, s.evictions
            )
        }
        let a = self.admission.snapshot();
        let admission = format!(
            "{{\"inflight\":{},\"tier_floor\":\"{}\",\"admitted_total\":{},\
             \"shed_total\":{},\"max_inflight\":{}}}",
            a.inflight, a.tier_floor, a.admitted_total, a.shed_total, a.max_inflight
        );
        let disk = match &self.caches.disk {
            None => "null".to_string(),
            Some(d) => {
                let s = d.counters().snapshot();
                format!(
                    "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"quarantined\":{}}}",
                    s.hits, s.misses, s.insertions, s.quarantined
                )
            }
        };
        let fsck = match &self.fsck {
            None => "null".to_string(),
            Some(f) => format!(
                "{{\"scanned\":{},\"valid\":{},\"quarantined\":{},\"removed_tmp\":{}}}",
                f.scanned, f.valid, f.quarantined, f.removed_tmp
            ),
        };
        let shard = match self.shard_id {
            None => "null".to_string(),
            Some(id) => id.to_string(),
        };
        format!(
            "{{\"shard\":{shard},\"admission\":{admission},\"caches\":{{\"ir\":{},\"proccfg\":{},\
             \"result\":{},\"disk\":{disk}}},\"fsck\":{fsck}}}",
            layer(&self.caches.irs.counters().snapshot()),
            layer(&self.caches.cfgs.counters().snapshot()),
            layer(&self.caches.results.counters().snapshot()),
        )
    }

    /// Deterministic-key-order JSON for the `metrics` verb: this process's
    /// cumulative telemetry counters (empty when the sink is off) plus the
    /// SLO latency histogram snapshot in wire form. In a cluster the
    /// router intercepts the verb and answers with the merged view instead
    /// (see `crate::router`); this is the single-worker / direct answer.
    fn render_metrics(&self) -> String {
        let shard = match self.shard_id {
            None => "null".to_string(),
            Some(id) => id.to_string(),
        };
        let report = telemetry::snapshot();
        let mut metrics = String::from("{");
        for (i, (name, value)) in report.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            if value.fract() == 0.0 && value.abs() < 9.0e15 {
                let _ = write!(metrics, "\"{}\":{}", escape(name), *value as i64);
            } else {
                let _ = write!(metrics, "\"{}\":{}", escape(name), value);
            }
        }
        metrics.push('}');
        let slo_snap = self.slo.snapshot();
        // The same data as ready-to-serve Prometheus text, so a scraper
        // can use `result.prometheus` identically against a worker or a
        // cluster router.
        let mut prom = telemetry::export_metrics_text(&report.metrics);
        crate::slo::render_prometheus(&slo_snap, &mut prom);
        format!(
            "{{\"shard\":{shard},\"metrics\":{metrics},\"slo\":{},\"prometheus\":\"{}\"}}",
            crate::slo::to_json(&slo_snap),
            escape(&prom)
        )
    }

    /// Resolve the request to `(source text, context routine, spec)`.
    fn resolve_source(
        &self,
        req: &Request,
    ) -> Result<(String, String, Option<ExperimentSpec>), ProtoError> {
        if req.kind == RequestKind::Table1Row {
            let row = req.row.as_deref().unwrap_or_default();
            let spec = by_id(row).ok_or_else(|| {
                ProtoError::new("unknown-row", format!("unknown Table-1 row `{row}`"))
            })?;
            let source = programs::source(spec.program)
                .expect("every registered row names a bundled program");
            return Ok((source.to_string(), spec.context.to_string(), Some(spec)));
        }
        let source = match (&req.program, &req.source) {
            (Some(name), None) => programs::source(name)
                .or_else(|| mpi_dfa_verify::corpus::source(name))
                .ok_or_else(|| {
                    ProtoError::new(
                        "unknown-program",
                        format!("unknown bundled program `{name}`"),
                    )
                })?
                .to_string(),
            (None, Some(src)) => src.clone(),
            // parse_request enforces exclusivity and presence for the kinds
            // that reach here.
            _ => return Err(ProtoError::new("bad-request", "missing program or source")),
        };
        let context = req.context.clone().unwrap_or_else(|| "main".to_string());
        Ok((source, context, None))
    }

    /// Build (or fetch) the [`ProgramIr`] for `source`, reusing cached
    /// per-procedure CFGs for subroutines whose normalized content and
    /// location table are unchanged.
    pub fn ir_for(&self, source: &str) -> Result<Arc<ProgramIr>, ProtoError> {
        let key = source_key(source);
        if let Some(ir) = self.caches.irs.get(key) {
            return Ok(ir);
        }
        let unit =
            mpi_dfa_lang::compile(source).map_err(|e| ProtoError::new("compile", e.to_string()))?;

        // Per-subroutine cache metadata, computed before `unit` moves into
        // the builder: normalized content and the statement-id base used to
        // rebase transplanted CFGs (ids are program-global; see
        // `ProcCfg::rebase_stmt_ids`).
        let subs: Vec<(String, i64)> = unit
            .program
            .subs
            .iter()
            .map(|s| {
                (
                    mpi_dfa_lang::pretty::sub_to_string(s),
                    i64::from(s.first_stmt_id().map(|id| id.0).unwrap_or(0)),
                )
            })
            .collect();
        let fp_cell: OnceCell<u128> = OnceCell::new();
        let fingerprint = |locs: &LocTable| *fp_cell.get_or_init(|| locs.fingerprint());

        let cfgs = self.caches.cfgs.clone();
        let mut reuse = |i: usize, locs: &LocTable| -> Option<ProcCfg> {
            let key = proc_cfg_key(&subs[i].0, fingerprint(locs), i);
            cfgs.get(key).map(|mut cfg| {
                cfg.rebase_stmt_ids(subs[i].1);
                cfg
            })
        };
        let cfgs2 = self.caches.cfgs.clone();
        let mut store = |i: usize, locs: &LocTable, cfg: &ProcCfg| {
            let key = proc_cfg_key(&subs[i].0, fingerprint(locs), i);
            let mut normalized = cfg.clone();
            normalized.rebase_stmt_ids(-subs[i].1);
            cfgs2.put(key, normalized);
        };

        let (ir, _reuse_stats) = ProgramIr::build_with_cfg_cache(unit, &mut reuse, &mut store);
        self.caches.irs.put(key, ir.clone());
        Ok(ir)
    }

    /// The wall-clock bound for this request: the *minimum* of `budget_ms`
    /// (degrade-oriented) and `deadline_ms` (abort-oriented), when either
    /// is set.
    fn effective_deadline_ms(req: &Request) -> Option<u64> {
        match (req.budget_ms, req.deadline_ms) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn governor(&self, req: &Request, floor: Tier) -> GovernorConfig {
        let mut budget = Budget::unlimited();
        if let Some(ms) = Self::effective_deadline_ms(req) {
            budget = budget.with_deadline_ms(ms);
        }
        if let Some(w) = req.max_visits {
            budget = budget.with_max_work(w);
        }
        if let Some(b) = req.max_fact_bytes {
            budget = budget.with_max_fact_bytes(b);
        }
        GovernorConfig {
            clone_level: req.clone_level,
            matching: req.matching,
            budget,
            degrade: req.degrade,
            max_passes: self.effective_max_passes(req) as usize,
            // Per-request override, else the process default (which the
            // CLI's `--solver` flag or `MPIDFA_SOLVER` establishes).
            strategy: req.solver.unwrap_or_else(Strategy::session_default),
            tier_floor: floor,
        }
    }

    /// Map an analysis-layer error message to its protocol code: budget
    /// deadline expiry under an explicit `deadline_ms` is the structured
    /// `deadline-exceeded` code, everything else stays `analysis`.
    fn analysis_error(req: &Request, message: String) -> ProtoError {
        let deadline_hit =
            req.deadline_ms.is_some() && message.contains(&Exhaustion::Deadline.to_string());
        ProtoError::new(
            if deadline_hit {
                "deadline-exceeded"
            } else {
                "analysis"
            },
            message,
        )
    }

    /// The analysis-configuration signature a seed was computed under: an
    /// `analyze-delta` can only reuse a seed whose program-independent
    /// knobs (context, clone level, ind/dep sets, matching, mode, pass
    /// bound) all match — anything else would transplant facts of a
    /// different analysis.
    fn seed_sig(&self, req: &Request, context: &str) -> u128 {
        Hasher128::new()
            .write_str("seed-sig")
            .write_str(context)
            .write_u64(req.clone_level as u64)
            .write_strs(&req.ind)
            .write_strs(&req.dep)
            .write_str(req.matching_str())
            .write_str(&req.mode)
            .write_u64(self.effective_max_passes(req))
            .finish()
    }

    /// Compute one response payload. The boolean is true when the answer
    /// was produced **incrementally** (seeded region transplant) — the
    /// caller turns it into `cache: "partial"` provenance.
    fn compute(
        &self,
        req: &Request,
        source: &str,
        context: &str,
        spec: Option<&ExperimentSpec>,
        floor: Tier,
    ) -> Result<(String, bool), ProtoError> {
        match req.kind {
            RequestKind::Analyze if req.at.is_some() => {
                self.compute_demand(req, source, context, floor)
            }
            RequestKind::Analyze => {
                let ir = self.ir_for(source)?;
                let (result, provenance) = self.run_activity(req, &ir, context, floor)?;
                let result = Arc::new(result);
                self.maybe_seed(req, context, floor, &result, provenance.as_ref(), source);
                Ok((
                    render_activity(req, &ir, context, &result, provenance.as_ref()),
                    false,
                ))
            }
            RequestKind::AnalyzeDelta => self.compute_delta(req, source, context, floor),
            RequestKind::ActivityAtLocation => {
                let ir = self.ir_for(source)?;
                let var = req.var.as_deref().expect("validated by parse_request");
                let proc = ir.proc_id(context).ok_or_else(|| {
                    ProtoError::new("analysis", format!("unknown context routine `{context}`"))
                })?;
                let loc = ir.locs.resolve(proc, var).ok_or_else(|| {
                    ProtoError::new(
                        "bad-request",
                        format!("unknown variable `{var}` in `{context}`"),
                    )
                })?;
                let (result, provenance) = self.run_activity(req, &ir, context, floor)?;
                let info = ir.locs.info(loc);
                Ok((
                    format!(
                        "{{\"var\":\"{}\",\"location\":\"{}\",\"active\":{},\"byte_size\":{},\"tier\":{}}}",
                        escape(var),
                        escape(&ir.locs.qualified_name(loc)),
                        result.active.contains(loc.index()),
                        info.byte_size(),
                        provenance
                            .as_ref()
                            .map(|p| format!("\"{}\"", p.tier))
                            .unwrap_or_else(|| "null".to_string()),
                    ),
                    false,
                ))
            }
            RequestKind::Dot => {
                let ir = self.ir_for(source)?;
                let mut budget = Budget::unlimited();
                if let Some(ms) = Self::effective_deadline_ms(req) {
                    budget = budget.with_deadline_ms(ms);
                }
                let mpi =
                    build_mpi_icfg_with_budget(ir, context, req.clone_level, req.matching, &budget)
                        .map_err(|e| Self::analysis_error(req, e.to_string()))?;
                let dot = mpi_dfa_graph::dot::mpi_icfg_to_dot(&mpi, context);
                Ok((
                    format!(
                        "{{\"context\":\"{}\",\"comm_edges\":{},\"dot\":\"{}\"}}",
                        escape(context),
                        mpi.comm_edges.len(),
                        escape(&dot)
                    ),
                    false,
                ))
            }
            RequestKind::Verify => {
                let ir = self.ir_for(source)?;
                let mut budget = Budget::unlimited();
                if let Some(ms) = Self::effective_deadline_ms(req) {
                    budget = budget.with_deadline_ms(ms);
                }
                if let Some(w) = req.max_visits {
                    budget = budget.with_max_work(w);
                }
                if let Some(b) = req.max_fact_bytes {
                    budget = budget.with_max_fact_bytes(b);
                }
                let mpi =
                    build_mpi_icfg_with_budget(ir, context, req.clone_level, req.matching, &budget)
                        .map_err(|e| Self::analysis_error(req, e.to_string()))?;
                let vcfg = mpi_dfa_verify::VerifyConfig {
                    nprocs: req.nprocs.unwrap_or(2) as usize,
                    schedules: req.schedules.unwrap_or(8) as u32,
                    entry: context.to_string(),
                    max_passes: self.effective_max_passes(req) as usize,
                    ..mpi_dfa_verify::VerifyConfig::default()
                };
                let report = mpi_dfa_verify::verify(&mpi, &vcfg, &budget)
                    .map_err(|e| Self::analysis_error(req, e.to_string()))?;
                Ok((mpi_dfa_verify::render_json(&report), false))
            }
            RequestKind::Table1Row => {
                let spec = spec.expect("resolve_source sets the spec for table1-row");
                let gov = self.governor(req, floor);
                let row = runner::run_experiment_governed(spec, &gov)
                    .map_err(|e| Self::analysis_error(req, e))?;
                Ok((render_row(&row), false))
            }
            RequestKind::Ping
            | RequestKind::Shutdown
            | RequestKind::CacheStats
            | RequestKind::Metrics => {
                unreachable!("handled before compute")
            }
        }
    }

    fn run_activity(
        &self,
        req: &Request,
        ir: &Arc<ProgramIr>,
        context: &str,
        floor: Tier,
    ) -> Result<(ActivityResult, Option<AnalysisProvenance>), ProtoError> {
        if req.ind.is_empty() || req.dep.is_empty() {
            return Err(ProtoError::new(
                "bad-request",
                "activity analysis requires non-empty `ind` and `dep`",
            ));
        }
        let config = ActivityConfig::new(req.ind.clone(), req.dep.clone());
        match req.mode.as_str() {
            "mpi" => {
                let gov = self.governor(req, floor);
                let g = governed_activity(ir, context, &config, &gov)
                    .map_err(|e| Self::analysis_error(req, e))?;
                Ok((g.result, Some(g.provenance)))
            }
            mode => {
                // The non-mpi baselines have no degradation ladder, so a
                // deadline here aborts with a structured error instead: a
                // non-converged union-analysis snapshot under-approximates
                // and must never be published as if it were a fixpoint.
                let mut budget = Budget::unlimited();
                if let Some(ms) = Self::effective_deadline_ms(req) {
                    budget = budget.with_deadline_ms(ms);
                }
                let icfg = Icfg::build_with_budget(ir.clone(), context, req.clone_level, &budget)
                    .map_err(|e| Self::analysis_error(req, e.to_string()))?;
                let m = if mode == "global" {
                    Mode::GlobalBuffer
                } else {
                    Mode::Naive
                };
                let params = SolveParams {
                    max_passes: self.effective_max_passes(req) as usize,
                    budget,
                    strategy: req.solver.unwrap_or_else(Strategy::session_default),
                };
                let r = activity::analyze_icfg_with(&icfg, m, &config, &params)
                    .map_err(|e| Self::analysis_error(req, e))?;
                if let Some(x) = r.vary.stats.exhausted.or(r.useful.stats.exhausted) {
                    if x == Exhaustion::Deadline && req.deadline_ms.is_some() {
                        return Err(ProtoError::new(
                            "deadline-exceeded",
                            format!("deadline expired mid-analysis ({x})"),
                        ));
                    }
                }
                Ok((r, None))
            }
        }
    }

    /// Retain `result` as an incremental seed when it can actually seed a
    /// re-solve: a precise, converged T0 `mpi` analysis whose solutions
    /// carry solver regions (only converged region-parallel runs capture
    /// them — see `docs/INCREMENTAL.md`).
    fn maybe_seed(
        &self,
        req: &Request,
        context: &str,
        floor: Tier,
        result: &Arc<ActivityResult>,
        provenance: Option<&AnalysisProvenance>,
        source: &str,
    ) {
        let precise = provenance.is_some_and(|p| p.is_precise() && !p.saturated);
        if floor > Tier::T0
            || req.mode != "mpi"
            || !precise
            || !result.converged()
            || result.vary.regions.is_none()
            || result.useful.regions.is_none()
        {
            return;
        }
        self.seeds.put(
            req.id,
            SeedEntry {
                source: source.to_string(),
                sig: self.seed_sig(req, context),
                result: result.clone(),
            },
        );
    }

    /// `analyze-delta`: re-analyze edited source seeded from a previous
    /// `analyze` result. The answer is byte-identical to a cold solve of
    /// the same source; the boolean reports whether the incremental engine
    /// produced it (→ `cache: "partial"`) or a fallback full solve did
    /// (→ `cache: "miss"`). A missing/mismatched seed is **not** an error:
    /// incremental serving degrades to correct-but-cold, never to wrong.
    fn compute_delta(
        &self,
        req: &Request,
        source: &str,
        context: &str,
        floor: Tier,
    ) -> Result<(String, bool), ProtoError> {
        if req.mode != "mpi" {
            return Err(ProtoError::new(
                "bad-request",
                "kind `analyze-delta` supports only mode `mpi`",
            ));
        }
        if req.ind.is_empty() || req.dep.is_empty() {
            return Err(ProtoError::new(
                "bad-request",
                "activity analysis requires non-empty `ind` and `dep`",
            ));
        }
        let ir = self.ir_for(source)?;
        let config = ActivityConfig::new(req.ind.clone(), req.dep.clone());
        let gov = self.governor(req, floor);
        let prev_id = req.prev.expect("validated by parse_request");

        // The incremental path is precise-T0 only: under a load-shedding
        // floor, or without a usable seed, answer with the normal governed
        // ladder instead.
        let seed = if floor > Tier::T0 {
            None
        } else {
            self.seeds
                .get(prev_id)
                .filter(|s| s.sig == self.seed_sig(req, context))
        };
        let Some(seed) = seed else {
            if telemetry::is_enabled() {
                telemetry::metric_add("service_delta_seed_miss_total", 1.0);
            }
            let (result, provenance) = self.run_activity(req, &ir, context, floor)?;
            return Ok((
                render_activity(req, &ir, context, &result, provenance.as_ref()),
                false,
            ));
        };

        let prev_ir = self.ir_for(&seed.source)?;
        let dirty = dirty_procs(&prev_ir, &ir);
        let delta = governed_activity_delta(&ir, context, &config, &gov, &seed.result, &dirty)
            .map_err(|e| Self::analysis_error(req, e))?;
        let incremental = delta.incremental;
        let result = Arc::new(delta.governed.result);
        let provenance = delta.governed.provenance;
        // A successful delta is itself a valid seed for the next edit.
        self.maybe_seed(req, context, floor, &result, Some(&provenance), source);
        Ok((
            render_activity(req, &ir, context, &result, Some(&provenance)),
            incremental,
        ))
    }

    /// Demand-driven `analyze` (`at` present): activity at one ICFG node,
    /// answered from the upstream region slices without a whole-program
    /// fixpoint. The result shape differs from a full analysis and is
    /// keyed separately (`cache::result_key` folds `at` in).
    fn compute_demand(
        &self,
        req: &Request,
        source: &str,
        context: &str,
        floor: Tier,
    ) -> Result<(String, bool), ProtoError> {
        if req.mode != "mpi" {
            return Err(ProtoError::new(
                "bad-request",
                "demand queries (`at`) support only mode `mpi`",
            ));
        }
        if req.ind.is_empty() || req.dep.is_empty() {
            return Err(ProtoError::new(
                "bad-request",
                "activity analysis requires non-empty `ind` and `dep`",
            ));
        }
        let ir = self.ir_for(source)?;
        let config = ActivityConfig::new(req.ind.clone(), req.dep.clone());
        let gov = self.governor(req, floor);
        let mpi = build_mpi_icfg_with_budget(
            ir.clone(),
            context,
            gov.clone_level,
            gov.matching,
            &gov.budget,
        )
        .map_err(|e| Self::analysis_error(req, e.to_string()))?;
        let at = req.at.expect("kind dispatch checked `at`");
        let num_nodes = mpi.icfg().nodes().count() as u64;
        if at >= num_nodes {
            return Err(ProtoError::new(
                "bad-request",
                format!("node `at` {at} out of range (program has {num_nodes} nodes)"),
            ));
        }
        let params = SolveParams {
            max_passes: gov.max_passes,
            budget: gov.budget.clone(),
            strategy: gov.strategy,
        };
        let d = demand_active_at(&mpi, &config, &params, &[NodeId(at as u32)])
            .map_err(|e| Self::analysis_error(req, e))?;
        let mut active = String::from("[");
        let mut first = true;
        for loc in d.active.iter() {
            if loc == LocTable::MPI_BUFFER.0 as usize {
                continue;
            }
            if !first {
                active.push(',');
            }
            first = false;
            let _ = write!(
                active,
                "\"{}\"",
                escape(&ir.locs.qualified_name(mpi_dfa_graph::loc::Loc(loc as u32)))
            );
        }
        active.push(']');
        Ok((
            format!(
                "{{\"context\":\"{}\",\"at\":{at},\"mode\":\"demand\",\"independents\":{},\
                 \"dependents\":{},\"active_at\":{active},\"regions_total\":{},\
                 \"regions_solved\":{},\"nodes_visited\":{}}}",
                escape(context),
                render_str_list(&req.ind),
                render_str_list(&req.dep),
                d.regions_total,
                d.regions_solved,
                d.nodes_visited,
            ),
            false,
        ))
    }
}

fn render_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Deterministic provenance JSON: tier, saturation, solver work — but **no
/// elapsed wall clock** (that would break hit ≡ recompute byte equality).
fn render_provenance(p: Option<&AnalysisProvenance>) -> String {
    match p {
        None => "null".to_string(),
        Some(p) => format!(
            "{{\"tier\":\"{}\",\"saturated\":{},\"work_units\":{},\"degradation_reason\":{}}}",
            p.tier,
            p.saturated,
            p.budget_spent.work,
            match &p.degradation_reason {
                None => "null".to_string(),
                Some(r) => format!("\"{}\"", escape(r)),
            }
        ),
    }
}

fn render_activity(
    req: &Request,
    ir: &Arc<ProgramIr>,
    context: &str,
    result: &ActivityResult,
    provenance: Option<&AnalysisProvenance>,
) -> String {
    let mut active = String::from("[");
    let mut first = true;
    for loc in result.active_locs() {
        if loc == mpi_dfa_graph::loc::LocTable::MPI_BUFFER {
            continue;
        }
        if !first {
            active.push(',');
        }
        first = false;
        let _ = write!(active, "\"{}\"", escape(&ir.locs.qualified_name(loc)));
    }
    active.push(']');
    format!(
        "{{\"context\":\"{}\",\"clone_level\":{},\"mode\":\"{}\",\"independents\":{},\
         \"dependents\":{},\"converged\":{},\"iterations\":{},\"active_bytes\":{},\
         \"deriv_bytes\":{},\"active\":{},\"provenance\":{}}}",
        escape(context),
        req.clone_level,
        escape(&req.mode),
        render_str_list(&req.ind),
        render_str_list(&req.dep),
        result.converged(),
        result.iterations,
        result.active_bytes,
        result.deriv_bytes(req.ind.len() as u64),
        active,
        render_provenance(provenance),
    )
}

fn render_mode(m: &runner::MeasuredMode) -> String {
    format!(
        "{{\"iterations\":{},\"active_bytes\":{},\"deriv_bytes\":{},\"converged\":{}}}",
        m.iterations, m.active_bytes, m.deriv_bytes, m.converged
    )
}

/// One Table-1 row as deterministic JSON (the `repro json` report keeps its
/// own independent rendering — that one includes wall-clock provenance and
/// is not cached at this layer).
fn render_row(row: &runner::MeasuredRow) -> String {
    let p = row.provenance.as_ref();
    format!(
        "{{\"id\":\"{}\",\"program\":\"{}\",\"context\":\"{}\",\"clone_level\":{},\
         \"comm_edges\":{},\"converged\":{},\"icfg\":{},\"mpi_icfg\":{},\
         \"pct_decrease\":{:.4},\"provenance\":{}}}",
        escape(row.spec.id),
        escape(row.spec.program),
        escape(row.spec.context),
        row.spec.clone_level,
        row.comm_edges,
        row.converged(),
        render_mode(&row.icfg),
        render_mode(&row.mpi),
        row.pct_decrease(),
        render_provenance(p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default()).unwrap()
    }

    fn parse(line: &str) -> Request {
        parse_request(line).unwrap()
    }

    #[test]
    fn ping_round_trips() {
        let e = engine();
        let resp = e.handle_line(r#"{"id":5,"kind":"ping"}"#);
        assert_eq!(
            resp,
            r#"{"id":5,"ok":true,"kind":"ping","cache":"bypass","result":{"pong":true}}"#
        );
    }

    #[test]
    fn analyze_miss_then_hit_is_byte_identical() {
        let e = engine();
        let req = parse(r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        let first = e.handle(&req);
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        let second = e.handle(&req);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        // The result payload must be identical; only the cache label moves.
        assert_eq!(
            first.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
            second
        );
        // Response is valid JSON with the provenance attached.
        let parsed = crate::json::parse(&second).unwrap();
        let result = parsed.get("result").unwrap();
        assert_eq!(
            result
                .get("provenance")
                .unwrap()
                .get("tier")
                .unwrap()
                .as_str(),
            Some("T0")
        );
        assert!(result.get("converged").unwrap().as_bool().unwrap());
    }

    #[test]
    fn warm_cache_hits_across_solver_strategies() {
        // Satellite regression: the strategy is excluded from the result
        // cache key because all strategies produce identical facts. A
        // result computed under the worklist must be served as a *hit* to
        // a region-parallel request for the same analysis — and the ids
        // aside, the payload must be the very same cached bytes.
        let e = engine();
        let miss = e.handle(&parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"solver":"worklist"}"#,
        ));
        assert!(miss.contains("\"cache\":\"miss\""), "{miss}");
        for (id, solver) in [
            (2, "region-parallel"),
            (3, "region-parallel:8"),
            (4, "round-robin"),
        ] {
            let hit = e.handle(&parse(&format!(
                r#"{{"id":{id},"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"solver":"{solver}"}}"#,
            )));
            assert!(hit.contains("\"cache\":\"hit\""), "{solver}: {hit}");
            assert_eq!(
                miss.replace("\"id\":1", &format!("\"id\":{id}"))
                    .replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
                hit,
                "{solver} must be served the cached worklist result"
            );
        }
        // An invalid solver value is a structured error, not a panic.
        let err = e.handle_line(
            r#"{"id":5,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"solver":"magic"}"#,
        );
        assert!(err.contains("\"error\""), "{err}");
        assert!(err.contains("unknown solver strategy"), "{err}");
    }

    #[test]
    fn degrade_flip_is_a_miss_not_a_stale_hit() {
        // Satellite regression: a result computed under `degrade: auto`
        // must never be served for a `degrade: off` request (and vice
        // versa) — the keys differ, so the flipped request misses.
        let e = engine();
        let auto = parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"degrade":"auto"}"#,
        );
        let off = parse(
            r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"degrade":"off"}"#,
        );
        assert!(e.handle(&auto).contains("\"cache\":\"miss\""));
        let r = e.handle(&off);
        assert!(
            r.contains("\"cache\":\"miss\""),
            "degrade flip must miss: {r}"
        );
        // And a repeat of each now hits its own entry.
        assert!(e.handle(&auto).contains("\"cache\":\"hit\""));
        assert!(e.handle(&off).contains("\"cache\":\"hit\""));
    }

    #[test]
    fn tier_capped_result_is_keyed_separately_from_precise() {
        // A T2/degraded result (max_visits cap) and the precise T0 result
        // live under different keys; the precise request never sees the
        // degraded payload.
        let e = engine();
        let capped = parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"max_visits":1}"#,
        );
        let precise =
            parse(r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        let r1 = e.handle(&capped);
        assert!(r1.contains("\"cache\":\"miss\""));
        assert!(!r1.contains("\"tier\":\"T0\""), "capped run degraded: {r1}");
        let r2 = e.handle(&precise);
        assert!(r2.contains("\"cache\":\"miss\""), "{r2}");
        assert!(r2.contains("\"tier\":\"T0\""), "{r2}");
        // Hits keep serving their own payloads.
        assert!(e.handle(&capped).contains("\"cache\":\"hit\""));
        let r1b = e.handle(&capped);
        assert_eq!(r1b, r1.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""));
    }

    #[test]
    fn verify_verb_caches_and_is_byte_identical_on_hit() {
        let e = engine();
        let safe = parse(r#"{"id":1,"kind":"verify","program":"figure1","schedules":2}"#);
        let cold = e.handle(&safe);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        assert!(cold.contains("\"verdict\":\"safe\""), "{cold}");
        assert!(cold.contains("\"outcome\":\"consistent-safe\""), "{cold}");
        let warm = e.handle(&safe);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        assert_eq!(
            warm,
            cold.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
            "hit must serve the recompute's exact bytes"
        );

        // The seeded corpus resolves by name and is flagged + realized.
        let bad =
            parse(r#"{"id":2,"kind":"verify","program":"deadlock-head-to-head","schedules":2}"#);
        let r = e.handle(&bad);
        assert!(r.contains("\"verdict\":\"flagged\""), "{r}");
        assert!(r.contains("\"outcome\":\"confirmed\""), "{r}");

        // nprocs/schedules are part of the key: changing either recomputes.
        let other = parse(r#"{"id":3,"kind":"verify","program":"figure1","schedules":3}"#);
        assert!(e.handle(&other).contains("\"cache\":\"miss\""));
    }

    #[test]
    fn wall_clock_budget_bypasses_cache() {
        let e = engine();
        let req = parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"budget_ms":10000}"#,
        );
        assert!(e.handle(&req).contains("\"cache\":\"bypass\""));
        assert!(e.handle(&req).contains("\"cache\":\"bypass\""));
        assert!(e.request_key(&req).is_none());
    }

    #[test]
    fn deadline_ms_bypasses_cache_and_degrades_or_errors() {
        let e = engine();
        // Governed mpi mode + auto degradation: an already-expired deadline
        // still answers (possibly the saturated ⊤ result), as a bypass.
        let r = e.handle(&parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"deadline_ms":10000}"#,
        ));
        assert!(r.contains("\"cache\":\"bypass\""), "{r}");
        // An already-expired deadline is the structured `deadline-exceeded`
        // error, not a panic or a wrong answer — for every kind.
        for line in [
            r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"deadline_ms":0,"degrade":"off"}"#,
            r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"mode":"global","deadline_ms":0}"#,
            r#"{"id":4,"kind":"table1-row","row":"Biostat","deadline_ms":0}"#,
            r#"{"id":5,"kind":"dot","program":"figure1","deadline_ms":0}"#,
        ] {
            let r = e.handle(&parse(line));
            assert!(
                r.contains("\"code\":\"deadline-exceeded\""),
                "expired deadline must be structured for {line}: {r}"
            );
        }
    }

    #[test]
    fn cache_stats_reports_admission_caches_and_fsck() {
        let e = engine();
        e.handle(&parse(
            r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#,
        ));
        let r = e.handle(&parse(r#"{"id":2,"kind":"cache-stats"}"#));
        assert!(r.contains("\"cache\":\"bypass\""), "{r}");
        let parsed = crate::json::parse(&r).unwrap();
        let result = parsed.get("result").unwrap();
        let admission = result.get("admission").unwrap();
        assert_eq!(admission.get("inflight").unwrap().as_u64(), Some(0));
        assert_eq!(admission.get("tier_floor").unwrap().as_str(), Some("T0"));
        let caches = result.get("caches").unwrap();
        assert!(caches.get("result").unwrap().get("insertions").is_some());
        // No --cache-dir: disk and fsck are null.
        assert_eq!(caches.get("disk"), Some(&crate::json::Json::Null));
        assert_eq!(result.get("fsck"), Some(&crate::json::Json::Null));
    }

    #[test]
    fn fsck_runs_at_startup_and_is_reported() {
        let dir = std::env::temp_dir().join(format!("mpidfa-fsck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig {
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..Default::default()
        };
        // Warm one entry, then corrupt it on disk.
        let e = Engine::new(cfg.clone()).unwrap();
        let req = parse(r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(e.handle(&req).contains("\"cache\":\"miss\""));
        drop(e);
        let results_dir = dir.join(RESULTS_NAMESPACE);
        let entry = std::fs::read_dir(&results_dir)
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .path();
        std::fs::write(&entry, b"garbage, not a frame").unwrap();
        // A fresh engine's startup fsck quarantines it; the next request is
        // a clean recompute (miss), never wrong bytes.
        let e2 = Engine::new(cfg).unwrap();
        let fsck = e2.fsck_report().unwrap();
        assert_eq!(fsck.quarantined, 1, "{fsck:?}");
        assert!(e2.handle(&req).contains("\"cache\":\"miss\""));
        let stats = e2.handle(&parse(r#"{"id":9,"kind":"cache-stats"}"#));
        assert!(stats.contains("\"quarantined\":1"), "{stats}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_floor_bypasses_cache_and_degrades() {
        let e = engine();
        let req = parse(r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        // Floored request computes a degraded answer and does NOT store it.
        let floored = e.handle_with_floor(&req, Tier::T2);
        assert!(floored.contains("\"cache\":\"bypass\""), "{floored}");
        assert!(floored.contains("\"tier\":\"T2\""), "{floored}");
        assert!(floored.contains("load shedding"), "{floored}");
        // The precise request still misses (no pollution) and is precise.
        let precise = e.handle(&req);
        assert!(precise.contains("\"cache\":\"miss\""), "{precise}");
        assert!(precise.contains("\"tier\":\"T0\""), "{precise}");
        // Once the precise answer is cached, a floored request serves the
        // cached precise bytes as a free hit — shedding never makes a warm
        // answer worse.
        let warm = e.handle_with_floor(&req, Tier::T2);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        assert!(warm.contains("\"tier\":\"T0\""), "{warm}");
    }

    #[test]
    fn table1_row_matches_direct_runner_numbers() {
        let e = engine();
        let resp = e.handle(&parse(r#"{"id":1,"kind":"table1-row","row":"Biostat"}"#));
        assert!(resp.contains("\"cache\":\"miss\""), "{resp}");
        assert!(resp.contains("\"active_bytes\":9016"), "{resp}");
        assert!(resp.contains("\"active_bytes\":1441632"), "{resp}");
        assert!(resp.contains("\"tier\":\"T0\""), "{resp}");
        let warm = e.handle(&parse(r#"{"id":1,"kind":"table1-row","row":"Biostat"}"#));
        assert!(warm.contains("\"cache\":\"hit\""));
    }

    #[test]
    fn activity_at_location_answers_per_variable() {
        let e = engine();
        let z = e.handle(&parse(
            r#"{"id":1,"kind":"activity-at-location","program":"figure1","ind":["x"],"dep":["f"],"var":"z"}"#,
        ));
        assert!(z.contains("\"active\":true"), "{z}");
        let resp = e.handle(&parse(
            r#"{"id":2,"kind":"activity-at-location","program":"figure1","ind":["x"],"dep":["f"],"var":"nope"}"#,
        ));
        assert!(
            resp.contains("\"ok\":false") && resp.contains("unknown variable"),
            "{resp}"
        );
    }

    #[test]
    fn dot_renders_and_caches() {
        let e = engine();
        let req = parse(r#"{"id":3,"kind":"dot","program":"figure1"}"#);
        let a = e.handle(&req);
        assert!(a.contains("digraph"), "{a}");
        assert!(a.contains("\"cache\":\"miss\""));
        let b = e.handle(&req);
        assert!(b.contains("\"cache\":\"hit\""));
    }

    #[test]
    fn unknown_program_and_row_are_structured_errors() {
        let e = engine();
        let r =
            e.handle_line(r#"{"id":1,"kind":"analyze","program":"nope","ind":["x"],"dep":["f"]}"#);
        assert!(r.contains("\"code\":\"unknown-program\""), "{r}");
        let r = e.handle_line(r#"{"id":1,"kind":"table1-row","row":"nope"}"#);
        assert!(r.contains("\"code\":\"unknown-row\""), "{r}");
        let r = e.handle_line("not json at all");
        assert!(
            r.contains("\"code\":\"parse\"") && r.contains("\"id\":0"),
            "{r}"
        );
    }

    #[test]
    fn compile_errors_are_structured() {
        let e = engine();
        let r = e.handle_line(
            r#"{"id":4,"kind":"analyze","source":"program p sub main() { x = }","ind":["x"],"dep":["x"]}"#,
        );
        assert!(r.contains("\"code\":\"compile\""), "{r}");
    }

    // Embedded in JSONL request lines, so newlines are the two-character
    // escape `\n` that the protocol's JSON parser decodes.
    const DELTA_BASE: &str = "program inc\\n\
        global x: real; global y: real; global f: real; global t: real;\\n\
        sub work() {\\n\
          t = x * 2.0;\\n\
          if (rank() == 0) { send(t, 1, 4); } else { recv(y, 0, 4); }\\n\
        }\\n\
        sub main() {\\n\
          x = x + 1.0;\\n\
          call work();\\n\
          f = y + t;\\n\
        }";

    const DELTA_EDIT: &str = "program inc\\n\
        global x: real; global y: real; global f: real; global t: real;\\n\
        sub work() {\\n\
          print(1.0);\\n\
          t = x * 2.0;\\n\
          if (rank() == 0) { send(t, 1, 4); } else { recv(y, 0, 4); }\\n\
        }\\n\
        sub main() {\\n\
          x = x + 1.0;\\n\
          call work();\\n\
          f = y + t;\\n\
        }";

    fn analyze_line(id: u64, kind: &str, source: &str, extra: &str) -> String {
        format!(
            r#"{{"id":{id},"kind":"{kind}","source":"{source}","ind":["x"],"dep":["f"],"solver":"region-parallel:2"{extra}}}"#
        )
    }

    /// The `result` object of a response line (the envelope's `kind` and
    /// `cache` legitimately differ between a delta and a cold analyze).
    fn result_of(resp: &str) -> &str {
        resp.split_once("\"result\":").expect("ok response").1
    }

    #[test]
    fn analyze_delta_is_partial_and_byte_identical_to_cold() {
        let e = engine();
        // Seed: a precise converged region-parallel analyze.
        let seed_resp = e.handle(&parse(&analyze_line(10, "analyze", DELTA_BASE, "")));
        assert!(seed_resp.contains("\"cache\":\"miss\""), "{seed_resp}");
        // Incremental re-analyze of the edited source.
        let delta_resp = e.handle(&parse(&analyze_line(
            11,
            "analyze-delta",
            DELTA_EDIT,
            r#","prev":10"#,
        )));
        assert!(
            delta_resp.contains("\"cache\":\"partial\""),
            "seeded delta must be partial: {delta_resp}"
        );
        assert!(delta_resp.contains("\"tier\":\"T0\""), "{delta_resp}");
        // Byte-identity: a cold analyze of the edited source (different
        // result key — kind is folded in) renders the exact same result.
        let cold_resp = e.handle(&parse(&analyze_line(12, "analyze", DELTA_EDIT, "")));
        assert!(cold_resp.contains("\"cache\":\"miss\""), "{cold_resp}");
        assert_eq!(
            result_of(&delta_resp),
            result_of(&cold_resp),
            "incremental answer must be byte-identical to the cold solve"
        );
        // A repeat of the same delta now hits its own cached entry.
        let again = e.handle(&parse(&analyze_line(
            13,
            "analyze-delta",
            DELTA_EDIT,
            r#","prev":10"#,
        )));
        assert!(again.contains("\"cache\":\"hit\""), "{again}");
    }

    #[test]
    fn analyze_delta_without_seed_falls_back_to_full_miss() {
        let e = engine();
        let resp = e.handle(&parse(&analyze_line(
            20,
            "analyze-delta",
            DELTA_EDIT,
            r#","prev":999"#,
        )));
        assert!(
            resp.contains("\"cache\":\"miss\""),
            "unknown seed must fall back to a cold full solve: {resp}"
        );
        let cold = e.handle(&parse(&analyze_line(21, "analyze", DELTA_EDIT, "")));
        assert_eq!(result_of(&resp), result_of(&cold));
    }

    #[test]
    fn analyze_delta_seed_config_mismatch_falls_back() {
        let e = engine();
        assert!(e
            .handle(&parse(&analyze_line(30, "analyze", DELTA_BASE, "")))
            .contains("\"cache\":\"miss\""));
        // Same prev id, different dep set: the seed must be rejected.
        let resp = e.handle(&parse(&format!(
            r#"{{"id":31,"kind":"analyze-delta","source":"{DELTA_EDIT}","ind":["x"],"dep":["t"],"solver":"region-parallel:2","prev":30}}"#
        )));
        assert!(
            resp.contains("\"cache\":\"miss\""),
            "config mismatch must not transplant: {resp}"
        );
    }

    #[test]
    fn demand_query_answers_from_a_slice_and_keys_separately() {
        let e = engine();
        // Warm the full-solve cache first: the demand request must NOT be
        // served from it (different key), and vice versa.
        let full = e.handle(&parse(&analyze_line(40, "analyze", DELTA_BASE, "")));
        assert!(full.contains("\"cache\":\"miss\""), "{full}");
        let demand = e.handle(&parse(&analyze_line(
            41,
            "analyze",
            DELTA_BASE,
            r#","at":0"#,
        )));
        assert!(
            demand.contains("\"cache\":\"miss\""),
            "demand must never alias the full-solve entry: {demand}"
        );
        assert!(demand.contains("\"mode\":\"demand\""), "{demand}");
        assert!(demand.contains("\"regions_total\":"), "{demand}");
        assert!(demand.contains("\"nodes_visited\":"), "{demand}");
        // Repeat hits the demand entry; full analyze still hits its own.
        let warm = e.handle(&parse(&analyze_line(
            42,
            "analyze",
            DELTA_BASE,
            r#","at":0"#,
        )));
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        assert!(e
            .handle(&parse(&analyze_line(43, "analyze", DELTA_BASE, "")))
            .contains("\"cache\":\"hit\""));
        // Out-of-range nodes are a structured error.
        let err = e.handle(&parse(&analyze_line(
            44,
            "analyze",
            DELTA_BASE,
            r#","at":100000"#,
        )));
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn single_sub_edit_reuses_all_other_proc_cfgs() {
        // The incremental-reuse acceptance criterion, on the real LU
        // benchmark: edit ONE subroutine (the paper's `rhs` driver context
        // keeps working), re-analyze, and every *other* procedure's CFG
        // must come from the cache even though the edit shifts every
        // following subroutine's statement ids.
        let e = engine();
        let lu = programs::source("lu").unwrap();
        let n_subs = {
            let ir = e.ir_for(lu).unwrap();
            ir.cfgs.len()
        };
        assert!(n_subs >= 3, "LU has several procedures: {n_subs}");
        let before = e.caches().cfgs.counters().snapshot();
        assert_eq!(before.insertions as usize, n_subs, "cold build stores all");

        // Edit the body of the FIRST subroutine in the file (worst case for
        // statement-id shifting: every later sub's ids move).
        let first_sub_at = lu.find("sub ").expect("lu has subs");
        let insert_at = lu[first_sub_at..].find('{').unwrap() + first_sub_at + 1;
        let edited = format!(
            "{} print(1.0); print(2.0); {}",
            &lu[..insert_at],
            &lu[insert_at..]
        );
        let ir2 = e.ir_for(&edited).unwrap();
        assert_eq!(ir2.cfgs.len(), n_subs);
        let after = e.caches().cfgs.counters().snapshot();
        assert_eq!(
            (after.hits - before.hits) as usize,
            n_subs - 1,
            "all but the edited procedure reuse their CFG"
        );
        assert_eq!(
            (after.insertions - before.insertions) as usize,
            1,
            "only the edited procedure re-lowers"
        );

        // The transplanted CFGs carry correctly rebased statement ids:
        // lowering from scratch must agree exactly.
        let fresh = ProgramIr::from_source(&edited).unwrap();
        for (a, b) in ir2.cfgs.iter().zip(fresh.cfgs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.num_nodes(), b.num_nodes());
            for (na, nb) in a.nodes.iter().zip(b.nodes.iter()) {
                assert_eq!(na.stmt, nb.stmt, "stmt ids rebased exactly in {}", a.name);
            }
        }
    }
}
