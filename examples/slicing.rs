//! Forward slicing across messages — the paper's Section 1 motivation.
//!
//! "If one attempts to take a forward slice to identify all statements
//! influenced by the assignment x = 0 in statement 1, using an analysis
//! framework that does not consider the SPMD nature of the program, an
//! erroneous result will be obtained."
//!
//! Run with: `cargo run --example slicing`

use mpi_dfa::analyses::slicing::forward_slice;
use mpi_dfa::prelude::*;

fn main() {
    let src = mpi_dfa::suite::programs::FIGURE1;
    let ir = ProgramIr::from_source(src).unwrap();

    // Pretty listing with statement ids for orientation.
    println!("Figure 1 statements:");
    let unit = compile(src).unwrap();
    for sub in &unit.program.subs {
        mpi_dfa::lang::ast::visit_stmts(&sub.body, &mut |s| {
            println!(
                "  {}: {}",
                s.id,
                mpi_dfa::lang::pretty::stmt_to_string(s)
                    .lines()
                    .next()
                    .unwrap_or("")
            );
        });
    }

    let seed = StmtId(0); // x = 0.0

    // Without communication edges: the wrong slice.
    let icfg = Icfg::build(ir.clone(), "main", 0).unwrap();
    let wrong = forward_slice(&icfg, &icfg, seed);
    println!("\nSlice from `x = 0` WITHOUT communication edges: {wrong:?}");
    println!("  (misses the receive and everything it feeds — the paper's erroneous result)");

    // Over the MPI-ICFG: the complete slice.
    let mpi = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
    let right = forward_slice(&mpi, mpi.icfg(), seed);
    println!("\nSlice from `x = 0` over the MPI-ICFG:           {right:?}");
    println!("  (includes recv(y), z = b*y, and the reduce — statements 9, 10, 12 in the");
    println!("   paper's numbering — because influence crosses the communication edge)");

    let gained: Vec<_> = right.difference(&wrong).collect();
    println!("\nStatements recovered by modeling message passing: {gained:?}");
}
