//! Consistent-hash request router for the sharded service (`mpidfa serve
//! --shards N`).
//!
//! The router is a second [`LineHandler`] behind the same socket loop as
//! the single-box worker, so clients keep speaking the exact protocol
//! they already speak — same banner, same verbs, same structured errors.
//! Per analysis request it
//!
//! * computes the **routing key** ([`crate::cache::routing_key`] — the
//!   content-addressed request identity minus cacheability), and walks a
//!   [`HashRing`] with virtual nodes so the same logical query always
//!   lands on the same shard (cache locality) and shard counts can
//!   change without remapping the whole key space;
//! * **forwards the request canonically re-rendered** over a pooled
//!   connection, stamped with its distributed-trace context (the
//!   client's, or one minted here) and the attempt counter — the
//!   worker's response (id included) passes through untouched, and
//!   since responses carry no trace or wall-clock fields, a routed
//!   response is byte-identical to a single-box response;
//! * **retries and hedges**: responses are idempotent by construction
//!   (no wall-clock fields, hit ≡ recompute), so a transport failure is
//!   retried once against the same shard (a supervisor restart
//!   republishes within the backoff cap) and then hedged to ring
//!   siblings;
//! * respects **brownouts**: a shard that answers `overloaded` is
//!   remembered for its `retry_after_ms` window and not hedged into
//!   again until the window passes; if every candidate is shed or down,
//!   the router degrades exactly like the admission ladder's terminal
//!   rung — one structured `overloaded` error carrying the **maximum**
//!   `retry_after_ms` seen, never a hang or a transport error.
//!
//! Control verbs never cross the ring: `ping` answers locally (the
//! router is the liveness surface now), `shutdown` drains the whole
//! cluster, and `cache-stats` aggregates every worker's stats plus
//! per-shard supervisor state and the router's own counters.

use crate::cache::routing_key;
use crate::json;
use crate::obs::{mint_trace_id, AccessRecord, TelemetryHub};
use crate::proto::{
    parse_request, render_err, render_ok, render_request, CacheStatus, ProtoError, Request,
    RequestKind, TraceCtx,
};
use crate::server::{LineHandler, Server, ServerConfig};
use crate::slo::{self, SloRegistry};
use crate::supervisor::{ShardTable, Supervisor, WorkerSpec};
use mpi_dfa_core::hash::Hasher128;
use mpi_dfa_core::telemetry::{self, ArgValue};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Virtual nodes per shard: enough that 3 shards split real key mixes
/// within a few percent of evenly, cheap enough to rebuild at startup.
const VNODES_PER_SHARD: usize = 128;

/// SplitMix64 finalizer: full-avalanche mixing for one 64-bit lane.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Spread a 128-bit content hash uniformly over the ring's key space.
/// FNV (the workspace's content hash) is collision-resistant enough for
/// cache keys but has weak high-bit avalanche on short inputs, and ring
/// ownership is decided by *ordering* — i.e. by the most significant
/// bits — so both ring points and lookup keys go through a real
/// finalizer first.
fn spread(key: u128) -> u128 {
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    let a = mix64(lo ^ hi.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15);
    let b = mix64(hi.wrapping_add(a));
    ((b as u128) << 64) | a as u128
}

/// Consistent hash ring over shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u128, usize)>,
    shards: usize,
}

impl HashRing {
    pub fn new(shards: usize) -> HashRing {
        assert!(shards > 0, "ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let mut h = Hasher128::new();
                h.write_str("ring")
                    .write_u64(shard as u64)
                    .write_u64(vnode as u64);
                points.push((spread(h.finish()), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`.
    pub fn primary(&self, key: u128) -> usize {
        let key = spread(key);
        let idx = self.points.partition_point(|(p, _)| *p < key) % self.points.len();
        self.points[idx].1
    }

    /// Every shard exactly once, in ring order starting at `key`'s
    /// successor: `order(k)[0]` is the primary, the rest are the hedging
    /// siblings in preference order.
    pub fn order(&self, key: u128) -> Vec<usize> {
        let key = spread(key);
        let start = self.points.partition_point(|(p, _)| *p < key);
        let mut seen = vec![false; self.shards];
        let mut out = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                out.push(shard);
                if out.len() == self.shards {
                    break;
                }
            }
        }
        out
    }
}

/// Router tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Socket limits of the public listener (same knobs as a worker's).
    pub server: ServerConfig,
    /// Per-attempt connect budget to a worker.
    pub dial_timeout: Duration,
    /// Per-attempt response-read budget. Generous on purpose: compute can
    /// be slow, while a SIGKILLed worker fails the read immediately (RST)
    /// rather than waiting this out.
    pub forward_timeout: Duration,
    /// Upper bound on forwarding attempts per request (primary, one
    /// same-shard retry, then siblings).
    pub max_attempts: usize,
    /// `retry_after_ms` hint when the router sheds without having seen a
    /// worker-supplied hint (e.g. every candidate down mid-restart).
    pub default_retry_after_ms: u64,
    /// Idle pooled connections kept per shard.
    pub pool_per_shard: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            server: ServerConfig::default(),
            dial_timeout: Duration::from_secs(1),
            forward_timeout: Duration::from_secs(60),
            max_attempts: 4,
            default_retry_after_ms: 100,
            pool_per_shard: 4,
        }
    }
}

/// Monotonic router counters (all rendered under `cache-stats`).
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Analysis requests that entered the forwarding path.
    pub routed_total: AtomicU64,
    /// Forwarding attempts actually dialed/written.
    pub attempts_total: AtomicU64,
    /// Second attempts against the same (primary) shard.
    pub retried_total: AtomicU64,
    /// Attempts against a non-primary sibling.
    pub hedged_total: AtomicU64,
    /// Candidates skipped because their brownout window was open.
    pub brownout_skips_total: AtomicU64,
    /// Requests the router itself answered `overloaded` after exhausting
    /// candidates that shed.
    pub overloaded_returned_total: AtomicU64,
    /// Requests the router answered `overloaded` with every candidate
    /// down (transport failure, no shed seen).
    pub down_returned_total: AtomicU64,
}

/// Plain-number view of [`RouterStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    pub routed_total: u64,
    pub attempts_total: u64,
    pub retried_total: u64,
    pub hedged_total: u64,
    pub brownout_skips_total: u64,
    pub overloaded_returned_total: u64,
    pub down_returned_total: u64,
}

impl RouterStats {
    fn bump(counter: &AtomicU64, metric: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if telemetry::is_enabled() {
            telemetry::metric_add(metric, 1.0);
        }
    }

    pub fn snapshot(&self) -> RouterStatsSnapshot {
        RouterStatsSnapshot {
            routed_total: self.routed_total.load(Ordering::Relaxed),
            attempts_total: self.attempts_total.load(Ordering::Relaxed),
            retried_total: self.retried_total.load(Ordering::Relaxed),
            hedged_total: self.hedged_total.load(Ordering::Relaxed),
            brownout_skips_total: self.brownout_skips_total.load(Ordering::Relaxed),
            overloaded_returned_total: self.overloaded_returned_total.load(Ordering::Relaxed),
            down_returned_total: self.down_returned_total.load(Ordering::Relaxed),
        }
    }
}

/// Per-shard shed memory: a shard that answered `overloaded` is not a
/// hedging candidate until its own `retry_after_ms` window has passed
/// (satellite rule: never bounce a shed request into a sibling that is
/// also past its watermark we *know* about).
#[derive(Debug)]
struct Brownout {
    slots: Vec<Mutex<Option<(Instant, u64)>>>,
}

impl Brownout {
    fn new(shards: usize) -> Brownout {
        Brownout {
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn mark(&self, shard: usize, hint_ms: u64) {
        *self.slots[shard].lock().unwrap() =
            Some((Instant::now() + Duration::from_millis(hint_ms), hint_ms));
    }

    /// The shard's hint if its window is still open.
    fn active_hint(&self, shard: usize) -> Option<u64> {
        let mut slot = self.slots[shard].lock().unwrap();
        match *slot {
            Some((until, hint)) if Instant::now() < until => Some(hint),
            Some(_) => {
                *slot = None;
                None
            }
            None => None,
        }
    }

    fn clear(&self, shard: usize) {
        *self.slots[shard].lock().unwrap() = None;
    }
}

#[derive(Debug)]
struct PooledConn {
    epoch: u64,
    reader: BufReader<TcpStream>,
}

/// The routing [`LineHandler`]: one per cluster, shared by every
/// listener connection thread.
pub struct RouterHandler {
    table: Arc<ShardTable>,
    ring: HashRing,
    cfg: RouterConfig,
    stats: RouterStats,
    brownout: Brownout,
    pools: Vec<Mutex<Vec<PooledConn>>>,
    /// End-to-end request latency, attributed to the shard that answered.
    slo: SloRegistry,
    /// Cluster observability aggregation point (access log, span store,
    /// worker metric reports). `None` in bare in-process setups.
    hub: Option<Arc<TelemetryHub>>,
}

impl std::fmt::Debug for RouterHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandler")
            .field("shards", &self.table.len())
            .field("hub", &self.hub.is_some())
            .finish()
    }
}

impl RouterHandler {
    pub fn new(table: Arc<ShardTable>, cfg: RouterConfig) -> Arc<RouterHandler> {
        Self::new_with_hub(table, cfg, None)
    }

    /// [`RouterHandler::new`] plus the cluster observability hub.
    pub fn new_with_hub(
        table: Arc<ShardTable>,
        cfg: RouterConfig,
        hub: Option<Arc<TelemetryHub>>,
    ) -> Arc<RouterHandler> {
        let shards = table.len();
        Arc::new(RouterHandler {
            table,
            ring: HashRing::new(shards),
            cfg,
            stats: RouterStats::default(),
            brownout: Brownout::new(shards),
            pools: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            slo: SloRegistry::new(),
            hub,
        })
    }

    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The router's end-to-end latency registry.
    pub fn slo(&self) -> &SloRegistry {
        &self.slo
    }

    /// The observability hub, when configured.
    pub fn hub(&self) -> Option<&Arc<TelemetryHub>> {
        self.hub.as_ref()
    }

    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard that owns this raw request line, `None` for control
    /// verbs and unparsable lines. Fault-injection harnesses use this to
    /// aim a kill at exactly the shard a request routes to.
    pub fn shard_for_line(&self, line: &str) -> Option<usize> {
        let req = parse_request(line).ok()?;
        match req.kind {
            RequestKind::Ping
            | RequestKind::Shutdown
            | RequestKind::CacheStats
            | RequestKind::Metrics => None,
            _ => Some(self.ring.primary(routing_key(&req))),
        }
    }

    /// One forwarding attempt; `Ok` carries the response and the worker
    /// incarnation epoch that answered. `use_pool` is only true for the
    /// very first attempt of a request: every retry dials fresh so a
    /// stale pooled connection can never burn two attempts.
    fn try_shard(&self, shard: usize, raw_line: &str, use_pool: bool) -> Result<(String, u64), ()> {
        let (addr, epoch) = self.table.endpoint(shard).ok_or(())?;
        let mut conn = None;
        if use_pool {
            let mut pool = self.pools[shard].lock().unwrap();
            while let Some(c) = pool.pop() {
                if c.epoch == epoch {
                    conn = Some(c);
                    break;
                }
                // Older incarnation: drop it and keep looking.
            }
        }
        let mut conn = match conn {
            Some(c) => c,
            None => PooledConn {
                epoch,
                reader: self.dial(addr)?,
            },
        };
        if writeln!(conn.reader.get_mut(), "{raw_line}").is_err() {
            return Err(());
        }
        let mut resp = String::new();
        match conn.reader.read_line(&mut resp) {
            Ok(n) if n > 0 => {
                let epoch = conn.epoch;
                let mut pool = self.pools[shard].lock().unwrap();
                if pool.len() < self.cfg.pool_per_shard {
                    pool.push(conn);
                }
                Ok((resp.trim_end_matches(['\n', '\r']).to_string(), epoch))
            }
            _ => Err(()),
        }
    }

    fn dial(&self, addr: SocketAddr) -> Result<BufReader<TcpStream>, ()> {
        let stream = TcpStream::connect_timeout(&addr, self.cfg.dial_timeout).map_err(|_| ())?;
        stream
            .set_read_timeout(Some(self.cfg.forward_timeout))
            .map_err(|_| ())?;
        stream
            .set_write_timeout(Some(self.cfg.dial_timeout))
            .map_err(|_| ())?;
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }

    /// Route one analysis request; always returns a structured line.
    /// Every forwarded request belongs to exactly one distributed trace —
    /// the client's, or one minted here — and produces exactly one
    /// access-log line (when a hub is configured), however many attempts
    /// it took.
    fn forward(&self, req: &Request) -> String {
        RouterStats::bump(&self.stats.routed_total, "router_requests_total");
        let started = Instant::now();
        let client = req.trace;
        let trace_id = client.map(|t| t.id).unwrap_or_else(mint_trace_id);
        let ctx = telemetry::TraceContext {
            trace_id,
            parent_span: client.map(|t| t.parent).unwrap_or(0),
        };
        let (resp, answered, attempts_used) = telemetry::with_trace(Some(ctx), || {
            let mut span = telemetry::span("router", "route");
            span.arg("kind", req.kind.as_str());
            // With the router sink off the route span has no id; fall
            // back to the client's own parent so the worker's spans still
            // link into the client's trace.
            let route_id = span
                .id()
                .unwrap_or_else(|| client.map(|t| t.parent).unwrap_or(0));
            let out = self.forward_attempts(
                req,
                trace_id,
                route_id,
                client.map(|t| t.attempt).unwrap_or(0),
            );
            span.arg("attempts", out.2);
            if let Some((shard, _)) = out.1 {
                span.arg("shard", shard);
            }
            out
        });
        let latency_us = started.elapsed().as_micros() as u64;
        let cache = slo::cache_outcome(&resp);
        let shard_label = answered
            .map(|(s, _)| s.to_string())
            .unwrap_or_else(|| "-".to_string());
        self.slo
            .record(req.kind.as_str(), cache, &shard_label, latency_us);
        if let Some(hub) = &self.hub {
            hub.record_access(&AccessRecord {
                trace: trace_id,
                verb: req.kind.as_str().to_string(),
                shard: answered.map(|(s, _)| s as u64),
                epoch: answered.map(|(_, e)| e).unwrap_or(0),
                attempts: attempts_used,
                cache: cache.to_string(),
                tier: slo::tier_of(&resp).to_string(),
                latency_us,
            });
        }
        resp
    }

    /// The attempt loop behind [`RouterHandler::forward`]. Returns the
    /// response line, the `(shard, epoch)` that answered it (`None` for a
    /// router-degraded answer), and the attempts actually dialed.
    fn forward_attempts(
        &self,
        req: &Request,
        trace_id: u128,
        route_id: u64,
        base_attempt: u64,
    ) -> (String, Option<(usize, u64)>, u64) {
        let order = self.ring.order(routing_key(req));
        // Attempt plan: primary, primary again (a crashed worker is
        // usually republished within the backoff cap, and a stale pooled
        // connection must not consume the only try), then each sibling.
        let mut plan = Vec::with_capacity(order.len() + 1);
        plan.push(order[0]);
        plan.push(order[0]);
        plan.extend(order[1..].iter().copied());
        plan.truncate(self.cfg.max_attempts.max(1));

        let mut treq = req.clone();
        let mut attempts_used: u64 = 0;
        let mut max_hint: Option<u64> = None;
        let mut saw_shed = false;
        for (i, &shard) in plan.iter().enumerate() {
            if let Some(hint) = self.brownout.active_hint(shard) {
                saw_shed = true;
                max_hint = max_hint.max(Some(hint));
                RouterStats::bump(
                    &self.stats.brownout_skips_total,
                    "router_brownout_skips_total",
                );
                telemetry::instant(
                    "router",
                    "brownout_wait",
                    vec![
                        ("shard", ArgValue::U64(shard as u64)),
                        ("retry_after_ms", ArgValue::U64(hint)),
                    ],
                );
                continue;
            }
            RouterStats::bump(&self.stats.attempts_total, "router_attempts_total");
            attempts_used += 1;
            let mut attempt_span = if i == 0 {
                telemetry::SpanGuard::disabled()
            } else if shard == plan[0] {
                RouterStats::bump(&self.stats.retried_total, "router_retried_total");
                telemetry::span("router", "retry")
            } else {
                RouterStats::bump(&self.stats.hedged_total, "router_hedged_total");
                telemetry::span("router", "hedge")
            };
            if i > 0 {
                attempt_span.arg("shard", shard);
            }
            // The forwarded line is the request canonically re-rendered
            // with this attempt's trace context; hedged retries keep the
            // trace id and bump the attempt counter.
            treq.trace = Some(TraceCtx {
                id: trace_id,
                parent: route_id,
                attempt: base_attempt + attempts_used,
            });
            let line = render_request(&treq);
            match self.try_shard(shard, &line, i == 0) {
                Err(()) => continue,
                Ok((resp, epoch)) => match shed_hint(&resp, self.cfg.default_retry_after_ms) {
                    Some(hint) => {
                        self.brownout.mark(shard, hint);
                        saw_shed = true;
                        max_hint = max_hint.max(Some(hint));
                        continue;
                    }
                    // Any other response — success or a deterministic
                    // structured error — is the answer; a sibling would
                    // compute the identical one.
                    None => {
                        self.brownout.clear(shard);
                        return (resp, Some((shard, epoch)), attempts_used);
                    }
                },
            }
        }
        // Out of candidates. Degrade exactly like the admission ladder's
        // terminal rung: a structured overloaded shed with the largest
        // retry hint any shard gave us.
        let (metric, msg) = if saw_shed {
            RouterStats::bump(
                &self.stats.overloaded_returned_total,
                "router_overloaded_total",
            );
            (
                "overloaded",
                "every shard at max in-flight requests; retry later",
            )
        } else {
            RouterStats::bump(&self.stats.down_returned_total, "router_down_total");
            (
                "overloaded",
                "no shard available (workers restarting); retry later",
            )
        };
        let hint = max_hint.unwrap_or(self.cfg.default_retry_after_ms);
        (
            render_err(req.id, &ProtoError::new(metric, msg).with_retry_after(hint)),
            None,
            attempts_used,
        )
    }

    /// The router's own metric map: its telemetry counters (empty when
    /// the sink is off) with the `router_*_total` series overwritten from
    /// the always-on [`RouterStats`] — the counters must appear in the
    /// scrape regardless of sink state, and overwriting avoids double
    /// counting when the sink mirrored them already.
    fn local_metrics(&self) -> std::collections::BTreeMap<String, f64> {
        let mut local = telemetry::snapshot().metrics;
        let r = self.stats.snapshot();
        for (name, v) in [
            ("router_requests_total", r.routed_total),
            ("router_attempts_total", r.attempts_total),
            ("router_retried_total", r.retried_total),
            ("router_hedged_total", r.hedged_total),
            ("router_brownout_skips_total", r.brownout_skips_total),
            ("router_overloaded_total", r.overloaded_returned_total),
            ("router_down_total", r.down_returned_total),
        ] {
            local.insert(name.to_string(), v as f64);
        }
        local
    }

    /// The cluster Prometheus text: every worker's streamed counters and
    /// latency histograms merged order-independently (sums; `_peak`
    /// maxima; histogram bucket adds) with the router's own. This is the
    /// body of the `metrics` verb and what `mpidfa serve --metrics-out`
    /// writes at shutdown.
    pub fn cluster_metrics_text(&self) -> String {
        let local = self.local_metrics();
        let slo_snap = self.slo.snapshot();
        match &self.hub {
            Some(hub) => hub.cluster_metrics(&local, &slo_snap),
            None => {
                let mut t = telemetry::export_metrics_text(&local);
                slo::render_prometheus_named(slo::E2E_METRIC, &slo_snap, &mut t);
                t
            }
        }
    }

    /// The cluster `metrics` verb: [`Self::cluster_metrics_text`] inside
    /// the structured response envelope.
    fn cluster_metrics_verb(&self, id: u64) -> String {
        let text = self.cluster_metrics_text();
        let result = format!(
            "{{\"cluster\":{{\"shards\":{}}},\"prometheus\":\"{}\"}}",
            self.table.len(),
            json::escape(&text)
        );
        render_ok(id, RequestKind::Metrics, CacheStatus::Bypass, &result)
    }

    /// Aggregate `cache-stats`: router counters + per-shard supervisor
    /// state + each live worker's own stats object.
    fn cluster_stats(&self, id: u64) -> String {
        let r = self.stats.snapshot();
        let router = format!(
            "{{\"routed_total\":{},\"attempts_total\":{},\"retried_total\":{},\
             \"hedged_total\":{},\"brownout_skips_total\":{},\
             \"overloaded_returned_total\":{},\"down_returned_total\":{}}}",
            r.routed_total,
            r.attempts_total,
            r.retried_total,
            r.hedged_total,
            r.brownout_skips_total,
            r.overloaded_returned_total,
            r.down_returned_total
        );
        let supervisor = self
            .table
            .snapshots()
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"alive\":{},\"epoch\":{},\"restarts\":{},\
                     \"last_backoff_ms\":{},\"ping_age_ms\":{},\"health_kills\":{},\
                     \"spawn_failures\":{}}}",
                    s.shard,
                    s.alive,
                    s.epoch,
                    s.restarts,
                    s.last_backoff_ms,
                    s.ping_age_ms
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "null".into()),
                    s.health_kills,
                    s.spawn_failures
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let workers = (0..self.table.len())
            .map(
                |shard| match self.try_shard(shard, "{\"id\":0,\"kind\":\"cache-stats\"}", true) {
                    Err(()) => "null".to_string(),
                    Ok((resp, _)) => json::parse(&resp)
                        .ok()
                        .and_then(|j| j.get("result").map(|r| r.render()))
                        .unwrap_or_else(|| "null".to_string()),
                },
            )
            .collect::<Vec<_>>()
            .join(",");
        let result = format!(
            "{{\"cluster\":{{\"shards\":{},\"router\":{router},\
             \"supervisor\":[{supervisor}]}},\"workers\":[{workers}]}}",
            self.table.len()
        );
        render_ok(id, RequestKind::CacheStats, CacheStatus::Bypass, &result)
    }
}

impl LineHandler for RouterHandler {
    fn answer(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Err(e) => (render_err(0, &e), false),
            Ok(req) => match req.kind {
                // Local verbs render the exact bytes a worker would, so a
                // client cannot tell a cluster from a single box.
                RequestKind::Ping => (
                    render_ok(req.id, req.kind, CacheStatus::Bypass, "{\"pong\":true}"),
                    false,
                ),
                RequestKind::Shutdown => (
                    render_ok(req.id, req.kind, CacheStatus::Bypass, "{\"stopping\":true}"),
                    true,
                ),
                RequestKind::CacheStats => (self.cluster_stats(req.id), false),
                RequestKind::Metrics => (self.cluster_metrics_verb(req.id), false),
                _ => (self.forward(&req), false),
            },
        }
    }

    fn connection_overloaded(&self, max_connections: usize) -> String {
        let e = ProtoError::new(
            "overloaded",
            format!("connection limit {max_connections} reached; retry later"),
        )
        .with_retry_after(self.cfg.default_retry_after_ms);
        render_err(0, &e)
    }
}

/// Is this response a shed we should route around? Returns the shard's
/// retry hint if so.
fn shed_hint(resp: &str, default_ms: u64) -> Option<u64> {
    if !resp.contains("\"ok\":false") || !resp.contains("\"overloaded\"") {
        return None;
    }
    let parsed = json::parse(resp).ok()?;
    let error = parsed.get("error")?;
    if error.get("code")?.as_str()? != "overloaded" {
        return None;
    }
    Some(
        error
            .get("retry_after_ms")
            .and_then(|v| v.as_u64())
            .unwrap_or(default_ms),
    )
}

/// Everything `mpidfa serve --shards N` needs to stand up a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub shards: usize,
    /// How to (re)spawn one worker; the supervisor appends
    /// `--shard-id I --addr 127.0.0.1:0`.
    pub worker: WorkerSpec,
    pub router: RouterConfig,
    /// How long `Cluster::start` waits for the fleet before serving.
    /// Partial fleets serve anyway (the router hedges around holes);
    /// only a fully-absent fleet is a startup error.
    pub startup_timeout: Duration,
}

impl ClusterConfig {
    pub fn new(shards: usize, worker: WorkerSpec) -> ClusterConfig {
        ClusterConfig {
            shards,
            worker,
            router: RouterConfig::default(),
            startup_timeout: Duration::from_secs(15),
        }
    }
}

/// A running cluster: supervised worker fleet + bound (not yet serving)
/// router listener.
#[derive(Debug)]
pub struct Cluster {
    server: Server<RouterHandler>,
    supervisor: Arc<Supervisor>,
    handler: Arc<RouterHandler>,
}

impl Cluster {
    /// Spawn the fleet, wait for it (see
    /// [`ClusterConfig::startup_timeout`]), bind the router.
    pub fn start(cfg: ClusterConfig, addr: &str) -> Result<Cluster, String> {
        Self::start_with_hub(cfg, addr, None)
    }

    /// [`Cluster::start`] with a cluster observability hub: the
    /// supervisor forwards worker telemetry-stream lines into it and the
    /// router records spans, access-log lines, and the merged `metrics`
    /// verb through it.
    pub fn start_with_hub(
        cfg: ClusterConfig,
        addr: &str,
        hub: Option<Arc<TelemetryHub>>,
    ) -> Result<Cluster, String> {
        let supervisor = Supervisor::start_with_hub(cfg.shards, cfg.worker, hub.clone())?;
        if !supervisor.wait_all_healthy(cfg.startup_timeout) {
            let alive = supervisor
                .table()
                .snapshots()
                .iter()
                .filter(|s| s.alive)
                .count();
            if alive == 0 {
                supervisor.stop();
                return Err(format!(
                    "no worker came up within {:?}",
                    cfg.startup_timeout
                ));
            }
            eprintln!(
                "[cluster] serving with {alive}/{} shards up; supervisor keeps restarting the rest",
                cfg.shards
            );
        }
        let handler = RouterHandler::new_with_hub(Arc::clone(supervisor.table()), cfg.router, hub);
        let server = Server::bind_handler(Arc::clone(&handler), addr, cfg.router.server)?;
        Ok(Cluster {
            server,
            supervisor,
            handler,
        })
    }

    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.server.local_addr()
    }

    pub fn supervisor(&self) -> Arc<Supervisor> {
        Arc::clone(&self.supervisor)
    }

    pub fn router(&self) -> Arc<RouterHandler> {
        Arc::clone(&self.handler)
    }

    /// Serve until a client sends `shutdown`, then stop the fleet
    /// (graceful drain per worker, SIGKILL stragglers).
    pub fn run(self) -> Result<(), String> {
        let supervisor = Arc::clone(&self.supervisor);
        let result = self.server.run();
        supervisor.stop();
        result
    }
}

/// Bind, announce `listening on ADDR` (the exact single-box banner), and
/// serve the cluster until shutdown.
pub fn serve_cluster(cfg: ClusterConfig, addr: &str) -> Result<(), String> {
    let cluster = Cluster::start(cfg, addr)?;
    let bound = cluster.local_addr()?;
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    cluster.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::engine::{Engine, EngineConfig};
    use std::io::{BufRead, BufReader};

    const ANALYZE: &str =
        r#"{"id":7,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#;

    fn start_worker(
        admission: AdmissionConfig,
    ) -> (
        SocketAddr,
        Arc<Engine>,
        std::thread::JoinHandle<Result<(), String>>,
    ) {
        let engine = Arc::new(
            Engine::new(EngineConfig {
                admission,
                ..Default::default()
            })
            .unwrap(),
        );
        let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        (addr, engine, handle)
    }

    fn stop_worker(addr: SocketAddr) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = writeln!(s, "{{\"id\":0,\"kind\":\"shutdown\"}}");
            let mut line = String::new();
            let _ = BufReader::new(s).read_line(&mut line);
        }
    }

    fn direct(addr: SocketAddr, line: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        writeln!(s, "{line}").unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    }

    #[test]
    fn ring_orders_every_shard_exactly_once_and_spreads_keys() {
        let ring = HashRing::new(3);
        let mut hits = [0usize; 3];
        for i in 0..300u64 {
            let mut h = Hasher128::new();
            h.write_str("key").write_u64(i);
            let order = ring.order(h.finish());
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            hits[order[0]] += 1;
        }
        // Virtual nodes keep the split roughly even; the exact split is
        // deterministic, this guards against a degenerate ring.
        for (shard, &n) in hits.iter().enumerate() {
            assert!(n > 30, "shard {shard} owns only {n}/300 keys");
        }
        // Same key, same order, every time.
        assert_eq!(ring.order(42), ring.order(42));
    }

    #[test]
    fn routed_response_is_byte_identical_to_direct_worker_response() {
        let (a0, _, h0) = start_worker(AdmissionConfig::default());
        let (a1, _, h1) = start_worker(AdmissionConfig::default());
        let table = ShardTable::fixed(&[Some(a0), Some(a1)]);
        let router = RouterHandler::new(table, RouterConfig::default());

        let (via_router, _) = router.answer(ANALYZE);
        // The worker that did NOT serve it computes the same answer (its
        // label is "miss" too since both started cold).
        let shard = router.shard_for_line(ANALYZE).unwrap();
        let other = if shard == 0 { a1 } else { a0 };
        let via_direct = direct(other, ANALYZE);
        assert_eq!(via_router, via_direct);
        assert_eq!(router.stats().snapshot().routed_total, 1);
        assert_eq!(router.stats().snapshot().hedged_total, 0);

        stop_worker(a0);
        stop_worker(a1);
        h0.join().unwrap().unwrap();
        h1.join().unwrap().unwrap();
    }

    #[test]
    fn down_primary_is_hedged_to_the_sibling() {
        let (a0, _, h0) = start_worker(AdmissionConfig::default());
        let (a1, _, h1) = start_worker(AdmissionConfig::default());
        let table = ShardTable::fixed(&[Some(a0), Some(a1)]);
        let router = RouterHandler::new(Arc::clone(&table), RouterConfig::default());

        let primary = router.shard_for_line(ANALYZE).unwrap();
        table.test_mark_down(primary);
        let (resp, _) = router.answer(ANALYZE);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(router.stats().snapshot().hedged_total >= 1);

        stop_worker(a0);
        stop_worker(a1);
        h0.join().unwrap().unwrap();
        h1.join().unwrap().unwrap();
    }

    #[test]
    fn all_shards_down_degrades_to_structured_overloaded() {
        // Addresses nobody listens on.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let table = ShardTable::fixed(&[Some(dead)]);
        let router = RouterHandler::new(
            table,
            RouterConfig {
                dial_timeout: Duration::from_millis(200),
                default_retry_after_ms: 33,
                ..Default::default()
            },
        );
        let (resp, _) = router.answer(ANALYZE);
        assert!(resp.contains("\"code\":\"overloaded\""), "{resp}");
        assert!(resp.contains("\"retry_after_ms\":33"), "{resp}");
        assert!(resp.contains("\"id\":7"), "{resp}");
        assert_eq!(router.stats().snapshot().down_returned_total, 1);
    }

    #[test]
    fn shed_from_both_shards_returns_the_max_retry_hint_and_brownout_sticks() {
        // Two workers with a single admission slot each and distinct
        // retry hints; both slots held ⇒ both shed.
        let mk = |retry: u64| AdmissionConfig {
            max_inflight: 1,
            t1_watermark: 1,
            t2_watermark: 1,
            hysteresis: 1,
            retry_after_ms: retry,
        };
        let (a0, e0, h0) = start_worker(mk(40));
        let (a1, e1, h1) = start_worker(mk(90));
        let table = ShardTable::fixed(&[Some(a0), Some(a1)]);
        let router = RouterHandler::new(table, RouterConfig::default());

        let p0 = e0.admission().try_admit().unwrap();
        let p1 = e1.admission().try_admit().unwrap();
        let (resp, _) = router.answer(ANALYZE);
        assert!(resp.contains("\"code\":\"overloaded\""), "{resp}");
        // Satellite rule: the max of every hint seen, not the first.
        assert!(resp.contains("\"retry_after_ms\":90"), "{resp}");
        assert_eq!(router.stats().snapshot().overloaded_returned_total, 1);

        // Within the windows both shards are browned out: the next
        // request must not even be hedged into them.
        let attempts_before = router.stats().snapshot().attempts_total;
        let (resp2, _) = router.answer(ANALYZE);
        assert!(resp2.contains("\"code\":\"overloaded\""), "{resp2}");
        assert_eq!(router.stats().snapshot().attempts_total, attempts_before);
        assert!(router.stats().snapshot().brownout_skips_total >= 2);

        // Release the slots and outlive the longest window: served again.
        drop(p0);
        drop(p1);
        std::thread::sleep(Duration::from_millis(120));
        let (resp3, _) = router.answer(ANALYZE);
        assert!(resp3.contains("\"ok\":true"), "{resp3}");

        stop_worker(a0);
        stop_worker(a1);
        h0.join().unwrap().unwrap();
        h1.join().unwrap().unwrap();
    }

    #[test]
    fn control_verbs_answer_locally_and_stats_aggregate() {
        let (a0, _, h0) = start_worker(AdmissionConfig::default());
        let table = ShardTable::fixed(&[Some(a0)]);
        let router = RouterHandler::new(table, RouterConfig::default());

        let (pong, stop) = router.answer(r#"{"id":3,"kind":"ping"}"#);
        assert_eq!(pong, "{\"id\":3,\"ok\":true,\"kind\":\"ping\",\"cache\":\"bypass\",\"result\":{\"pong\":true}}");
        assert!(!stop);

        let (stats, _) = router.answer(r#"{"id":4,"kind":"cache-stats"}"#);
        let parsed = json::parse(&stats).unwrap();
        let cluster = parsed.get("result").unwrap().get("cluster").unwrap();
        assert_eq!(cluster.get("shards").unwrap().as_u64(), Some(1));
        assert!(cluster.get("router").unwrap().get("routed_total").is_some());
        let sup = cluster.get("supervisor").unwrap().as_array().unwrap();
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].get("alive").unwrap().as_bool(), Some(true));
        // The worker's own stats object is embedded (its shard field is
        // null here because these test workers were not started with
        // --shard-id).
        let workers = parsed.get("result").unwrap().get("workers").unwrap();
        assert!(workers.as_array().unwrap()[0].get("admission").is_some());

        let (_, stop) = router.answer(r#"{"id":5,"kind":"shutdown"}"#);
        assert!(stop);

        stop_worker(a0);
        h0.join().unwrap().unwrap();
    }
}
