//! Trust (taint) analysis over the MPI-ICFG.
//!
//! The paper's second example client (Sections 2 and 5.2): trust analysis
//! marks data from untrusted sources and reports where it reaches sensitive
//! sinks. For MPI programs the conservative treatment makes *every* received
//! value untrusted (the global-buffer assumption: "the global variable
//! modeling communication between sends and receives is untrusted"); over
//! the MPI-ICFG a receive is only tainted when some matching send actually
//! transmits tainted data.

use crate::interproc::{call_forward, return_forward, BindMaps, UseSelector};
use mpi_dfa_core::graph::{Edge, EdgeKind, FlowGraph, NodeId};
use mpi_dfa_core::lattice::BoolOr;
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{Solution, Solver};
use mpi_dfa_core::varset::VarSet;
use mpi_dfa_graph::icfg::Icfg;
use mpi_dfa_graph::loc::{Loc, LocTable};
use mpi_dfa_graph::mpi::MpiIcfg;
use mpi_dfa_graph::node::{MpiKind, NodeKind};

/// How communication affects taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintMode {
    /// All receives produce untrusted data (conservative ICFG treatment).
    AllReceivesUntrusted,
    /// Taint crosses only the matched communication edges.
    MpiIcfg,
}

/// Taint sources.
#[derive(Debug, Clone, Default)]
pub struct TaintConfig {
    /// Variables untrusted from the start (resolved in context scope).
    pub tainted_vars: Vec<String>,
    /// Treat `read(...)` targets as untrusted external input.
    pub reads_are_tainted: bool,
}

/// Result: tainted locations at every point plus the summary set.
#[derive(Debug)]
pub struct TaintResult {
    pub solution: Solution<VarSet>,
    /// Locations tainted at some program point.
    pub ever_tainted: VarSet,
}

impl TaintResult {
    pub fn tainted_locs(&self) -> Vec<Loc> {
        self.ever_tainted.iter().map(|i| Loc(i as u32)).collect()
    }
}

struct Taint<'g> {
    icfg: &'g Icfg,
    maps: BindMaps,
    mode: TaintMode,
    seed: VarSet,
    reads_tainted: bool,
}

impl Dataflow for Taint<'_> {
    type Fact = VarSet;
    type CommFact = BoolOr;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> VarSet {
        VarSet::empty(self.seed.universe())
    }

    fn boundary(&self) -> VarSet {
        self.seed.clone()
    }

    fn meet_into(&self, dst: &mut VarSet, src: &VarSet) -> bool {
        dst.union_into(src)
    }

    fn transfer(&self, node: NodeId, input: &VarSet, comm: &[BoolOr]) -> VarSet {
        let mut out = input.clone();
        match &self.icfg.payload(node).kind {
            NodeKind::Assign { lhs, rhs } => {
                // Taint flows through every use, including subscripts.
                let tainted = UseSelector::All.reads_from(rhs, input)
                    || lhs.index_uses.iter().any(|l| input.contains(l.index()));
                if tainted {
                    out.insert(lhs.loc.index());
                } else if lhs.is_strong_def() {
                    out.remove(lhs.loc.index());
                }
            }
            NodeKind::Read { target } => {
                if self.reads_tainted {
                    out.insert(target.loc.index());
                } else if target.is_strong_def() {
                    out.remove(target.loc.index());
                }
            }
            NodeKind::Mpi(m) if m.kind.receives_data() => {
                // Receives always carry a buffer; a malformed node writes
                // nothing and transfers as the identity (it cannot launder
                // taint because it cannot kill anything either).
                let Some(buf) = m.buf.as_ref() else {
                    return out;
                };
                let arriving = match self.mode {
                    TaintMode::AllReceivesUntrusted => true,
                    TaintMode::MpiIcfg => comm.iter().any(|b| b.0),
                };
                match m.kind {
                    MpiKind::Recv | MpiKind::Irecv | MpiKind::Allreduce => {
                        if arriving {
                            out.insert(buf.loc.index());
                        } else if buf.is_strong_def() {
                            out.remove(buf.loc.index());
                        }
                    }
                    _ => {
                        if arriving {
                            out.insert(buf.loc.index());
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn comm_transfer(&self, node: NodeId, input: &VarSet) -> BoolOr {
        match &self.icfg.payload(node).kind {
            // A malformed send missing its payload is treated as tainted
            // (`true`): over-approximating keeps the analysis sound.
            NodeKind::Mpi(m) if m.kind.sends_data() => BoolOr(match m.kind {
                MpiKind::Reduce | MpiKind::Allreduce => m
                    .value
                    .as_ref()
                    .is_none_or(|v| UseSelector::All.reads_from(v, input)),
                _ => m
                    .buf
                    .as_ref()
                    .is_none_or(|buf| input.contains(buf.loc.index())),
            }),
            _ => BoolOr(false),
        }
    }

    fn translate(&self, edge: &Edge, fact: &VarSet) -> Option<VarSet> {
        match edge.kind {
            EdgeKind::Call { site } => Some(call_forward(
                self.icfg,
                &self.maps,
                site,
                fact,
                UseSelector::All,
            )),
            EdgeKind::Return { site } => Some(return_forward(self.icfg, &self.maps, site, fact)),
            _ => None,
        }
    }
}

/// Run trust analysis.
pub fn analyze<G: FlowGraph + Sync>(
    graph: &G,
    icfg: &Icfg,
    mode: TaintMode,
    config: &TaintConfig,
) -> Result<TaintResult, String> {
    let universe = icfg.ir.locs.len();
    let mut seed = VarSet::empty(universe);
    for name in &config.tainted_vars {
        let loc = icfg
            .ir
            .locs
            .resolve(icfg.context, name)
            .ok_or_else(|| format!("unknown variable `{name}` in context routine"))?;
        seed.insert(loc.index());
    }
    let problem = Taint {
        icfg,
        maps: BindMaps::build(icfg),
        mode,
        seed,
        reads_tainted: config.reads_are_tainted,
    };
    let solution = Solver::new(&problem, graph).run();
    let mut ever = VarSet::empty(universe);
    for n in 0..graph.num_nodes() {
        ever.union_into(&solution.output[n]);
    }
    ever.remove(LocTable::MPI_BUFFER.index());
    Ok(TaintResult {
        solution,
        ever_tainted: ever,
    })
}

/// Convenience: run over the MPI-ICFG in precise mode.
pub fn analyze_mpi(mpi: &MpiIcfg, config: &TaintConfig) -> Result<TaintResult, String> {
    analyze(mpi, mpi.icfg(), TaintMode::MpiIcfg, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_graph::icfg::ProgramIr;
    use mpi_dfa_graph::mpi::SyntacticConsts;

    fn names(icfg: &Icfg, r: &TaintResult) -> Vec<String> {
        r.tainted_locs()
            .iter()
            .map(|&l| icfg.ir.locs.info(l).name.clone())
            .collect()
    }

    const TWO_CHANNELS: &str = "program p\n\
        global evil: real; global pure: real;\n\
        global a: real; global b: real; global sink: real;\n\
        sub main() {\n\
          if (rank() == 0) { send(evil, 1, 1); send(pure, 1, 2); }\n\
          else { recv(a, 0, 1); recv(b, 0, 2); }\n\
          sink = b * 2.0;\n\
        }";

    #[test]
    fn conservative_mode_taints_every_receive() {
        let ir = ProgramIr::from_source(TWO_CHANNELS).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let cfg = TaintConfig {
            tainted_vars: vec!["evil".into()],
            reads_are_tainted: false,
        };
        let r = analyze(&icfg, &icfg, TaintMode::AllReceivesUntrusted, &cfg).unwrap();
        let t = names(&icfg, &r);
        assert!(t.contains(&"a".to_string()));
        assert!(
            t.contains(&"b".to_string()),
            "conservatively tainted: {t:?}"
        );
        assert!(t.contains(&"sink".to_string()));
    }

    #[test]
    fn mpi_icfg_separates_trusted_channel() {
        let ir = ProgramIr::from_source(TWO_CHANNELS).unwrap();
        let mpi = MpiIcfg::build(Icfg::build(ir, "main", 0).unwrap(), &SyntacticConsts);
        assert_eq!(mpi.comm_edges.len(), 2, "tags separate the channels");
        let cfg = TaintConfig {
            tainted_vars: vec!["evil".into()],
            reads_are_tainted: false,
        };
        let r = analyze_mpi(&mpi, &cfg).unwrap();
        let t = names(&mpi, &r);
        assert!(
            t.contains(&"a".to_string()),
            "tainted channel received: {t:?}"
        );
        assert!(
            !t.contains(&"b".to_string()),
            "trusted channel stays clean: {t:?}"
        );
        assert!(
            !t.contains(&"sink".to_string()),
            "sink fed only by the clean channel"
        );
    }

    #[test]
    fn taint_flows_through_subscripts() {
        let src = "program p\n\
            global idx: int; global table: real[4]; global out: real;\n\
            sub main() { table[idx] = 1.0; out = table[1]; }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let cfg = TaintConfig {
            tainted_vars: vec!["idx".into()],
            reads_are_tainted: false,
        };
        let r = analyze(&icfg, &icfg, TaintMode::MpiIcfg, &cfg).unwrap();
        let t = names(&icfg, &r);
        assert!(
            t.contains(&"table".to_string()),
            "tainted index taints the write: {t:?}"
        );
        assert!(t.contains(&"out".to_string()));
    }

    #[test]
    fn reads_as_sources() {
        let src = "program p global x: real; global y: real;\n\
             sub main() { read(x); y = x + 1.0; }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir.clone(), "main", 0).unwrap();
        let on = analyze(
            &icfg,
            &icfg,
            TaintMode::MpiIcfg,
            &TaintConfig {
                tainted_vars: vec![],
                reads_are_tainted: true,
            },
        )
        .unwrap();
        assert!(names(&icfg, &on).contains(&"y".to_string()));
        let off = analyze(
            &icfg,
            &icfg,
            TaintMode::MpiIcfg,
            &TaintConfig {
                tainted_vars: vec![],
                reads_are_tainted: false,
            },
        )
        .unwrap();
        assert!(off.ever_tainted.is_empty());
    }

    #[test]
    fn sanitization_by_overwrite() {
        let src = "program p global x: real; global y: real;\n\
             sub main() { y = x * 2.0; y = 1.0; }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir, "main", 0).unwrap();
        let cfg = TaintConfig {
            tainted_vars: vec!["x".into()],
            reads_are_tainted: false,
        };
        let r = analyze(&icfg, &icfg, TaintMode::MpiIcfg, &cfg).unwrap();
        // y is tainted at some point (after the first assign) even though
        // the constant overwrites it later.
        assert!(names(&icfg, &r).contains(&"y".to_string()));
        // But not at the exit.
        let y = icfg.ir.locs.global("y").unwrap();
        assert!(!r.solution.before(icfg.context_exit()).contains(y.index()));
    }

    #[test]
    fn taint_crosses_collectives() {
        let src = "program p global x: real; global s: real;\n\
             sub main() { allreduce(SUM, x, s); }";
        let ir = ProgramIr::from_source(src).unwrap();
        let mpi = MpiIcfg::build(Icfg::build(ir, "main", 0).unwrap(), &SyntacticConsts);
        let cfg = TaintConfig {
            tainted_vars: vec!["x".into()],
            reads_are_tainted: false,
        };
        let r = analyze_mpi(&mpi, &cfg).unwrap();
        assert!(names(&mpi, &r).contains(&"s".to_string()));
    }
}
