//! Seedable service-layer chaos harness.
//!
//! PR 1 established the repo's robustness discipline for the *interpreter*
//! (a seeded fault plan injecting adversarial message schedules); this
//! module applies the same idea to the *service tier*. Each scenario —
//! shaped by a SplitMix64 stream forked per case index — drives a real
//! in-process [`Server`] over real loopback sockets through:
//!
//! * clean requests (the control group);
//! * **partial writes**: requests dribbled in 2–5 chunks with small
//!   inter-chunk stalls;
//! * **mid-request disconnects**: part of a JSON line, then a hard close;
//! * **stalled clients**: a half-written request held open while another
//!   connection proceeds (must not block it);
//! * **corrupted cache files**: on-disk result entries bit-flipped or
//!   truncated, then a server restart — entries must quarantine and
//!   recompute, never serve wrong bytes;
//! * **burst load**: more concurrent requests than the admission cap —
//!   each client must get either a byte-correct success or a structured
//!   `overloaded` shed;
//! * **oversized lines** followed by a normal request on the same
//!   connection (resync).
//!
//! Invariants asserted for *every* scenario, at any seed:
//!
//! 1. **no hangs** — every client read carries a hard timeout;
//! 2. **no panics** — any `internal` error code (the server's
//!    caught-panic answer) is counted as a failure, as is a dead server
//!    thread;
//! 3. **structured errors only** — every response line parses as
//!    protocol JSON with either `ok:true` or an error code;
//! 4. **byte-identical successes** — every successful response equals
//!    the fault-free reference answer for that request, modulo the
//!    `cache` label (hit/miss/bypass is the one legitimate difference).
//!
//! The suite is deterministic per seed: `CHAOS_SEED` reproduces a failing
//! run exactly, and the failing run's telemetry span tree is captured in
//! the report for CI artifact upload.

use crate::admission::AdmissionConfig;
use crate::engine::{Engine, EngineConfig};
use crate::proto::RequestKind;
use crate::server::{Server, ServerConfig};
use mpi_dfa_core::telemetry;
use mpi_dfa_lang::rng::SplitMix64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How long a chaos client waits for one response line before declaring a
/// hang. Generous — CI machines are slow, and a real hang waits forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Chaos run parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; scenario `i` runs under `SplitMix64::fork(seed, i)`.
    pub seed: u64,
    /// Number of scenarios to run.
    pub cases: usize,
}

/// What the first failing scenario looked like.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    pub case_index: usize,
    pub seed: u64,
    pub detail: String,
    /// Rendered telemetry span tree at failure time (uploaded as a CI
    /// artifact for post-mortem); empty when telemetry is disabled.
    pub span_tree: String,
}

/// Aggregate outcome of a chaos run.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    pub cases: usize,
    pub requests_sent: u64,
    pub ok_responses: u64,
    pub error_responses: u64,
    pub sheds: u64,
    pub corruptions: u64,
    pub disconnects: u64,
    /// Worker processes SIGKILLed by cluster scenarios (always 0 for the
    /// single-process harness).
    pub kills: u64,
    pub failure: Option<ChaosFailure>,
}

/// The request pool scenarios draw from: cheap requests with
/// precomputable fault-free reference answers (`id` is patched per send).
const REQUEST_POOL: &[&str] = &[
    r#"{"id":0,"kind":"ping"}"#,
    r#"{"id":0,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#,
    r#"{"id":0,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"],"mode":"global"}"#,
    r#"{"id":0,"kind":"activity-at-location","program":"figure1","ind":["x"],"dep":["f"],"var":"z"}"#,
    r#"{"id":0,"kind":"table1-row","row":"Biostat"}"#,
    r#"{"id":0,"kind":"dot","program":"figure1"}"#,
    r#"{"id":0,"kind":"cache-stats"}"#,
];

/// A socket client with hard read timeouts: a hang becomes a reported
/// failure, never a stuck suite.
struct ChaosClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ChaosClient {
    fn connect(addr: SocketAddr) -> Result<ChaosClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(ChaosClient { stream, reader })
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream
            .write_all(bytes)
            .map_err(|e| format!("write: {e}"))
    }

    /// Read one response line; `Err` on timeout (= hang) or early EOF.
    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection unexpectedly".into()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(format!("HANG: no response within {CLIENT_READ_TIMEOUT:?}"))
            }
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

/// One running server epoch. Scenarios that corrupt the disk cache restart
/// the epoch so the next reads hit the (corrupted) disk path cold.
struct Epoch {
    addr: SocketAddr,
    handle: std::thread::JoinHandle<Result<(), String>>,
}

fn start_epoch(cache_dir: &str) -> Result<Epoch, String> {
    let engine = Arc::new(Engine::new(EngineConfig {
        cache_capacity: 64,
        cache_dir: Some(cache_dir.to_string()),
        // Small ladder so burst scenarios actually reach the shed path.
        admission: AdmissionConfig {
            max_inflight: 4,
            t1_watermark: 2,
            t2_watermark: 3,
            hysteresis: 1,
            retry_after_ms: 5,
        },
        shard_id: None,
    })?);
    let server = Server::bind_with(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            // Short enough that a leaked stalled connection resolves inside
            // the suite, long enough to never reap an honest client.
            idle_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_connections: 32,
        },
    )?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || server.run());
    Ok(Epoch { addr, handle })
}

fn stop_epoch(epoch: Epoch) -> Result<(), String> {
    let mut c = ChaosClient::connect(epoch.addr)?;
    c.send_raw(b"{\"id\":999999,\"kind\":\"shutdown\"}\n")?;
    let _ = c.read_line();
    match epoch.handle.join() {
        Ok(r) => r,
        Err(_) => Err("server thread panicked".into()),
    }
}

/// Strip the `cache` label before comparing payloads: hit ≡ miss ≡ bypass
/// byte-wise is exactly the engine's determinism contract, so the label is
/// the one legitimate difference between a faulted and a fault-free run.
fn normalize(resp: &str) -> String {
    resp.replace("\"cache\":\"hit\"", "\"cache\":\"#\"")
        .replace("\"cache\":\"miss\"", "\"cache\":\"#\"")
        .replace("\"cache\":\"bypass\"", "\"cache\":\"#\"")
}

/// Fault-free reference answers, computed once per distinct request on a
/// fresh engine (no disk store, no load) and memoized. The determinism
/// contract makes this THE answer every chaos success must match.
struct ReferenceAnswers {
    engine: Engine,
    memo: HashMap<String, String>,
}

impl ReferenceAnswers {
    fn new() -> Result<ReferenceAnswers, String> {
        Ok(ReferenceAnswers {
            engine: Engine::new(EngineConfig {
                cache_capacity: 64,
                cache_dir: None,
                admission: AdmissionConfig::default(),
                shard_id: None,
            })?,
            memo: HashMap::new(),
        })
    }

    /// The reference response for `line`, or `None` for kinds whose result
    /// is legitimately run-dependent (`cache-stats` counts live traffic).
    fn for_request(&mut self, line: &str) -> Option<String> {
        let req = crate::proto::parse_request(line).ok()?;
        if matches!(req.kind, RequestKind::CacheStats | RequestKind::Shutdown) {
            return None;
        }
        if let Some(r) = self.memo.get(line) {
            return Some(r.clone());
        }
        let resp = self.engine.handle(&req);
        self.memo.insert(line.to_string(), resp.clone());
        Some(resp)
    }
}

/// Check one response line against the protocol invariants and (when the
/// request has a deterministic answer) the fault-free reference. Returns a
/// failure detail, or `None` if the response is acceptable.
fn check_response(
    refs: &mut ReferenceAnswers,
    req_line: &str,
    resp: &str,
    report: &mut ChaosReport,
) -> Option<String> {
    let parsed = match crate::json::parse(resp) {
        Ok(v) => v,
        Err(e) => return Some(format!("response is not valid JSON ({e}): {resp}")),
    };
    match parsed.get("ok").and_then(|v| v.as_bool()) {
        Some(true) => {
            report.ok_responses += 1;
            if let Some(reference) = refs.for_request(req_line) {
                if normalize(resp) != normalize(&reference) {
                    return Some(format!(
                        "successful response diverged from fault-free reference\n\
                         request:   {req_line}\n\
                         got:       {resp}\n\
                         reference: {reference}"
                    ));
                }
            }
            None
        }
        Some(false) => {
            report.error_responses += 1;
            let code = parsed
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str())
                .unwrap_or("");
            if code.is_empty() {
                return Some(format!("error response without a code: {resp}"));
            }
            if code == "internal" {
                return Some(format!("internal error (engine panic?): {resp}"));
            }
            if code == "overloaded" {
                report.sheds += 1;
                let hinted = parsed
                    .get("error")
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(|v| v.as_u64());
                if hinted.is_none() {
                    return Some(format!("overloaded shed without retry_after_ms: {resp}"));
                }
            }
            None
        }
        None => Some(format!("response lacks `ok`: {resp}")),
    }
}

fn with_id(template: &str, id: u64) -> String {
    template.replacen("\"id\":0", &format!("\"id\":{id}"), 1)
}

fn fail(case: usize, seed: u64, detail: String) -> ChaosFailure {
    // Capture whatever telemetry the run produced; empty unless the
    // embedding test installed a sink.
    let span_tree = if telemetry::is_enabled() {
        telemetry::render_span_tree(&telemetry::snapshot().events)
    } else {
        String::new()
    };
    ChaosFailure {
        case_index: case,
        seed,
        detail,
        span_tree,
    }
}

/// Run `config.cases` seeded scenarios against a live in-process server.
/// Stops at the first invariant violation; the report carries enough to
/// reproduce it (`seed`, `case_index`) and diagnose it (span tree).
pub fn run_chaos(config: ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport {
        cases: config.cases,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "mpidfa-chaos-{}-{:x}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.to_string_lossy().into_owned();

    let mut refs = match ReferenceAnswers::new() {
        Ok(r) => r,
        Err(e) => {
            report.failure = Some(fail(0, config.seed, format!("reference engine: {e}")));
            return report;
        }
    };

    let mut epoch = match start_epoch(&cache_dir) {
        Ok(e) => e,
        Err(e) => {
            report.failure = Some(fail(0, config.seed, format!("start server: {e}")));
            return report;
        }
    };

    for case in 0..config.cases {
        let mut rng = SplitMix64::fork(config.seed, case as u64);
        match run_scenario(
            &mut rng,
            case,
            epoch.addr,
            &cache_dir,
            &mut refs,
            &mut report,
        ) {
            Ok(false) => {}
            Ok(true) => {
                // The scenario corrupted the disk store; restart the server
                // so the in-memory layer is cold and reads go to disk.
                if let Err(e) = stop_epoch(epoch) {
                    report.failure = Some(fail(case, config.seed, format!("restart: {e}")));
                    return report;
                }
                match start_epoch(&cache_dir) {
                    Ok(e) => epoch = e,
                    Err(e) => {
                        report.failure =
                            Some(fail(case, config.seed, format!("restart bind: {e}")));
                        return report;
                    }
                }
            }
            Err(detail) => {
                report.failure = Some(fail(case, config.seed, detail));
                let _ = stop_epoch(epoch);
                let _ = std::fs::remove_dir_all(&dir);
                return report;
            }
        }
    }

    if let Err(e) = stop_epoch(epoch) {
        report.failure = Some(fail(config.cases, config.seed, format!("shutdown: {e}")));
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// One scenario. `Ok(true)` asks the driver to restart the server epoch
/// (used after disk corruption).
fn run_scenario(
    rng: &mut SplitMix64,
    case: usize,
    addr: SocketAddr,
    cache_dir: &str,
    refs: &mut ReferenceAnswers,
    report: &mut ChaosReport,
) -> Result<bool, String> {
    match rng.below(100) {
        // ~25%: clean request/response (the control group).
        0..=24 => {
            let mut c = ChaosClient::connect(addr)?;
            let line = with_id(rng.pick::<&str>(REQUEST_POOL), 1000 + case as u64);
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(d);
            }
            Ok(false)
        }
        // ~20%: partial writes — the request dribbles in chunks.
        25..=44 => {
            let mut c = ChaosClient::connect(addr)?;
            let line = with_id(rng.pick::<&str>(REQUEST_POOL), 2000 + case as u64);
            let framed = format!("{line}\n");
            let bytes = framed.as_bytes();
            let chunks = rng.range(2, 6);
            let mut sent = 0;
            for i in 0..chunks {
                let end = if i + 1 == chunks {
                    bytes.len()
                } else {
                    (sent + 1).max(rng.range(sent, bytes.len()))
                };
                c.send_raw(&bytes[sent..end])?;
                sent = end;
                if sent >= bytes.len() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(rng.below(5) as u64));
            }
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("chunked request mishandled: {d}"));
            }
            Ok(false)
        }
        // ~15%: mid-request disconnect, then a fresh connection must work.
        45..=59 => {
            {
                let mut c = ChaosClient::connect(addr)?;
                let line = with_id(rng.pick::<&str>(REQUEST_POOL), 3000 + case as u64);
                let cut = rng.range(1, line.len());
                c.send_raw(&line.as_bytes()[..cut])?;
                // Hard close with an incomplete line in flight.
                let _ = c.stream.shutdown(std::net::Shutdown::Both);
                report.disconnects += 1;
            }
            let mut c = ChaosClient::connect(addr)?;
            let probe = format!("{{\"id\":{},\"kind\":\"ping\"}}\n", 3500 + case);
            c.send_raw(probe.as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if !resp.contains("\"pong\":true") {
                return Err(format!("ping after disconnect failed: {resp}"));
            }
            report.ok_responses += 1;
            Ok(false)
        }
        // ~15%: stalled client — a half-written request held open must not
        // block another connection's request.
        60..=74 => {
            let mut stalled = ChaosClient::connect(addr)?;
            stalled.send_raw(b"{\"id\":1,\"kind\":\"an")?; // no newline
            let mut live = ChaosClient::connect(addr)?;
            let line = with_id(rng.pick::<&str>(REQUEST_POOL), 4000 + case as u64);
            live.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = live.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("stalled neighbor broke a live client: {d}"));
            }
            // The stalled connection is still allowed to finish its line.
            stalled
                .send_raw(b"alyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"]}\n")?;
            report.requests_sent += 1;
            let resp = stalled.read_line()?;
            let full = r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#;
            if let Some(d) = check_response(refs, full, &resp, report) {
                return Err(format!("stalled client's late request failed: {d}"));
            }
            Ok(false)
        }
        // ~5%: corrupt the on-disk result entries (bit flips, sometimes a
        // truncating torn write), then restart the epoch.
        75..=79 => {
            let results = std::path::Path::new(cache_dir).join(crate::cache::RESULTS_NAMESPACE);
            if let Ok(entries) = std::fs::read_dir(&results) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    let Ok(mut bytes) = std::fs::read(&path) else {
                        continue;
                    };
                    if bytes.is_empty() {
                        continue;
                    }
                    let idx = rng.below(bytes.len());
                    bytes[idx] ^= 1 << rng.below(8);
                    if rng.chance(0.3) {
                        bytes.truncate(rng.below(bytes.len()));
                    }
                    if std::fs::write(&path, &bytes).is_ok() {
                        report.corruptions += 1;
                    }
                }
            }
            Ok(true)
        }
        // ~10%: a known request must answer byte-identically — after a
        // corruption epoch this is the scenario that catches a checksum
        // bypass serving garbage from disk.
        80..=89 => {
            let mut c = ChaosClient::connect(addr)?;
            let line = with_id(REQUEST_POOL[1], 5000 + case as u64); // analyze figure1
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("recompute after corruption diverged: {d}"));
            }
            Ok(false)
        }
        // ~5%: burst load beyond the admission cap — every thread gets
        // either a valid answer or a structured overloaded shed.
        90..=94 => {
            let threads = rng.range(6, 11);
            let line = with_id(REQUEST_POOL[4], 6000 + case as u64); // table1-row
            let results: Vec<Result<String, String>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let line = line.clone();
                        s.spawn(move || -> Result<String, String> {
                            let mut c = ChaosClient::connect(addr)?;
                            c.send_raw(format!("{line}\n").as_bytes())?;
                            c.read_line()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
                    .collect()
            });
            for r in results {
                let resp = r?;
                report.requests_sent += 1;
                if resp.contains("\"code\":\"overloaded\"") {
                    report.error_responses += 1;
                    report.sheds += 1;
                    continue;
                }
                if let Some(d) = check_response(refs, &line, &resp, report) {
                    // Under load the admission floor may legitimately
                    // degrade the answer — but only with bypass provenance
                    // at a raised tier. Anything else is a real divergence.
                    if resp.contains("\"cache\":\"bypass\"") && !resp.contains("\"tier\":\"T0\"") {
                        continue;
                    }
                    return Err(format!("burst response invalid: {d}"));
                }
            }
            Ok(false)
        }
        // ~5%: oversized line, then resync on the same connection.
        _ => {
            let mut c = ChaosClient::connect(addr)?;
            let huge = vec![b'x'; crate::proto::MAX_LINE_BYTES + 1 + rng.below(64)];
            c.send_raw(&huge)?;
            c.send_raw(b"\n")?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if !resp.contains("\"code\":\"too-large\"") {
                return Err(format!("oversized line not rejected: {resp}"));
            }
            report.error_responses += 1;
            let line = with_id(rng.pick::<&str>(REQUEST_POOL), 7000 + case as u64);
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("resync after oversized line failed: {d}"));
            }
            Ok(false)
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster chaos: the same invariants against a real supervised fleet.
// ---------------------------------------------------------------------------

/// Cluster chaos run parameters. Unlike [`ChaosConfig`] this drives real
/// worker *processes* (via [`crate::router::Cluster`]), so it needs the
/// path to the `mpidfa` binary; integration tests pass
/// `env!("CARGO_BIN_EXE_mpidfa")`.
#[derive(Debug, Clone)]
pub struct ClusterChaosConfig {
    /// Master seed; scenario `i` runs under `SplitMix64::fork(seed, i)`.
    pub seed: u64,
    /// Number of scenarios to run.
    pub cases: usize,
    /// Fleet size. 1 exercises the degenerate ring; 3 is the CI topology.
    pub shards: usize,
    /// Worker executable (the `mpidfa` binary; the supervisor invokes it
    /// as `mpidfa serve --shard-id I --addr 127.0.0.1:0 ...`).
    pub worker_program: std::path::PathBuf,
}

/// Run `config.cases` seeded scenarios against a live cluster: a router +
/// supervised worker fleet sharing one crash-only disk cache. Scenarios
/// add process-level faults to the single-box repertoire — worker SIGKILL
/// mid-request, restart storms, one-shard brownouts under burst, warm-disk
/// survival across a kill — and assert the same four invariants: no hangs,
/// no panics, structured errors only, byte-identical successes vs the
/// fault-free reference.
pub fn run_cluster_chaos(config: ClusterChaosConfig) -> ChaosReport {
    use crate::health::HealthConfig;
    use crate::router::{Cluster, ClusterConfig};
    use crate::supervisor::{BackoffConfig, WorkerSpec};

    let mut report = ChaosReport {
        cases: config.cases,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "mpidfa-cluster-chaos-{}-{:x}",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.to_string_lossy().into_owned();

    let mut refs = match ReferenceAnswers::new() {
        Ok(r) => r,
        Err(e) => {
            report.failure = Some(fail(0, config.seed, format!("reference engine: {e}")));
            return report;
        }
    };

    // Small admission cap so brownout scenarios actually shed; fast
    // backoff + health cadence so kill scenarios recover inside the suite.
    let mut worker = WorkerSpec::new(
        &config.worker_program,
        vec![
            "serve".into(),
            "--cache-dir".into(),
            cache_dir.clone(),
            "--max-inflight".into(),
            "4".into(),
        ],
    );
    worker.backoff = BackoffConfig {
        base: Duration::from_millis(20),
        cap: Duration::from_millis(500),
        reset_after: Duration::from_secs(2),
    };
    worker.health = HealthConfig {
        interval: Duration::from_millis(150),
        timeout: Duration::from_millis(1500),
        miss_budget: 3,
    };

    let cluster = match Cluster::start(ClusterConfig::new(config.shards, worker), "127.0.0.1:0") {
        Ok(c) => c,
        Err(e) => {
            report.failure = Some(fail(0, config.seed, format!("start cluster: {e}")));
            return report;
        }
    };
    let addr = match cluster.local_addr() {
        Ok(a) => a,
        Err(e) => {
            report.failure = Some(fail(0, config.seed, format!("cluster addr: {e}")));
            return report;
        }
    };
    let supervisor = cluster.supervisor();
    let router = cluster.router();
    let serve_thread = std::thread::spawn(move || cluster.run());

    for case in 0..config.cases {
        let mut rng = SplitMix64::fork(config.seed, case as u64);
        if let Err(detail) = run_cluster_scenario(
            &mut rng,
            case,
            addr,
            &supervisor,
            &router,
            &mut refs,
            &mut report,
        ) {
            report.failure = Some(fail(case, config.seed, detail));
            break;
        }
    }

    // Always tear the fleet down, even after a failure: leaked worker
    // processes would outlive the test run.
    let stopped = (|| -> Result<(), String> {
        let mut c = ChaosClient::connect(addr)?;
        c.send_raw(b"{\"id\":999999,\"kind\":\"shutdown\"}\n")?;
        let _ = c.read_line();
        Ok(())
    })();
    if stopped.is_err() {
        // Router unreachable — stop the workers directly; the serve thread
        // is then abandoned (the process is exiting anyway).
        supervisor.stop();
    } else {
        match serve_thread.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                report
                    .failure
                    .get_or_insert_with(|| fail(config.cases, config.seed, format!("serve: {e}")));
            }
            Err(_) => {
                report.failure.get_or_insert_with(|| {
                    fail(config.cases, config.seed, "router thread panicked".into())
                });
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// A successful answer that differs from the fault-free reference only
/// because the admission floor raised the tier under load: it carries
/// bypass provenance and a floor above T0. The PR-6 ladder makes this a
/// legitimate (deterministically rendered) degradation, not a divergence.
fn is_load_degraded(resp: &str) -> bool {
    resp.contains("\"cache\":\"bypass\"") && !resp.contains("\"tier\":\"T0\"")
}

/// SIGKILL `shard`, counting the kill and returning the pre-kill epoch so
/// the caller can wait for the *replacement* incarnation (right after a
/// kill the table still shows the dead worker as alive for one monitor
/// tick). `None` when there was no process to kill (already mid-restart).
fn kill_shard_noted(
    supervisor: &crate::supervisor::Supervisor,
    shard: usize,
    report: &mut ChaosReport,
) -> Option<u64> {
    let pre_epoch = supervisor.table().snapshot(shard).epoch;
    if supervisor.kill_shard(shard) {
        report.kills += 1;
        Some(pre_epoch)
    } else {
        None
    }
}

/// Wait for every killed shard's replacement, then for the whole fleet;
/// cluster scenarios that kill workers end with this so one case's faults
/// never bleed into the next.
fn fleet_recovers(
    supervisor: &crate::supervisor::Supervisor,
    killed: &[(usize, u64)],
) -> Result<(), String> {
    for &(shard, pre_epoch) in killed {
        if !supervisor.wait_restarted(shard, pre_epoch, Duration::from_secs(15)) {
            return Err(format!(
                "shard {shard} was not restarted past epoch {pre_epoch} within 15s: {:?}",
                supervisor.table().snapshot(shard)
            ));
        }
    }
    if supervisor.wait_all_healthy(Duration::from_secs(15)) {
        Ok(())
    } else {
        Err(format!(
            "fleet did not recover within 15s: {:?}",
            supervisor.table().snapshots()
        ))
    }
}

/// One cluster scenario.
fn run_cluster_scenario(
    rng: &mut SplitMix64,
    case: usize,
    addr: SocketAddr,
    supervisor: &Arc<crate::supervisor::Supervisor>,
    router: &Arc<crate::router::RouterHandler>,
    refs: &mut ReferenceAnswers,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let shards = supervisor.table().len();
    // Analysis requests only (no control verbs): these route to a shard.
    let analysis_pool = &REQUEST_POOL[1..6];
    match rng.below(100) {
        // ~25%: clean request through the router (the control group). A
        // shard may still be restarting from a previous case — then the
        // router hedges or sheds, and both are valid structured outcomes.
        0..=24 => {
            let mut c = ChaosClient::connect(addr)?;
            let line = with_id(rng.pick::<&str>(REQUEST_POOL), 1000 + case as u64);
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(d);
            }
            Ok(())
        }
        // ~15%: SIGKILL the exact shard a request routes to, mid-request.
        // The client must still get a structured answer (a hedged success
        // must be byte-identical), and the supervisor must restart the
        // worker.
        25..=39 => {
            let line = with_id(rng.pick::<&str>(analysis_pool), 2000 + case as u64);
            let target = router
                .shard_for_line(&line)
                .ok_or("shard_for_line returned None for an analysis request")?;
            let delay = Duration::from_millis(rng.below(30) as u64);
            let mut killed = Vec::new();
            let resp = std::thread::scope(|s| {
                let client = s.spawn(|| -> Result<String, String> {
                    let mut c = ChaosClient::connect(addr)?;
                    c.send_raw(format!("{line}\n").as_bytes())?;
                    c.read_line()
                });
                std::thread::sleep(delay);
                if let Some(pre) = kill_shard_noted(supervisor, target, report) {
                    killed.push((target, pre));
                }
                client
                    .join()
                    .unwrap_or_else(|_| Err("client panicked".into()))
            })?;
            report.requests_sent += 1;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("kill of shard {target} mid-request: {d}"));
            }
            fleet_recovers(supervisor, &killed)?;
            Ok(())
        }
        // ~10%: restart storm — every shard killed back to back, with
        // concurrent probes in flight. No hangs, structured answers only,
        // and the whole fleet must come back.
        40..=49 => {
            let lines: Vec<String> = (0..4)
                .map(|i| with_id(rng.pick::<&str>(analysis_pool), 3000 + 10 * case as u64 + i))
                .collect();
            let mut killed = Vec::new();
            let results: Vec<Result<String, String>> = std::thread::scope(|s| {
                let probes: Vec<_> = lines
                    .iter()
                    .map(|line| {
                        s.spawn(move || -> Result<String, String> {
                            let mut c = ChaosClient::connect(addr)?;
                            c.send_raw(format!("{line}\n").as_bytes())?;
                            c.read_line()
                        })
                    })
                    .collect();
                for shard in 0..shards {
                    if let Some(pre) = kill_shard_noted(supervisor, shard, report) {
                        killed.push((shard, pre));
                    }
                    std::thread::sleep(Duration::from_millis(rng.below(10) as u64));
                }
                probes
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| Err("probe panicked".into())))
                    .collect()
            });
            for (line, r) in lines.iter().zip(results) {
                let resp = r?;
                report.requests_sent += 1;
                if let Some(d) = check_response(refs, line, &resp, report) {
                    // Concurrent probes can push a surviving worker past a
                    // watermark: a tier-degraded answer (bypass provenance,
                    // floor above T0) is the admission ladder working, not
                    // a divergence.
                    if is_load_degraded(&resp) {
                        continue;
                    }
                    return Err(format!("restart storm: {d}"));
                }
            }
            fleet_recovers(supervisor, &killed)?;
            Ok(())
        }
        // ~10%: brownout under burst — identical bypass requests all route
        // to ONE shard and exceed its admission cap. The router must
        // propagate `retry_after_ms` (never hedge a shed into a second
        // shed loop forever), and every client gets ok-or-overloaded.
        50..=59 => {
            let line = format!(
                "{{\"id\":{},\"kind\":\"analyze\",\"program\":\"figure1\",\
                 \"ind\":[\"x\"],\"dep\":[\"f\"],\"budget_ms\":60000}}",
                4000 + case as u64
            );
            let threads = 4 * shards + 2;
            let results: Vec<Result<String, String>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let line = line.clone();
                        s.spawn(move || -> Result<String, String> {
                            let mut c = ChaosClient::connect(addr)?;
                            c.send_raw(format!("{line}\n").as_bytes())?;
                            c.read_line()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
                    .collect()
            });
            for r in results {
                let resp = r?;
                report.requests_sent += 1;
                if resp.contains("\"code\":\"overloaded\"") {
                    if !resp.contains("\"retry_after_ms\"") {
                        return Err(format!("shed without retry_after_ms: {resp}"));
                    }
                    report.error_responses += 1;
                    report.sheds += 1;
                    continue;
                }
                if let Some(d) = check_response(refs, &line, &resp, report) {
                    // Same allowance as the single-box burst: under load
                    // the admission floor may degrade the tier, visible
                    // only on bypass-provenance answers.
                    if is_load_degraded(&resp) {
                        continue;
                    }
                    return Err(format!("brownout burst response invalid: {d}"));
                }
            }
            // Let the shard's brownout window (retry_after_ms = 100) lapse
            // so the next case starts with all shards routable.
            std::thread::sleep(Duration::from_millis(150));
            Ok(())
        }
        // ~10%: warm-disk survival — a computed result must outlive a
        // SIGKILL of the worker that wrote it (crash-only tmp+rename
        // framing) and come back as a disk hit after the restart.
        60..=69 => {
            fleet_recovers(supervisor, &[])?;
            let line = with_id(REQUEST_POOL[1], 5000 + case as u64); // analyze figure1
            let mut c = ChaosClient::connect(addr)?;
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let first = c.read_line()?;
            if first.contains("\"ok\":false") {
                // Shed under residual load — nothing was cached; skip.
                report.error_responses += 1;
                return Ok(());
            }
            if let Some(d) = check_response(refs, &line, &first, report) {
                return Err(format!("warm-disk priming request: {d}"));
            }
            let owner = router
                .shard_for_line(&line)
                .ok_or("no owner shard for warm-disk request")?;
            let killed: Vec<(usize, u64)> = kill_shard_noted(supervisor, owner, report)
                .map(|pre| (owner, pre))
                .into_iter()
                .collect();
            fleet_recovers(supervisor, &killed)?;
            let mut c = ChaosClient::connect(addr)?;
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!("warm-disk re-read after kill: {d}"));
            }
            if !resp.contains("\"cache\":\"hit\"") {
                return Err(format!(
                    "disk entry did not survive the kill of shard {owner}: {resp}"
                ));
            }
            Ok(())
        }
        // ~10%: router robustness — malformed lines, oversized + resync,
        // mid-line disconnects, and pings racing a kill.
        70..=79 => match rng.below(4) {
            0 => {
                let mut c = ChaosClient::connect(addr)?;
                c.send_raw(b"{\"id\":,\"kind\":\"analyze\"}\n")?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                let parsed = crate::json::parse(&resp)
                    .map_err(|e| format!("malformed-line answer is not JSON ({e}): {resp}"))?;
                if parsed.get("ok").and_then(|v| v.as_bool()) != Some(false) {
                    return Err(format!("malformed line not rejected: {resp}"));
                }
                report.error_responses += 1;
                let probe = format!("{{\"id\":{},\"kind\":\"ping\"}}\n", 6000 + case);
                c.send_raw(probe.as_bytes())?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                if !resp.contains("\"pong\":true") {
                    return Err(format!("ping after malformed line failed: {resp}"));
                }
                report.ok_responses += 1;
                Ok(())
            }
            1 => {
                let mut c = ChaosClient::connect(addr)?;
                let huge = vec![b'x'; crate::proto::MAX_LINE_BYTES + 1 + rng.below(64)];
                c.send_raw(&huge)?;
                c.send_raw(b"\n")?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                if !resp.contains("\"code\":\"too-large\"") {
                    return Err(format!("oversized line not rejected by router: {resp}"));
                }
                report.error_responses += 1;
                let line = with_id(rng.pick::<&str>(analysis_pool), 6100 + case as u64);
                c.send_raw(format!("{line}\n").as_bytes())?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                if let Some(d) = check_response(refs, &line, &resp, report) {
                    return Err(format!("router resync after oversized line: {d}"));
                }
                Ok(())
            }
            2 => {
                {
                    let mut c = ChaosClient::connect(addr)?;
                    let line = with_id(rng.pick::<&str>(analysis_pool), 6200 + case as u64);
                    let cut = rng.range(1, line.len());
                    c.send_raw(&line.as_bytes()[..cut])?;
                    let _ = c.stream.shutdown(std::net::Shutdown::Both);
                    report.disconnects += 1;
                }
                let mut c = ChaosClient::connect(addr)?;
                let probe = format!("{{\"id\":{},\"kind\":\"ping\"}}\n", 6300 + case);
                c.send_raw(probe.as_bytes())?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                if !resp.contains("\"pong\":true") {
                    return Err(format!("ping after mid-line disconnect failed: {resp}"));
                }
                report.ok_responses += 1;
                Ok(())
            }
            _ => {
                // Ping answers locally at the router: it must pong even
                // while a worker is being killed.
                let victim = rng.below(shards);
                let killed: Vec<(usize, u64)> = kill_shard_noted(supervisor, victim, report)
                    .map(|pre| (victim, pre))
                    .into_iter()
                    .collect();
                let mut c = ChaosClient::connect(addr)?;
                let probe = format!("{{\"id\":{},\"kind\":\"ping\"}}\n", 6400 + case);
                c.send_raw(probe.as_bytes())?;
                report.requests_sent += 1;
                let resp = c.read_line()?;
                if !resp.contains("\"pong\":true") {
                    return Err(format!("ping during worker kill failed: {resp}"));
                }
                report.ok_responses += 1;
                fleet_recovers(supervisor, &killed)?;
                Ok(())
            }
        },
        // ~10%: cluster `cache-stats` shape — router counters, one
        // supervisor entry per shard, one worker stats object per shard.
        80..=89 => {
            fleet_recovers(supervisor, &[])?;
            let mut c = ChaosClient::connect(addr)?;
            let line = format!("{{\"id\":{},\"kind\":\"cache-stats\"}}", 7000 + case);
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            let parsed = crate::json::parse(&resp)
                .map_err(|e| format!("cache-stats is not JSON ({e}): {resp}"))?;
            let result = parsed
                .get("result")
                .ok_or_else(|| format!("cache-stats without result: {resp}"))?;
            let cluster = result
                .get("cluster")
                .ok_or_else(|| format!("cluster cache-stats without `cluster`: {resp}"))?;
            if cluster.get("shards").and_then(|v| v.as_u64()) != Some(shards as u64) {
                return Err(format!("cluster.shards != {shards}: {resp}"));
            }
            let sup = cluster
                .get("supervisor")
                .and_then(|v| v.as_array().map(|a| a.len()))
                .ok_or_else(|| format!("cluster.supervisor missing: {resp}"))?;
            if sup != shards {
                return Err(format!(
                    "cluster.supervisor has {sup} entries, want {shards}"
                ));
            }
            let workers = result
                .get("workers")
                .and_then(|v| v.as_array().map(|a| a.len()))
                .ok_or_else(|| format!("cluster cache-stats without workers: {resp}"))?;
            if workers != shards {
                return Err(format!("workers has {workers} entries, want {shards}"));
            }
            if cluster
                .get("router")
                .and_then(|r| r.get("routed_total"))
                .is_none()
            {
                return Err(format!("cluster.router counters missing: {resp}"));
            }
            report.ok_responses += 1;
            Ok(())
        }
        // ~10%: kill, then fire the next request immediately — the worst
        // window for the router (endpoint still published, conn refused or
        // reset). Must hedge or shed, never hang or garble.
        _ => {
            let victim = rng.below(shards);
            let killed: Vec<(usize, u64)> = kill_shard_noted(supervisor, victim, report)
                .map(|pre| (victim, pre))
                .into_iter()
                .collect();
            let line = with_id(rng.pick::<&str>(analysis_pool), 8000 + case as u64);
            let mut c = ChaosClient::connect(addr)?;
            c.send_raw(format!("{line}\n").as_bytes())?;
            report.requests_sent += 1;
            let resp = c.read_line()?;
            if let Some(d) = check_response(refs, &line, &resp, report) {
                return Err(format!(
                    "request straight after kill of shard {victim}: {d}"
                ));
            }
            fleet_recovers(supervisor, &killed)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic smoke run (the 500-case run lives in
    /// `tests/chaos_service.rs` and in the CI `chaos-smoke` job).
    #[test]
    fn chaos_smoke_is_clean_and_deterministic() {
        let cfg = ChaosConfig {
            seed: 42,
            cases: 25,
        };
        let a = run_chaos(cfg);
        assert!(
            a.failure.is_none(),
            "chaos failure at case {:?}: {}",
            a.failure.as_ref().map(|f| f.case_index),
            a.failure.as_ref().map(|f| f.detail.as_str()).unwrap_or("")
        );
        assert!(a.requests_sent > 0);
        assert!(a.ok_responses > 0);
    }
}
