//! Token definitions for the SMPL lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token. Keywords are distinguished from identifiers
/// during lexing; SMPL keywords are all lowercase except reduction operators.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names
    Ident(String),
    IntLit(i64),
    RealLit(f64),

    // Keywords
    Program,
    Global,
    Sub,
    Var,
    If,
    Else,
    While,
    For,
    Call,
    Return,
    True,
    False,

    // Types
    KwInt,
    KwReal,
    KwReal4,
    KwLogical,

    // MPI / builtin statements
    Send,
    Isend,
    Recv,
    Irecv,
    Bcast,
    Reduce,
    Allreduce,
    Barrier,
    Wait,
    Read,
    Print,

    // Builtin expressions
    Rank,
    Nprocs,
    Any,

    // Reduction operators
    OpSum,
    OpProd,
    OpMax,
    OpMin,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,

    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup used by the lexer after scanning an identifier.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "program" => Program,
            "global" => Global,
            "sub" => Sub,
            "var" => Var,
            "if" => If,
            "else" => Else,
            "while" => While,
            "for" => For,
            "call" => Call,
            "return" => Return,
            "true" => True,
            "false" => False,
            "int" => KwInt,
            "real" => KwReal,
            "real4" => KwReal4,
            "logical" => KwLogical,
            "send" => Send,
            "isend" => Isend,
            "recv" => Recv,
            "irecv" => Irecv,
            "bcast" => Bcast,
            "reduce" => Reduce,
            "allreduce" => Allreduce,
            "barrier" => Barrier,
            "wait" => Wait,
            "read" => Read,
            "print" => Print,
            "rank" => Rank,
            "nprocs" => Nprocs,
            "ANY" => Any,
            "SUM" => OpSum,
            "PROD" => OpProd,
            "MAX" => OpMax,
            "MIN" => OpMin,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            IntLit(v) => format!("integer `{v}`"),
            RealLit(v) => format!("real `{v}`"),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Program => "program",
            Global => "global",
            Sub => "sub",
            Var => "var",
            If => "if",
            Else => "else",
            While => "while",
            For => "for",
            Call => "call",
            Return => "return",
            True => "true",
            False => "false",
            KwInt => "int",
            KwReal => "real",
            KwReal4 => "real4",
            KwLogical => "logical",
            Send => "send",
            Isend => "isend",
            Recv => "recv",
            Irecv => "irecv",
            Bcast => "bcast",
            Reduce => "reduce",
            Allreduce => "allreduce",
            Barrier => "barrier",
            Wait => "wait",
            Read => "read",
            Print => "print",
            Rank => "rank",
            Nprocs => "nprocs",
            Any => "ANY",
            OpSum => "SUM",
            OpProd => "PROD",
            OpMax => "MAX",
            OpMin => "MIN",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            Assign => "=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Not => "!",
            Ident(_) | IntLit(_) | RealLit(_) | Eof => unreachable!(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A lexed token: a kind plus the span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("sub"), Some(TokenKind::Sub));
        assert_eq!(TokenKind::keyword("SUM"), Some(TokenKind::OpSum));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
        // keywords are case-sensitive: `Sub` is a plain identifier
        assert_eq!(TokenKind::keyword("Sub"), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::LBrace.describe(), "`{`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
