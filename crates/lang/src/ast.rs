//! Abstract syntax tree for SMPL programs.
//!
//! Every statement carries a program-unique [`StmtId`] assigned by the parser;
//! the CFG builder, slicer, and test assertions key off these ids. Expressions
//! carry spans only.

use crate::span::Span;
use crate::types::Type;
use std::fmt;

/// Program-unique statement identifier (dense, assigned in parse order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl StmtId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A whole SMPL compilation unit.
#[derive(Debug, Clone)]
pub struct Program {
    pub name: String,
    pub globals: Vec<VarDecl>,
    pub subs: Vec<SubDecl>,
    /// Total number of statements; `StmtId`s are `0..stmt_count`.
    pub stmt_count: u32,
}

impl Program {
    /// Look up a subroutine by name.
    pub fn sub(&self, name: &str) -> Option<&SubDecl> {
        self.subs.iter().find(|s| s.name == name)
    }
}

/// A variable declaration (global, parameter, or local).
#[derive(Debug, Clone)]
pub struct VarDecl {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A subroutine definition. All parameters are passed by reference
/// (Fortran semantics), which is what the interprocedural caller/callee
/// fact mapping in the analysis crates models.
#[derive(Debug, Clone)]
pub struct SubDecl {
    pub name: String,
    pub params: Vec<VarDecl>,
    pub body: Block,
    pub span: Span,
}

impl SubDecl {
    /// Smallest [`StmtId`] anywhere in this subroutine's body, or `None`
    /// for an empty body.
    ///
    /// The parser assigns statement ids sequentially across the whole
    /// program, so a subroutine's ids form the contiguous range
    /// `first_stmt_id() .. first_stmt_id() + count`. The incremental
    /// analysis cache (`crates/service`) uses this base to *rebase* a
    /// cached per-procedure CFG when the identical subroutine reappears at
    /// a different position in an edited program: same content ⇒ same
    /// relative ids, only the base shifts.
    pub fn first_stmt_id(&self) -> Option<StmtId> {
        fn min_block(b: &Block) -> Option<u32> {
            b.stmts.iter().filter_map(min_stmt).min()
        }
        fn min_stmt(s: &Stmt) -> Option<u32> {
            let nested = match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    let t = min_block(then_blk);
                    let e = else_blk.as_ref().and_then(min_block);
                    match (t, e) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (x, None) | (None, x) => x,
                    }
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => min_block(body),
                _ => None,
            };
            Some(match nested {
                Some(n) => s.id.0.min(n),
                None => s.id.0,
            })
        }
        min_block(&self.body).map(StmtId)
    }
}

/// A `{ ... }` sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement with identity and location.
#[derive(Debug, Clone)]
pub struct Stmt {
    pub id: StmtId,
    pub kind: StmtKind,
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `var x: ty;` or `var x: ty = init;`
    Local { decl: VarDecl, init: Option<Expr> },
    /// `lhs = rhs;`
    Assign { lhs: LValue, rhs: Expr },
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }`
    While { cond: Expr, body: Block },
    /// `for i = lo, hi[, step] { .. }` — inclusive bounds, Fortran `do`.
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Block,
    },
    /// `call f(a, b, ...);` — lvalue arguments bind by reference.
    Call { name: String, args: Vec<Expr> },
    /// `return;`
    Return,
    /// An MPI communication statement.
    Mpi(MpiStmt),
    /// `read(x);` — external input (e.g. file read on the root process).
    Read(LValue),
    /// `print(e);` — external output; not a dependent unless selected.
    Print(Expr),
}

/// Reduction operators accepted by `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    Sum,
    Prod,
    Max,
    Min,
}

impl fmt::Display for RedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedOp::Sum => write!(f, "SUM"),
            RedOp::Prod => write!(f, "PROD"),
            RedOp::Max => write!(f, "MAX"),
            RedOp::Min => write!(f, "MIN"),
        }
    }
}

/// MPI statements. Point-to-point carries destination/source rank, a tag, and
/// an optional communicator (defaulting to `COMM_WORLD`, spelled `0`).
/// Collectives carry a root rank (where applicable) and optional communicator.
#[derive(Debug, Clone)]
pub enum MpiStmt {
    /// `send(buf, dest, tag[, comm]);` / `isend(...)`.
    Send {
        buf: LValue,
        dest: Expr,
        tag: Expr,
        comm: Option<Expr>,
        blocking: bool,
    },
    /// `recv(buf, src, tag[, comm]);` / `irecv(...)`. `src`/`tag` may be `ANY`.
    Recv {
        buf: LValue,
        src: Expr,
        tag: Expr,
        comm: Option<Expr>,
        blocking: bool,
    },
    /// `bcast(buf, root[, comm]);` — root sends, everyone else receives.
    Bcast {
        buf: LValue,
        root: Expr,
        comm: Option<Expr>,
    },
    /// `reduce(OP, sendval, recvbuf, root[, comm]);`
    Reduce {
        op: RedOp,
        send: Expr,
        recv: LValue,
        root: Expr,
        comm: Option<Expr>,
    },
    /// `allreduce(OP, sendval, recvbuf[, comm]);`
    Allreduce {
        op: RedOp,
        send: Expr,
        recv: LValue,
        comm: Option<Expr>,
    },
    /// `barrier();`
    Barrier,
    /// `wait();` — completes the most recent nonblocking operation.
    Wait,
}

impl MpiStmt {
    /// Short mnemonic for display/debugging.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MpiStmt::Send { blocking: true, .. } => "send",
            MpiStmt::Send {
                blocking: false, ..
            } => "isend",
            MpiStmt::Recv { blocking: true, .. } => "recv",
            MpiStmt::Recv {
                blocking: false, ..
            } => "irecv",
            MpiStmt::Bcast { .. } => "bcast",
            MpiStmt::Reduce { .. } => "reduce",
            MpiStmt::Allreduce { .. } => "allreduce",
            MpiStmt::Barrier => "barrier",
            MpiStmt::Wait => "wait",
        }
    }
}

/// A storage reference: a bare variable or an array element.
#[derive(Debug, Clone)]
pub struct LValue {
    pub name: String,
    /// Empty for whole-variable references; one expression per dimension
    /// for element references.
    pub indices: Vec<Expr>,
    pub span: Span,
}

impl LValue {
    pub fn var(name: impl Into<String>, span: Span) -> Self {
        LValue {
            name: name.into(),
            indices: Vec::new(),
            span,
        }
    }

    pub fn is_whole(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for `+ - * /`, whose operands flow differentiably to the result.
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Intrinsic functions usable inside expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Abs,
    Max,
    Min,
    /// Integer modulus, common in rank arithmetic; non-differentiable.
    Mod,
}

impl Intrinsic {
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Abs => "abs",
            Intrinsic::Max => "max",
            Intrinsic::Min => "min",
            Intrinsic::Mod => "mod",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "abs" => Intrinsic::Abs,
            "max" => Intrinsic::Max,
            "min" => Intrinsic::Min,
            "mod" => Intrinsic::Mod,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Max | Intrinsic::Min | Intrinsic::Mod => 2,
            _ => 1,
        }
    }

    /// Whether derivatives flow through this intrinsic's arguments.
    /// `mod` is treated as non-differentiable (integer arithmetic).
    pub fn is_differentiable(self) -> bool {
        !matches!(self, Intrinsic::Mod)
    }
}

/// An expression with its source span.
#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// Expression forms.
#[derive(Debug, Clone)]
pub enum ExprKind {
    IntLit(i64),
    RealLit(f64),
    BoolLit(bool),
    /// A scalar read or array-element read.
    Var(LValue),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// The calling process's rank in `COMM_WORLD`.
    Rank,
    /// The number of processes.
    Nprocs,
    /// The `ANY` wildcard, valid only as a `recv` source or tag.
    AnyWildcard,
    Intrinsic(Intrinsic, Vec<Expr>),
}

impl Expr {
    pub fn int(v: i64, span: Span) -> Self {
        Expr {
            kind: ExprKind::IntLit(v),
            span,
        }
    }

    /// If this expression is a bare variable reference (no indices), its name.
    pub fn as_bare_var(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Var(lv) if lv.is_whole() => Some(&lv.name),
            _ => None,
        }
    }

    /// If this expression is a variable or array-element reference, the lvalue.
    pub fn as_lvalue(&self) -> Option<&LValue> {
        match &self.kind {
            ExprKind::Var(lv) => Some(lv),
            _ => None,
        }
    }

    /// Collect the names of every variable mentioned anywhere in the
    /// expression, including inside array indices.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Var(lv) => {
                out.push(lv.name.clone());
                for ix in &lv.indices {
                    ix.collect_vars(out);
                }
            }
            ExprKind::Unary(_, e) => e.collect_vars(out),
            ExprKind::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            ExprKind::Intrinsic(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            ExprKind::IntLit(_)
            | ExprKind::RealLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Rank
            | ExprKind::Nprocs
            | ExprKind::AnyWildcard => {}
        }
    }
}

/// Walk every statement in a block in source order, recursing into nested
/// blocks, and apply `f`.
pub fn visit_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        match &stmt.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                visit_stmts(then_blk, f);
                if let Some(e) = else_blk {
                    visit_stmts(e, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit_stmts(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::DUMMY
    }

    #[test]
    fn bare_var_detection() {
        let e = Expr {
            kind: ExprKind::Var(LValue::var("x", sp())),
            span: sp(),
        };
        assert_eq!(e.as_bare_var(), Some("x"));
        let idx = Expr {
            kind: ExprKind::Var(LValue {
                name: "a".into(),
                indices: vec![Expr::int(1, sp())],
                span: sp(),
            }),
            span: sp(),
        };
        assert_eq!(idx.as_bare_var(), None);
        assert_eq!(idx.as_lvalue().unwrap().name, "a");
    }

    #[test]
    fn collect_vars_includes_indices() {
        let e = Expr {
            kind: ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr {
                    kind: ExprKind::Var(LValue {
                        name: "a".into(),
                        indices: vec![Expr {
                            kind: ExprKind::Var(LValue::var("i", sp())),
                            span: sp(),
                        }],
                        span: sp(),
                    }),
                    span: sp(),
                }),
                Box::new(Expr {
                    kind: ExprKind::Var(LValue::var("b", sp())),
                    span: sp(),
                }),
            ),
            span: sp(),
        };
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(
            vars,
            vec!["a".to_string(), "i".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn intrinsic_properties() {
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("nope"), None);
        assert_eq!(Intrinsic::Max.arity(), 2);
        assert_eq!(Intrinsic::Sin.arity(), 1);
        assert!(Intrinsic::Exp.is_differentiable());
        assert!(!Intrinsic::Mod.is_differentiable());
    }

    #[test]
    fn mnemonics() {
        let lv = LValue::var("x", sp());
        let e = || Expr::int(0, sp());
        let s = MpiStmt::Send {
            buf: lv.clone(),
            dest: e(),
            tag: e(),
            comm: None,
            blocking: true,
        };
        assert_eq!(s.mnemonic(), "send");
        let i = MpiStmt::Send {
            buf: lv,
            dest: e(),
            tag: e(),
            comm: None,
            blocking: false,
        };
        assert_eq!(i.mnemonic(), "isend");
        assert_eq!(MpiStmt::Barrier.mnemonic(), "barrier");
    }

    #[test]
    fn binop_arith_classification() {
        assert!(BinOp::Add.is_arith());
        assert!(BinOp::Div.is_arith());
        assert!(!BinOp::Lt.is_arith());
        assert!(!BinOp::And.is_arith());
    }
}
