//! Communication-edge matching ablation (Section 4.1).
//!
//! "We perform an interprocedural reaching constants analysis and perform a
//! matching using the MPI semantics to reduce the number of communication
//! edges that are conservatively necessary." This bench compares the three
//! matching strategies on every benchmark: edge counts (printed) and the
//! cost of building the MPI-ICFG under each.

use mpi_dfa_analyses::mpi_match::{build_mpi_icfg, Matching};
use mpi_dfa_bench::{criterion_group, criterion_main, Criterion};
use mpi_dfa_suite::all_experiments;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    println!("\nCommunication edges per matching strategy:");
    println!(
        "{:<10} {:>8} {:>10} {:>18}",
        "Bench", "naive", "syntactic", "reaching-consts"
    );
    let mut seen = std::collections::HashSet::new();
    for spec in all_experiments() {
        if !seen.insert((spec.program, spec.context, spec.clone_level)) {
            continue;
        }
        let ir = mpi_dfa_suite::programs::ir(spec.program);
        let naive =
            build_mpi_icfg(ir.clone(), spec.context, spec.clone_level, Matching::Naive).unwrap();
        let syn = build_mpi_icfg(
            ir.clone(),
            spec.context,
            spec.clone_level,
            Matching::Syntactic,
        )
        .unwrap();
        let rc = build_mpi_icfg(
            ir,
            spec.context,
            spec.clone_level,
            Matching::ReachingConstants,
        )
        .unwrap();
        println!(
            "{:<10} {:>8} {:>10} {:>18}",
            spec.id,
            naive.comm_edges.len(),
            syn.comm_edges.len(),
            rc.comm_edges.len()
        );
    }

    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for (label, matching) in [
        ("naive", Matching::Naive),
        ("syntactic", Matching::Syntactic),
        ("reaching_constants", Matching::ReachingConstants),
    ] {
        group.bench_function(label, |b| {
            let ir = mpi_dfa_suite::programs::ir("mg");
            b.iter(|| black_box(build_mpi_icfg(ir.clone(), "mg3P", 3, matching).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
