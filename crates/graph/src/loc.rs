//! Abstract locations: the variable universe the analyses run over.
//!
//! Every global, parameter, and local of the compiled program gets a dense
//! [`Loc`] id. Clones of a procedure share the original's locations — context
//! sensitivity comes from duplicating *nodes* (so facts no longer merge), not
//! from duplicating the symbol space; this also makes active-byte accounting
//! count each program symbol once, as the paper's Table 1 does.
//!
//! One synthetic location, [`LocTable::MPI_BUFFER`], models the conservative
//! "all sends write / all receives read a single global buffer" assumption
//! the paper uses for the baseline ICFG analysis (Section 2).

use mpi_dfa_lang::symbols::SymKind;
use mpi_dfa_lang::types::{BaseType, Type};
use mpi_dfa_lang::CompiledUnit;
use std::collections::HashMap;
use std::fmt;

/// Dense abstract-location id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u32);

impl Loc {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Procedure id: index into `Program::subs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one abstract location.
#[derive(Debug, Clone)]
pub struct LocInfo {
    /// Source name (`__mpi_buffer` for the synthetic buffer).
    pub name: String,
    /// Owning procedure, or `None` for globals and synthetics.
    pub proc: Option<ProcId>,
    /// Declared type; the synthetic buffer is an 8-byte real.
    pub ty: Type,
}

impl LocInfo {
    /// Storage size in bytes (arrays at full size), the unit of the paper's
    /// ActiveBytes metric.
    pub fn byte_size(&self) -> u64 {
        self.ty.byte_size()
    }

    /// True for floating-point data (what activity analysis tracks).
    pub fn is_float(&self) -> bool {
        self.ty.base.is_float()
    }

    pub fn is_array(&self) -> bool {
        self.ty.is_array()
    }
}

/// The interned location table for one compiled program.
#[derive(Debug, Clone)]
pub struct LocTable {
    infos: Vec<LocInfo>,
    /// (proc index or NONE, name) → Loc. Globals keyed with `usize::MAX`.
    by_name: HashMap<(usize, String), Loc>,
    num_globals: usize,
}

const GLOBAL_KEY: usize = usize::MAX;

impl LocTable {
    /// The synthetic global communication buffer (always id 0).
    pub const MPI_BUFFER: Loc = Loc(0);

    /// Build the table for a compiled unit: synthetic buffer, then globals,
    /// then per-procedure params and locals in declaration order.
    pub fn build(unit: &CompiledUnit) -> Self {
        let mut t = LocTable {
            infos: Vec::new(),
            by_name: HashMap::new(),
            num_globals: unit.symbols.globals.len(),
        };
        t.infos.push(LocInfo {
            name: "__mpi_buffer".to_string(),
            proc: None,
            ty: Type::scalar(BaseType::Real),
        });
        for g in &unit.symbols.globals {
            t.intern(GLOBAL_KEY, &g.name, None, g.ty.clone());
        }
        for (pi, sub) in unit.program.subs.iter().enumerate() {
            let ss = unit.symbols.sub(&sub.name);
            for p in &ss.params {
                t.intern(pi, &p.name, Some(ProcId(pi as u32)), p.ty.clone());
            }
            for l in &ss.locals {
                t.intern(pi, &l.name, Some(ProcId(pi as u32)), l.ty.clone());
            }
        }
        t
    }

    fn intern(&mut self, key: usize, name: &str, proc: Option<ProcId>, ty: Type) -> Loc {
        let loc = Loc(self.infos.len() as u32);
        self.infos.push(LocInfo {
            name: name.to_string(),
            proc,
            ty,
        });
        self.by_name.insert((key, name.to_string()), loc);
        loc
    }

    /// Total number of locations (the `VarSet` universe size).
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Metadata for `loc`.
    pub fn info(&self, loc: Loc) -> &LocInfo {
        &self.infos[loc.index()]
    }

    /// Resolve `name` as seen from procedure `proc` (index), using the same
    /// scoping as sema: procedure scope first, then globals.
    pub fn resolve(&self, proc: ProcId, name: &str) -> Option<Loc> {
        self.by_name
            .get(&(proc.index(), name.to_string()))
            .or_else(|| self.by_name.get(&(GLOBAL_KEY, name.to_string())))
            .copied()
    }

    /// Resolve a global by name.
    pub fn global(&self, name: &str) -> Option<Loc> {
        self.by_name.get(&(GLOBAL_KEY, name.to_string())).copied()
    }

    /// Resolve a symbol-kind from sema (used when lowering).
    pub fn from_symkind(&self, proc: ProcId, name: &str, kind: SymKind) -> Option<Loc> {
        match kind {
            SymKind::Global(_) => self.global(name),
            SymKind::Param(_) | SymKind::Local(_) => {
                self.by_name.get(&(proc.index(), name.to_string())).copied()
            }
        }
    }

    /// Iterate all locations with their infos.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &LocInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (Loc(i as u32), info))
    }

    /// Number of program globals (excluding the synthetic buffer).
    pub fn num_globals(&self) -> usize {
        self.num_globals
    }

    /// Deterministic 128-bit fingerprint of the whole table: every location
    /// in interning order with its name, owning procedure, and type.
    ///
    /// This is the **validity guard for per-procedure artifact reuse** in
    /// the incremental cache (`crates/service`): a cached `ProcCfg` refers
    /// to locations by [`Loc`] index, so it may only be reused when the
    /// location table of the new program assigns exactly the same indices —
    /// i.e. when the fingerprints match. Any edit that adds, removes,
    /// retypes, or reorders a declaration anywhere in the program changes
    /// the fingerprint and forces a (cheap, per-procedure) re-lower.
    pub fn fingerprint(&self) -> u128 {
        let mut h = mpi_dfa_core::hash::Hasher128::new();
        h.write_u64(self.infos.len() as u64);
        h.write_u64(self.num_globals as u64);
        for info in &self.infos {
            h.write_str(&info.name);
            h.write_opt_u64(info.proc.map(|p| u64::from(p.0)));
            h.write_str(&info.ty.to_string());
            h.write_u64(info.byte_size());
        }
        h.finish()
    }

    /// Human-readable name including the owning procedure.
    pub fn qualified_name(&self, loc: Loc) -> String {
        let info = self.info(loc);
        match info.proc {
            Some(_) => format!("{}::{}", info.proc.map(|p| p.0).unwrap_or(0), info.name),
            None => info.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_lang::compile;

    fn table(src: &str) -> (CompiledUnit, LocTable) {
        let unit = compile(src).expect("compile");
        let t = LocTable::build(&unit);
        (unit, t)
    }

    #[test]
    fn buffer_is_loc_zero() {
        let (_, t) = table("program p sub main() { }");
        assert_eq!(LocTable::MPI_BUFFER, Loc(0));
        assert_eq!(t.info(Loc(0)).name, "__mpi_buffer");
        assert_eq!(t.info(Loc(0)).byte_size(), 8);
    }

    #[test]
    fn globals_then_proc_symbols() {
        let (_, t) = table(
            "program p global g: real[10]; sub main() { var x: real; }\n\
             sub f(a: int) { var y: real4[3]; }",
        );
        // buffer + g + x + a + y
        assert_eq!(t.len(), 5);
        let g = t.global("g").unwrap();
        assert_eq!(t.info(g).byte_size(), 80);
        assert!(t.info(g).proc.is_none());
        let x = t.resolve(ProcId(0), "x").unwrap();
        assert_eq!(t.info(x).proc, Some(ProcId(0)));
        let y = t.resolve(ProcId(1), "y").unwrap();
        assert_eq!(t.info(y).byte_size(), 12);
    }

    #[test]
    fn scoping_matches_sema() {
        let (_, t) =
            table("program p global x: real; sub f() { var x: int; } sub g() { x = 1.0; }");
        let f_x = t.resolve(ProcId(0), "x").unwrap();
        let g_x = t.resolve(ProcId(1), "x").unwrap();
        assert_ne!(f_x, g_x, "local shadows global");
        assert_eq!(g_x, t.global("x").unwrap());
    }

    #[test]
    fn same_name_in_different_procs_distinct() {
        let (_, t) = table("program p sub f() { var v: real; } sub g() { var v: real; }");
        assert_ne!(t.resolve(ProcId(0), "v"), t.resolve(ProcId(1), "v"));
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let (_, t) = table("program p sub f() { }");
        assert_eq!(t.resolve(ProcId(0), "nope"), None);
        assert_eq!(t.global("nope"), None);
    }

    #[test]
    fn float_classification_flows_from_types() {
        let (_, t) = table("program p global i: int; global r: real; sub main() { }");
        assert!(!t.info(t.global("i").unwrap()).is_float());
        assert!(t.info(t.global("r").unwrap()).is_float());
    }
}
