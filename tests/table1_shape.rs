//! Integration test over the full Table 1 reproduction: the qualitative
//! claims of Section 5 must hold on every run, and the rows we matched
//! byte-for-byte must stay matched.

use mpi_dfa::suite::runner::{run_all, MeasuredRow};

fn rows() -> Vec<MeasuredRow> {
    run_all()
}

#[test]
fn mpi_icfg_never_increases_active_bytes() {
    for r in rows() {
        assert!(
            r.mpi.active_bytes <= r.icfg.active_bytes,
            "{}: MPI-ICFG {} > ICFG {}",
            r.spec.id,
            r.mpi.active_bytes,
            r.icfg.active_bytes
        );
    }
}

#[test]
fn savings_pattern_matches_the_paper() {
    // Big winners: Biostat, LU-1, LU-3, Sw-3..6. No savings (0–1%):
    // SOR, CG, LU-2, MG-1, MG-2, Sw-1.
    for r in rows() {
        let pct = r.pct_decrease();
        let paper = r.spec.paper.pct_decrease;
        assert!(
            (pct - paper).abs() < 0.05,
            "{}: measured {pct:.2}% vs paper {paper:.2}%",
            r.spec.id
        );
    }
}

#[test]
fn exact_byte_matches_hold() {
    // 11 of 13 rows reproduce the paper's ActiveBytes cells exactly on both
    // sides; the remaining two (Sw-1, Sw-6 ICFG side) are within 150 bytes.
    let exact_both = [
        "Biostat", "SOR", "CG", "LU-2", "MG-1", "MG-2", "Sw-3", "Sw-4", "Sw-5",
    ];
    for r in rows() {
        if exact_both.contains(&r.spec.id) {
            assert_eq!(
                r.icfg.active_bytes, r.spec.paper.icfg.active_bytes,
                "{} ICFG",
                r.spec.id
            );
            assert_eq!(
                r.mpi.active_bytes, r.spec.paper.mpi.active_bytes,
                "{} MPI",
                r.spec.id
            );
        } else {
            // LU-1, LU-3, Sw-1, Sw-6: MPI side exact, ICFG side within 150 B.
            assert_eq!(
                r.mpi.active_bytes, r.spec.paper.mpi.active_bytes,
                "{} MPI",
                r.spec.id
            );
            let diff = r.icfg.active_bytes.abs_diff(r.spec.paper.icfg.active_bytes);
            assert!(diff <= 150, "{}: ICFG off by {diff} bytes", r.spec.id);
        }
    }
}

#[test]
fn deriv_bytes_formula_is_respected() {
    for r in rows() {
        assert_eq!(
            r.icfg.deriv_bytes,
            r.spec.num_indeps * r.icfg.active_bytes,
            "{}",
            r.spec.id
        );
        assert_eq!(
            r.mpi.deriv_bytes,
            r.spec.num_indeps * r.mpi.active_bytes,
            "{}",
            r.spec.id
        );
    }
}

#[test]
fn convergence_is_comparable_between_graphs() {
    // Section 5.3: "the number of iterations over the MPI-ICFG is slightly
    // larger than the number of iterations over the ICFG" — and neither
    // shows worst-case behavior. We assert the same order of magnitude and
    // an overall MPI ≥ ICFG trend (the paper itself has exceptions, e.g.
    // Sw-1: 23 vs 24).
    let rs = rows();
    let mut mpi_ge = 0usize;
    for r in &rs {
        assert!(
            r.icfg.iterations <= 40,
            "{}: ICFG iter {}",
            r.spec.id,
            r.icfg.iterations
        );
        assert!(
            r.mpi.iterations <= 40,
            "{}: MPI iter {}",
            r.spec.id,
            r.mpi.iterations
        );
        if r.mpi.iterations >= r.icfg.iterations {
            mpi_ge += 1;
        }
    }
    assert!(
        mpi_ge * 2 >= rs.len(),
        "MPI-ICFG should usually need at least as many passes"
    );
}

#[test]
fn communication_edges_exist_everywhere() {
    for r in rows() {
        assert!(r.comm_edges > 0, "{}: no communication edges", r.spec.id);
    }
}

#[test]
fn figure4_series_are_consistent_with_table1() {
    for r in rows() {
        let expect_active = (r.icfg.active_bytes - r.mpi.active_bytes) as f64 / 1.0e6;
        assert!(
            (r.active_mb_saved() - expect_active).abs() < 1e-9,
            "{}",
            r.spec.id
        );
        let expect_deriv = (r.icfg.deriv_bytes - r.mpi.deriv_bytes) as f64 / 1.0e6;
        assert!(
            (r.deriv_mb_saved() - expect_deriv).abs() < 1e-9,
            "{}",
            r.spec.id
        );
    }
}

#[test]
fn biostat_saves_gigabytes_of_derivative_storage() {
    // Section 5.2: "the resulting memory savings would be approximately
    // 1.5 gigabytes" for the small Biostat test problem.
    let r = rows().into_iter().find(|r| r.spec.id == "Biostat").unwrap();
    let saved_gb = r.deriv_mb_saved() / 1000.0;
    assert!((saved_gb - 1.56).abs() < 0.01, "saved {saved_gb} GB");
}
