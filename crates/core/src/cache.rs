//! Bounded in-memory LRU caches and a content-addressed on-disk store.
//!
//! This module is the storage substrate of the analysis service
//! (`crates/service`): artifacts produced by the pipeline — per-procedure
//! CFGs, whole-program IRs, finished analysis responses — are keyed by a
//! 128-bit content hash ([`crate::hash`]) and held in a bounded LRU, with
//! an optional spill to a content-addressed directory for results that are
//! cheap to serialize.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** Cache behaviour may change *latency*, never *bytes*:
//!   a hit must return a value observably equal to what a recompute would
//!   produce. The cache therefore stores only values that are pure
//!   functions of their key (the key embeds every configuration input —
//!   see `service::cache` for the key schema) and the eviction policy
//!   never influences results, only hit rates.
//! * **Bounded.** `capacity` caps the entry count; inserting into a full
//!   cache evicts the least-recently-used entry. Capacity 0 disables the
//!   cache (every lookup misses, nothing is retained).
//! * **Observable.** Every cache carries [`CacheCounters`]
//!   (hits/misses/insertions/evictions as relaxed atomics, readable
//!   without locking) and mirrors them into the telemetry sink as
//!   `cache_hits_total{cache="…"}`-style series when tracing is enabled.
//! * **Zero dependencies.** The LRU is a `HashMap` plus a monotonic use
//!   tick; eviction scans for the minimum tick. That is O(n) per eviction,
//!   which is fine at the capacities the service uses (hundreds of entries
//!   holding megabyte-scale artifacts — the artifact build being cached
//!   costs orders of magnitude more than the scan).

use crate::hash::hex128;
use crate::telemetry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counters for one cache, shared between the cache and anyone
/// holding a clone of the handle (tests, metrics exporters).
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
}

/// A point-in-time copy of [`CacheCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheCounters {
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A bounded LRU keyed by a 128-bit content hash.
///
/// Not thread-safe by itself; wrap in [`SharedLru`] to share across the
/// service worker pool.
#[derive(Debug)]
pub struct LruCache<V> {
    name: &'static str,
    capacity: usize,
    tick: u64,
    map: HashMap<u128, (u64, V)>,
    counters: Arc<CacheCounters>,
}

impl<V> LruCache<V> {
    /// An LRU holding at most `capacity` entries. Capacity 0 disables it.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        LruCache {
            name,
            capacity,
            tick: 0,
            map: HashMap::new(),
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// Shared handle to this cache's counters.
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn bump(counter: &AtomicU64, name: &'static str, which: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if telemetry::is_enabled() {
            telemetry::metric_add(
                &telemetry::metric_name(&format!("cache_{which}_total"), &[("cache", name)]),
                1.0,
            );
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((last, v)) => {
                *last = tick;
                Self::bump(&self.counters.hits, self.name, "hits");
                Some(v)
            }
            None => {
                Self::bump(&self.counters.misses, self.name, "misses");
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting the least-recently-used entry
    /// when full. A zero-capacity cache drops the value immediately.
    pub fn put(&mut self, key: u128, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Evict the minimum-tick entry. O(n) scan — see module docs.
            if let Some(&victim) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k) {
                self.map.remove(&victim);
                Self::bump(&self.counters.evictions, self.name, "evictions");
            }
        }
        self.map.insert(key, (self.tick, value));
        Self::bump(&self.counters.insertions, self.name, "insertions");
    }

    /// Does the cache currently hold `key`? Does not refresh recency and
    /// does not count as a hit or a miss.
    pub fn peek(&self, key: u128) -> bool {
        self.map.contains_key(&key)
    }
}

/// A mutex-wrapped [`LruCache`] shared across the worker pool. A poisoned
/// lock is recovered (a panicking analysis job must not take the cache
/// down with it); the cache holds only fully-constructed values inserted
/// after the fallible work finished, so recovered state is consistent.
#[derive(Debug, Clone)]
pub struct SharedLru<V> {
    inner: Arc<Mutex<LruCache<V>>>,
    counters: Arc<CacheCounters>,
}

impl<V: Clone> SharedLru<V> {
    pub fn new(name: &'static str, capacity: usize) -> Self {
        let cache = LruCache::new(name, capacity);
        let counters = cache.counters();
        SharedLru {
            inner: Arc::new(Mutex::new(cache)),
            counters,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruCache<V>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Clone out the cached value for `key`, if present.
    pub fn get(&self, key: u128) -> Option<V> {
        self.lock().get(key).cloned()
    }

    pub fn put(&self, key: u128, value: V) {
        self.lock().put(key, value);
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }

    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }

    /// Get-or-compute: returns the cached value or runs `compute`, caching
    /// its `Ok`. The lock is **not** held during `compute`, so two racing
    /// workers may both compute the same key — both produce the same bytes
    /// (values are pure functions of the key), so last-write-wins is
    /// harmless and the pool never serializes on a slow build.
    pub fn get_or_try_insert<E>(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if let Some(v) = self.get(key) {
            return Ok((v, true));
        }
        let v = compute()?;
        self.put(key, v.clone());
        Ok((v, false))
    }
}

/// A content-addressed on-disk artifact store: one file per key, named by
/// the hex digest, grouped into a namespace directory per artifact kind.
///
/// Writes are atomic (temp file in the same directory + rename) so a
/// crashed or concurrent writer can never leave a torn entry; readers
/// treat any I/O error as a miss — the store is an optimization layer, and
/// a recompute is always available and always correct.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
    counters: Arc<CacheCounters>,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            counters: Arc::new(CacheCounters::default()),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }

    fn path(&self, namespace: &str, key: u128) -> PathBuf {
        self.root.join(namespace).join(hex128(key))
    }

    /// Fetch the bytes stored for `key`, or `None` (including on any I/O
    /// error — a corrupt entry is a miss, not a failure).
    pub fn get(&self, namespace: &str, key: u128) -> Option<Vec<u8>> {
        match std::fs::read(self.path(namespace, key)) {
            Ok(bytes) => {
                LruCache::<()>::bump(&self.counters.hits, "disk", "hits");
                Some(bytes)
            }
            Err(_) => {
                LruCache::<()>::bump(&self.counters.misses, "disk", "misses");
                None
            }
        }
    }

    /// Store `bytes` under `key` atomically. Errors are returned so the
    /// caller can log them, but the caller should treat a failed put as
    /// non-fatal (the store is best-effort).
    pub fn put(&self, namespace: &str, key: u128, bytes: &[u8]) -> std::io::Result<()> {
        let path = self.path(namespace, key);
        let dir = path.parent().expect("store paths always have a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.counters.insertions.load(Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        LruCache::<()>::bump(&self.counters.insertions, "disk", "insertions");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hit_miss_counters() {
        let mut c = LruCache::new("t", 4);
        assert!(c.get(1).is_none());
        c.put(1, "one");
        assert_eq!(c.get(1), Some(&"one"));
        let s = c.counters().snapshot();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new("t", 2);
        c.put(1, 1);
        c.put(2, 2);
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now LRU
        c.put(3, 3);
        assert!(c.peek(1) && c.peek(3) && !c.peek(2));
        assert_eq!(c.counters().snapshot().evictions, 1);
        // Re-inserting an existing key does not evict.
        c.put(1, 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().snapshot().evictions, 1);
        assert_eq!(c.get(1), Some(&10));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new("t", 0);
        c.put(1, 1);
        assert!(c.get(1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn shared_get_or_insert_computes_once_then_hits() {
        let c: SharedLru<u64> = SharedLru::new("t", 8);
        let (v, was_hit) = c.get_or_try_insert::<()>(7, || Ok(42)).unwrap();
        assert_eq!((v, was_hit), (42, false));
        let (v, was_hit) = c
            .get_or_try_insert::<()>(7, || panic!("must not recompute"))
            .unwrap();
        assert_eq!((v, was_hit), (42, true));
        let s = c.counters().snapshot();
        assert_eq!(s.hits, 1);
        // get() inside the first get_or_try_insert counted the miss.
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn shared_error_is_not_cached() {
        let c: SharedLru<u64> = SharedLru::new("t", 8);
        assert!(c.get_or_try_insert(9, || Err("boom")).is_err());
        assert!(c.get(9).is_none());
    }

    #[test]
    fn disk_store_round_trip_and_miss() {
        let dir = std::env::temp_dir().join(format!("mpidfa-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.get("results", 5).is_none());
        store.put("results", 5, b"payload").unwrap();
        assert_eq!(store.get("results", 5).as_deref(), Some(&b"payload"[..]));
        // Reopening sees the same entry (content-addressed, stable names).
        let store2 = DiskStore::open(&dir).unwrap();
        assert_eq!(store2.get("results", 5).as_deref(), Some(&b"payload"[..]));
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("results"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
