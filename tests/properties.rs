//! Property-based tests over randomly generated SPMD programs.
//!
//! These check the invariants the paper's framework relies on, on *every*
//! program the generator can produce — not just the benchmark suite:
//!
//! * the solver converges and all strategies (round-robin, worklist,
//!   region-parallel at several thread counts) agree byte-for-byte;
//! * separable analyses (liveness, reaching definitions) are unaffected by
//!   communication edges;
//! * the communication-edge matching strategies form a precision ladder;
//! * MPI-ICFG activity results never exceed the conservative baseline's
//!   communicated-data activity;
//! * analysis results are deterministic.
//!
//! The workspace builds fully offline, so instead of `proptest` each
//! property sweeps a deterministic sample of generator seeds drawn from a
//! `SplitMix64` stream; a failing case names its seed for replay.

use mpi_dfa::analyses::{consts, liveness, reaching_defs};
use mpi_dfa::lang::rng::SplitMix64;
use mpi_dfa::prelude::*;
use mpi_dfa::suite::gen::{generate, GenConfig};

fn build(seed: u64) -> std::sync::Arc<mpi_dfa::graph::icfg::ProgramIr> {
    let src = generate(seed, &GenConfig::default());
    ProgramIr::from_source(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

/// 24 deterministic generator seeds in `[0, 10_000)`, mirroring the old
/// proptest configuration (`cases: 24`, `seed in 0u64..10_000`).
fn seeds(stream: u64) -> Vec<u64> {
    let mut rng = SplitMix64::fork(0xC0FFEE, stream);
    (0..24).map(|_| rng.below(10_000) as u64).collect()
}

#[test]
fn solvers_agree_and_converge() {
    for seed in seeds(1) {
        let ir = build(seed);
        let mpi = build_mpi_icfg(ir, "main", 1, Matching::ReachingConstants).unwrap();
        let problem = consts::ReachingConsts::new(mpi.icfg());
        let rr = Solver::new(&problem, &mpi)
            .strategy(Strategy::RoundRobin)
            .run();
        let wl = Solver::new(&problem, &mpi)
            .strategy(Strategy::Worklist)
            .run();
        assert!(rr.stats.converged, "seed {seed}");
        assert!(wl.stats.converged, "seed {seed}");
        assert_eq!(&rr.input, &wl.input, "seed {seed}");
        assert_eq!(&rr.output, &wl.output, "seed {seed}");
        // The region-parallel engine must be byte-identical at any thread
        // count — parallelism changes wall-clock, never facts.
        for threads in [1usize, 2, 8] {
            let rp = Solver::new(&problem, &mpi)
                .strategy(Strategy::RegionParallel { threads })
                .run();
            assert!(rp.stats.converged, "seed {seed}, {threads} threads");
            assert_eq!(&rp.input, &wl.input, "seed {seed}, {threads} threads");
            assert_eq!(&rp.output, &wl.output, "seed {seed}, {threads} threads");
        }
        // No hard work-count relation holds in general (a FIFO worklist can
        // revisit more than an RPO sweep on some shapes); both must stay
        // within the same order of magnitude though.
        assert!(
            wl.stats.node_visits <= 10 * rr.stats.node_visits.max(1),
            "seed {seed}"
        );
    }
}

#[test]
fn separable_analyses_ignore_comm_edges() {
    for seed in seeds(2) {
        let ir = build(seed);
        let icfg = Icfg::build(ir.clone(), "main", 0).unwrap();
        let mpi = build_mpi_icfg(ir, "main", 0, Matching::Naive).unwrap();

        let live_plain = liveness::analyze(&icfg, &icfg);
        let live_comm = liveness::analyze(&mpi, mpi.icfg());
        assert_eq!(&live_plain.input, &live_comm.input, "seed {seed}");
        assert_eq!(&live_plain.output, &live_comm.output, "seed {seed}");

        let (_, rd_plain) = reaching_defs::analyze(&icfg, &icfg);
        let (_, rd_comm) = reaching_defs::analyze(&mpi, mpi.icfg());
        assert_eq!(&rd_plain.input, &rd_comm.input, "seed {seed}");
        assert_eq!(&rd_plain.output, &rd_comm.output, "seed {seed}");
    }
}

#[test]
fn matching_strategies_form_a_ladder() {
    for seed in seeds(3) {
        let ir = build(seed);
        let naive = build_mpi_icfg(ir.clone(), "main", 0, Matching::Naive).unwrap();
        let syn = build_mpi_icfg(ir.clone(), "main", 0, Matching::Syntactic).unwrap();
        let rc = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
        assert!(
            syn.comm_edges.len() <= naive.comm_edges.len(),
            "seed {seed}"
        );
        assert!(rc.comm_edges.len() <= syn.comm_edges.len(), "seed {seed}");
        // Refined edges must be a subset of the naive all-pairs edges.
        for e in &rc.comm_edges {
            assert!(naive.comm_edges.contains(e), "seed {seed}");
        }
    }
}

#[test]
fn activity_is_deterministic() {
    for seed in seeds(4) {
        let ir = build(seed);
        let config = ActivityConfig::new(["s0"], ["s1"]);
        let mpi = build_mpi_icfg(ir, "main", 1, Matching::ReachingConstants).unwrap();
        let a = activity::analyze_mpi(&mpi, &config).unwrap();
        let b = activity::analyze_mpi(&mpi, &config).unwrap();
        assert_eq!(a.active, b.active, "seed {seed}");
        assert_eq!(a.active_bytes, b.active_bytes, "seed {seed}");
        assert_eq!(a.iterations, b.iterations, "seed {seed}");
    }
}

#[test]
fn fewer_comm_edges_never_hurt_precision() {
    for seed in seeds(5) {
        // Refining the matching can only shrink the active set: a subset of
        // communication edges means fewer "arriving" facts in Vary and
        // fewer "needed" facts in Useful.
        let ir = build(seed);
        let config = ActivityConfig::new(["s0"], ["s1"]);
        let naive = build_mpi_icfg(ir.clone(), "main", 0, Matching::Naive).unwrap();
        let rc = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
        let coarse = activity::analyze_mpi(&naive, &config).unwrap();
        let fine = activity::analyze_mpi(&rc, &config).unwrap();
        assert!(
            fine.active.is_subset(&coarse.active),
            "seed {seed}: refined matching must not add active locations"
        );
        assert!(fine.active_bytes <= coarse.active_bytes, "seed {seed}");
    }
}

#[test]
fn vary_always_contains_the_independents() {
    for seed in seeds(6) {
        let ir = build(seed);
        let mpi = build_mpi_icfg(ir.clone(), "main", 0, Matching::ReachingConstants).unwrap();
        let config = ActivityConfig::new(["s0"], ["s1"]);
        let res = activity::analyze_mpi(&mpi, &config).unwrap();
        let s0 = ir.locs.global("s0").unwrap();
        for n in 0..mpi_dfa::core::FlowGraph::num_nodes(&mpi) {
            assert!(
                res.vary.output[n].contains(s0.index()),
                "seed {seed}, node {n}"
            );
        }
    }
}

#[test]
fn interpreter_matches_across_runs() {
    // Generated programs may deadlock (unmatched sends/recvs), so only
    // compare the runs that complete — completion must be deterministic.
    use mpi_dfa::lang::interp::{run, InterpConfig, RuntimeLimits};
    let mut rng = SplitMix64::fork(0xC0FFEE, 7);
    for _ in 0..24 {
        let seed = rng.below(300) as u64;
        let src = generate(
            seed,
            &GenConfig {
                mpi_percent: 10,
                ..GenConfig::default()
            },
        );
        let unit = compile(&src).unwrap();
        let cfg = InterpConfig {
            nprocs: 2,
            limits: RuntimeLimits {
                recv_timeout: std::time::Duration::from_millis(300),
                max_steps: 200_000,
            },
            ..Default::default()
        };
        let a = run(&unit.program, &cfg);
        let b = run(&unit.program, &cfg);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                for (x, y) in ra.iter().zip(&rb) {
                    assert_eq!(&x.printed, &y.printed, "seed {seed}");
                }
            }
            (Err(_), Err(_)) => {} // deterministic failure is fine
            (a, b) => panic!("seed {seed}: one run failed, one succeeded: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn interpreter_is_deterministic_under_fault_plans() {
    // Runs under a fixed FaultPlan seed must be bit-for-bit reproducible:
    // fault decisions come from per-rank streams forked off the plan seed,
    // so they do not depend on OS thread interleaving (generated runnable
    // programs contain no wildcard receives). Same final globals, same
    // trace lengths (steps/sends/recvs), same printed output.
    use mpi_dfa::lang::fault::FaultPlan;
    use mpi_dfa::lang::interp::{run, InterpConfig, RuntimeLimits};
    let mut rng = SplitMix64::fork(0xDE7E12, 0);
    let mut compared = 0;
    for case in 0..12u64 {
        let gen_seed = rng.below(10_000) as u64;
        let fault_seed = rng.next_u64();
        let src = generate(
            gen_seed,
            &GenConfig {
                mpi_percent: 12,
                runnable: true,
                ..GenConfig::default()
            },
        );
        let unit = compile(&src).unwrap();
        let cfg = InterpConfig {
            nprocs: 2,
            limits: RuntimeLimits {
                recv_timeout: std::time::Duration::from_millis(400),
                max_steps: 500_000,
            },
            capture_globals: true,
            fault_plan: Some(FaultPlan::adversarial(fault_seed)),
            ..Default::default()
        };
        let a = run(&unit.program, &cfg);
        let b = run(&unit.program, &cfg);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.len(), rb.len());
                for (rank, (x, y)) in ra.iter().zip(&rb).enumerate() {
                    let ctx =
                        format!("case {case} (gen {gen_seed}, fault {fault_seed}) rank {rank}");
                    assert_eq!(x.final_globals, y.final_globals, "{ctx}: globals diverged");
                    assert_eq!(x.steps, y.steps, "{ctx}: step counts diverged");
                    assert_eq!(x.sends, y.sends, "{ctx}: send counts diverged");
                    assert_eq!(x.recvs, y.recvs, "{ctx}: recv counts diverged");
                    assert_eq!(x.printed, y.printed, "{ctx}: printed output diverged");
                }
                compared += 1;
            }
            (Err(_), Err(_)) => {} // deterministic failure is acceptable
            (a, b) => panic!(
                "case {case} (gen {gen_seed}, fault {fault_seed}): nondeterministic outcome: \
                 {a:?} vs {b:?}"
            ),
        }
    }
    assert!(compared >= 6, "too few completing cases ({compared})");
}

#[test]
fn cloning_refines_but_never_unsoundly_shrinks_comm_structure() {
    // Higher clone levels split shared wrapper instances; the per-site
    // communication structure must cover the shared one's behaviors. We
    // check a weaker structural invariant that must always hold: each clone
    // level produces a graph whose MPI node multiset projects onto the
    // level-0 node set.
    for seed in 0..20u64 {
        let ir = build(seed);
        let base = build_mpi_icfg(ir.clone(), "main", 0, Matching::Naive).unwrap();
        let cloned = build_mpi_icfg(ir, "main", 2, Matching::Naive).unwrap();
        let base_kinds = mpi_kinds(&base);
        let clone_kinds = mpi_kinds(&cloned);
        for k in &base_kinds {
            assert!(
                clone_kinds.contains(k),
                "seed {seed}: clone lost an MPI op kind {k:?}"
            );
        }
        assert!(clone_kinds.len() >= base_kinds.len());
    }
}

fn mpi_kinds(g: &MpiIcfg) -> Vec<mpi_dfa::graph::node::MpiKind> {
    use mpi_dfa::graph::node::NodeKind;
    g.mpi_nodes()
        .iter()
        .map(|&n| match &g.payload(n).kind {
            NodeKind::Mpi(m) => m.kind,
            _ => unreachable!(),
        })
        .collect()
}
