//! The flow-graph abstraction the solver runs over.
//!
//! The framework is deliberately independent of any concrete IR: anything
//! that exposes nodes, typed edges (control-flow, interprocedural
//! call/return, and *communication* edges), and boundary nodes can be
//! analyzed. The `mpi-dfa-graph` crate implements this trait for the ICFG
//! and MPI-ICFG; tests here use a tiny hand-built [`SimpleGraph`].

use std::fmt;

/// Dense node identifier within one flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Edge classification. Data-flow facts are *translated* across `Call` /
/// `Return` edges (actual↔formal renaming) and flow unchanged across `Flow`
/// edges. `Comm` edges carry communication facts computed by `f_comm`
/// instead of ordinary facts — the key distinction of the paper's framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Intraprocedural control flow.
    Flow,
    /// Call-site node → callee entry. `site` identifies the call site so the
    /// problem can look up actual/formal bindings.
    Call { site: u32 },
    /// Callee exit → return node of call site `site`.
    Return { site: u32 },
    /// Communication edge (send → receive, or among collective calls).
    /// `pair` identifies the edge in the graph's communication-edge table.
    Comm { pair: u32 },
}

impl EdgeKind {
    pub fn is_comm(self) -> bool {
        matches!(self, EdgeKind::Comm { .. })
    }
}

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    pub kind: EdgeKind,
}

/// Graphs the solver can run over. Implementations store adjacency lists;
/// `in_edges`/`out_edges` include communication edges (kind
/// [`EdgeKind::Comm`]) — the solver filters by kind.
pub trait FlowGraph {
    /// Number of nodes; ids are `0..num_nodes`.
    fn num_nodes(&self) -> usize;

    /// Edges arriving at `n`.
    fn in_edges(&self, n: NodeId) -> &[Edge];

    /// Edges leaving `n`.
    fn out_edges(&self, n: NodeId) -> &[Edge];

    /// Boundary nodes for forward analyses (program/context entry).
    fn entries(&self) -> &[NodeId];

    /// Boundary nodes for backward analyses (program/context exit).
    fn exits(&self) -> &[NodeId];
}

/// Reverse postorder over all edge kinds, starting from `roots`, following
/// `out_edges` (pass the exits and swap direction for backward problems).
/// Nodes unreachable from the roots are appended in index order so every
/// node still gets visited.
pub fn reverse_postorder<G: FlowGraph>(graph: &G, roots: &[NodeId], backward: bool) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS: (node, next edge index).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for &root in roots {
        if visited[root.index()] {
            continue;
        }
        visited[root.index()] = true;
        stack.push((root, 0));
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let edges = if backward {
                graph.in_edges(node)
            } else {
                graph.out_edges(node)
            };
            if *idx < edges.len() {
                let e = edges[*idx];
                *idx += 1;
                let next = if backward { e.from } else { e.to };
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
    }
    postorder.reverse();
    for (i, seen) in visited.iter().enumerate() {
        if !seen {
            postorder.push(NodeId(i as u32));
        }
    }
    postorder
}

/// A minimal adjacency-list graph for tests, documentation examples, and the
/// framework's own unit tests.
#[derive(Debug, Clone, Default)]
pub struct SimpleGraph {
    in_edges: Vec<Vec<Edge>>,
    out_edges: Vec<Vec<Edge>>,
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
}

impl SimpleGraph {
    pub fn new(num_nodes: usize) -> Self {
        SimpleGraph {
            in_edges: vec![Vec::new(); num_nodes],
            out_edges: vec![Vec::new(); num_nodes],
            entries: Vec::new(),
            exits: Vec::new(),
        }
    }

    pub fn add_edge(&mut self, from: u32, to: u32, kind: EdgeKind) {
        let e = Edge {
            from: NodeId(from),
            to: NodeId(to),
            kind,
        };
        self.out_edges[from as usize].push(e);
        self.in_edges[to as usize].push(e);
    }

    pub fn flow(&mut self, from: u32, to: u32) {
        self.add_edge(from, to, EdgeKind::Flow);
    }

    pub fn comm(&mut self, from: u32, to: u32, pair: u32) {
        self.add_edge(from, to, EdgeKind::Comm { pair });
    }

    pub fn set_entry(&mut self, n: u32) {
        self.entries.push(NodeId(n));
    }

    pub fn set_exit(&mut self, n: u32) {
        self.exits.push(NodeId(n));
    }
}

impl FlowGraph for SimpleGraph {
    fn num_nodes(&self) -> usize {
        self.out_edges.len()
    }

    fn in_edges(&self, n: NodeId) -> &[Edge] {
        &self.in_edges[n.index()]
    }

    fn out_edges(&self, n: NodeId) -> &[Edge] {
        &self.out_edges[n.index()]
    }

    fn entries(&self) -> &[NodeId] {
        &self.entries
    }

    fn exits(&self) -> &[NodeId] {
        &self.exits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SimpleGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = SimpleGraph::new(4);
        g.flow(0, 1);
        g.flow(0, 2);
        g.flow(1, 3);
        g.flow(2, 3);
        g.set_entry(0);
        g.set_exit(3);
        g
    }

    #[test]
    fn rpo_visits_preds_first_in_dags() {
        let g = diamond();
        let order = reverse_postorder(&g, g.entries(), false);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|n| n.0 == i as u32).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn backward_rpo_reverses_roles() {
        let g = diamond();
        let order = reverse_postorder(&g, g.exits(), true);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|n| n.0 == i as u32).unwrap())
            .collect();
        assert!(pos[3] < pos[1]);
        assert!(pos[3] < pos[2]);
        assert!(pos[1] < pos[0]);
    }

    #[test]
    fn unreachable_nodes_are_appended() {
        let mut g = SimpleGraph::new(3);
        g.flow(0, 1);
        g.set_entry(0);
        let order = reverse_postorder(&g, g.entries(), false);
        assert_eq!(order.len(), 3);
        assert!(order.contains(&NodeId(2)));
    }

    #[test]
    fn cycles_terminate() {
        let mut g = SimpleGraph::new(3);
        g.flow(0, 1);
        g.flow(1, 2);
        g.flow(2, 1); // loop
        g.set_entry(0);
        let order = reverse_postorder(&g, g.entries(), false);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn comm_edges_participate_in_ordering() {
        let mut g = SimpleGraph::new(3);
        g.flow(0, 1);
        g.comm(1, 2, 0);
        g.set_entry(0);
        let order = reverse_postorder(&g, g.entries(), false);
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|n| n.0 == i as u32).unwrap())
            .collect();
        assert!(pos[1] < pos[2], "comm successor ordered after its source");
    }

    #[test]
    fn edge_kind_helpers() {
        assert!(EdgeKind::Comm { pair: 0 }.is_comm());
        assert!(!EdgeKind::Flow.is_comm());
        assert!(!EdgeKind::Call { site: 1 }.is_comm());
    }
}
