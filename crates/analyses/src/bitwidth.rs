//! Bitwidth analysis over the MPI-ICFG.
//!
//! The third nonseparable client the paper names (Section 1, citing
//! Stephenson et al.'s bitwidth analysis for silicon compilation): determine
//! how many bits each variable actually needs, so hardware synthesis or
//! packed-storage transformations can narrow them.
//!
//! The analysis is a forward problem with the per-location lattice
//! "required width in bits", ordered 0 (⊤, no information) ⊑ … ⊑ 64 (⊥,
//! full width); meet is `max`. It is nonseparable: the width of `y` after
//! `y = a + b` depends on the widths of `a` and `b`.
//!
//! MPI semantics make it interesting: a received variable's width is the
//! maximum over the widths transmitted by the *matching* sends. Without
//! communication edges a receive must be assumed full-width, which poisons
//! every variable computed from received data — the same precision collapse
//! activity analysis suffers (and the same fix).

use crate::interproc::BindMaps;
use mpi_dfa_core::graph::{Edge, EdgeKind, FlowGraph, NodeId};
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_core::solver::{Solution, Solver};
use mpi_dfa_graph::icfg::{ActualBinding, Icfg};
use mpi_dfa_graph::loc::{Loc, LocTable};
use mpi_dfa_graph::mpi::MpiIcfg;
use mpi_dfa_graph::node::{MpiKind, NodeKind, RefInfo};
use mpi_dfa_lang::ast::{BinOp, Expr, ExprKind, Intrinsic, UnOp};

/// Bits required to represent a variable's value. 0 = no information (⊤);
/// 64 = full machine width (⊥). Floating-point data is always 64.
pub const FULL: u8 = 64;

/// Bits needed for the non-negative integer magnitude `v` (plus sign).
pub fn bits_for(v: i64) -> u8 {
    let mag = v.unsigned_abs();
    let bits = 64 - mag.leading_zeros() as u8;
    // one sign bit; zero still takes one bit of storage
    (bits + 1).clamp(1, FULL)
}

/// Per-location widths: the fact type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthEnv(pub Vec<u8>);

impl WidthEnv {
    pub fn top(universe: usize) -> Self {
        WidthEnv(vec![0; universe])
    }

    pub fn get(&self, loc: Loc) -> u8 {
        self.0[loc.index()]
    }

    fn set(&mut self, loc: Loc, w: u8) {
        self.0[loc.index()] = w.min(FULL);
    }

    fn widen(&mut self, loc: Loc, w: u8) {
        let cur = self.0[loc.index()];
        self.0[loc.index()] = cur.max(w.min(FULL));
    }
}

/// How communication affects widths (mirrors the activity modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthMode {
    /// Receives produce full-width data (no communication model).
    Conservative,
    /// Received width = max over matching sends' transmitted widths.
    MpiIcfg,
}

/// The bitwidth problem.
pub struct Bitwidth<'g> {
    icfg: &'g Icfg,
    maps: BindMaps,
    mode: WidthMode,
    universe: usize,
    /// Width assumed for `rank()` / `nprocs()` (bits for the largest
    /// supported process count; 16 allows 32767 ranks).
    pub rank_bits: u8,
}

impl<'g> Bitwidth<'g> {
    pub fn new(icfg: &'g Icfg, mode: WidthMode) -> Self {
        Bitwidth {
            icfg,
            maps: BindMaps::build(icfg),
            mode,
            universe: icfg.ir.locs.len(),
            rank_bits: 16,
        }
    }

    fn eval(&self, e: &Expr, env: &WidthEnv, node: NodeId) -> u8 {
        match &e.kind {
            ExprKind::IntLit(v) => bits_for(*v),
            ExprKind::RealLit(_) => FULL,
            ExprKind::BoolLit(_) => 1,
            ExprKind::Rank | ExprKind::Nprocs => self.rank_bits,
            ExprKind::AnyWildcard => FULL,
            ExprKind::Var(lv) => match self.icfg.resolve_at(node, &lv.name) {
                Some(loc) => {
                    let info = self.icfg.ir.locs.info(loc);
                    if info.is_float() {
                        FULL
                    } else {
                        env.get(loc)
                    }
                }
                None => FULL,
            },
            ExprKind::Unary(op, inner) => {
                let w = self.eval(inner, env, node);
                match op {
                    UnOp::Neg => w, // sign bit already accounted
                    UnOp::Not => 1,
                }
            }
            ExprKind::Binary(op, a, b) => {
                let (wa, wb) = (self.eval(a, env, node), self.eval(b, env, node));
                match op {
                    BinOp::Add | BinOp::Sub => wa.max(wb).saturating_add(1).min(FULL),
                    BinOp::Mul => wa.saturating_add(wb).min(FULL),
                    BinOp::Div => wa,
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::And
                    | BinOp::Or => 1,
                }
            }
            ExprKind::Intrinsic(i, args) => match i {
                Intrinsic::Mod => match crate::consts::eval_expr(
                    &args[1],
                    &crate::consts::ConstEnv::top(self.universe),
                    &|_| None,
                ) {
                    // `mod(x, m)` with literal m: result < m.
                    mpi_dfa_core::lattice::ConstLattice::Const(c) => match c.as_int() {
                        Some(m) if m > 0 => bits_for(m - 1),
                        _ => self.eval(&args[0], env, node),
                    },
                    _ => self.eval(&args[0], env, node),
                },
                Intrinsic::Abs => self.eval(&args[0], env, node),
                Intrinsic::Max | Intrinsic::Min => self
                    .eval(&args[0], env, node)
                    .max(self.eval(&args[1], env, node)),
                _ => FULL, // transcendental intrinsics are floating point
            },
        }
    }

    fn assign(&self, env: &mut WidthEnv, lhs: &RefInfo, w: u8) {
        if lhs.is_strong_def() {
            env.set(lhs.loc, w);
        } else {
            env.widen(lhs.loc, w);
        }
    }

    fn sent_width(&self, node: NodeId, input: &WidthEnv) -> u8 {
        match &self.icfg.payload(node).kind {
            NodeKind::Mpi(m) if m.kind.sends_data() => match m.kind {
                MpiKind::Reduce | MpiKind::Allreduce => {
                    // Lowering always attaches a value to reductions; a
                    // malformed node degrades to full width (sound).
                    let Some(v) = m.value.as_ref() else {
                        return FULL;
                    };
                    // Reductions accumulate across nprocs processes: a SUM
                    // can grow by log2(nprocs) bits.
                    self.eval(&v.expr, input, node)
                        .saturating_add(self.rank_bits)
                        .min(FULL)
                }
                _ => {
                    // Sends always carry a buffer; degrade to full width if
                    // one is ever missing rather than unwinding.
                    let Some(buf) = m.buf.as_ref() else {
                        return FULL;
                    };
                    if self.icfg.ir.locs.info(buf.loc).is_float() {
                        FULL
                    } else {
                        input.get(buf.loc)
                    }
                }
            },
            _ => 0,
        }
    }
}

impl Dataflow for Bitwidth<'_> {
    type Fact = WidthEnv;
    /// The width of the transmitted data.
    type CommFact = u8;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn top(&self) -> WidthEnv {
        WidthEnv::top(self.universe)
    }

    fn boundary(&self) -> WidthEnv {
        // SMPL storage is zero-initialized (the interpreter guarantees it),
        // so every location needs exactly one bit at the context entry;
        // genuine external inputs are modeled by `read`, which is
        // full-width.
        WidthEnv(vec![1; self.universe])
    }

    fn meet_into(&self, dst: &mut WidthEnv, src: &WidthEnv) -> bool {
        let mut changed = false;
        for (a, &b) in dst.0.iter_mut().zip(src.0.iter()) {
            if b > *a {
                *a = b;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, node: NodeId, input: &WidthEnv, comm: &[u8]) -> WidthEnv {
        let mut out = input.clone();
        match &self.icfg.payload(node).kind {
            NodeKind::Assign { lhs, rhs } => {
                let w = self.eval(&rhs.expr, input, node);
                self.assign(&mut out, lhs, w);
            }
            NodeKind::Read { target } => self.assign(&mut out, target, FULL),
            NodeKind::Mpi(m) if m.kind.receives_data() => {
                // Receives always carry a buffer; a malformed node has
                // nothing to write and transfers as the identity.
                let Some(buf) = m.buf.as_ref() else {
                    return out;
                };
                let arriving = match self.mode {
                    WidthMode::Conservative => FULL,
                    WidthMode::MpiIcfg => comm.iter().copied().max().unwrap_or(0),
                };
                match m.kind {
                    MpiKind::Recv | MpiKind::Irecv | MpiKind::Allreduce => {
                        self.assign(&mut out, buf, arriving)
                    }
                    // Roots keep their local value: widen only. The widen
                    // is also the conservative catch-all for any other
                    // data-receiving kind (it never strong-kills).
                    _ => out.widen(buf.loc, arriving),
                }
            }
            _ => {}
        }
        out
    }

    fn comm_transfer(&self, node: NodeId, input: &WidthEnv) -> u8 {
        self.sent_width(node, input)
    }

    fn translate(&self, edge: &Edge, fact: &WidthEnv) -> Option<WidthEnv> {
        match edge.kind {
            EdgeKind::Call { site } => {
                let cs = self.icfg.call_site(site);
                let args = self.icfg.call_args(site);
                let mut out = fact.clone();
                for &l in self.maps.locals_of(cs.callee) {
                    out.set(l, 0);
                }
                for b in &cs.bindings {
                    let w = match b.actual {
                        ActualBinding::RefWhole(a) | ActualBinding::RefElement(a) => fact.get(a),
                        ActualBinding::Value => {
                            self.eval(&args.args[b.arg_idx].value.expr, fact, cs.call_node)
                        }
                    };
                    out.set(b.formal, w);
                }
                Some(out)
            }
            EdgeKind::Return { site } => {
                let cs = self.icfg.call_site(site);
                let mut out = fact.clone();
                for b in &cs.bindings {
                    match b.actual {
                        ActualBinding::RefWhole(a) => out.set(a, fact.get(b.formal)),
                        ActualBinding::RefElement(a) => out.widen(a, fact.get(b.formal)),
                        ActualBinding::Value => {}
                    }
                }
                for &l in self.maps.frame_of(cs.callee) {
                    out.set(l, 0);
                }
                Some(out)
            }
            _ => None,
        }
    }
}

/// Summary of one bitwidth run.
#[derive(Debug)]
pub struct BitwidthResult {
    pub solution: Solution<WidthEnv>,
    /// Maximum width observed per location over all program points.
    pub max_width: Vec<u8>,
}

impl BitwidthResult {
    /// Integer locations provably narrower than the full machine width.
    pub fn narrowed(&self, locs: &LocTable) -> Vec<(Loc, u8)> {
        self.max_width
            .iter()
            .enumerate()
            .map(|(i, &w)| (Loc(i as u32), w))
            .filter(|&(l, w)| {
                l != LocTable::MPI_BUFFER && !locs.info(l).is_float() && w > 0 && w < FULL
            })
            .collect()
    }
}

/// Run bitwidth analysis over `graph` (ICFG for [`WidthMode::Conservative`],
/// MPI-ICFG for [`WidthMode::MpiIcfg`]).
pub fn analyze<G: FlowGraph + Sync>(graph: &G, icfg: &Icfg, mode: WidthMode) -> BitwidthResult {
    let problem = Bitwidth::new(icfg, mode);
    let solution = Solver::new(&problem, graph).run();
    let mut max_width = vec![0u8; icfg.ir.locs.len()];
    for env in solution.output.iter().chain(solution.input.iter()) {
        for (slot, &w) in max_width.iter_mut().zip(env.0.iter()) {
            *slot = (*slot).max(w);
        }
    }
    BitwidthResult {
        solution,
        max_width,
    }
}

/// Convenience: run in MPI-ICFG mode.
pub fn analyze_mpi(mpi: &MpiIcfg) -> BitwidthResult {
    analyze(mpi, mpi.icfg(), WidthMode::MpiIcfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_match::{build_mpi_icfg, Matching};
    use mpi_dfa_graph::icfg::ProgramIr;
    use std::sync::Arc;

    fn build(src: &str) -> (Arc<ProgramIr>, MpiIcfg) {
        let ir = ProgramIr::from_source(src).unwrap();
        let mpi = build_mpi_icfg(ir.clone(), "main", 0, Matching::ReachingConstants).unwrap();
        (ir, mpi)
    }

    fn width_at_exit(ir: &ProgramIr, mpi: &MpiIcfg, r: &BitwidthResult, name: &str) -> u8 {
        let loc = ir.locs.global(name).unwrap();
        r.solution.before(mpi.context_exit()).get(loc)
    }

    #[test]
    fn bits_for_magnitudes() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 2);
        assert_eq!(bits_for(7), 4);
        assert_eq!(bits_for(8), 5);
        assert_eq!(bits_for(-8), 5);
        assert_eq!(bits_for(i64::MAX), 64);
    }

    #[test]
    fn literal_widths_flow_through_arithmetic() {
        let (ir, mpi) = build(
            "program p global a: int; global b: int; global c: int;\n\
             sub main() { a = 3; b = a + 1; c = a * b; }",
        );
        let r = analyze_mpi(&mpi);
        assert_eq!(width_at_exit(&ir, &mpi, &r, "a"), 3); // |3| + sign
        assert_eq!(width_at_exit(&ir, &mpi, &r, "b"), 4); // add grows by one
        assert_eq!(width_at_exit(&ir, &mpi, &r, "c"), 7); // mul adds widths
    }

    #[test]
    fn branches_take_the_max() {
        let (ir, mpi) = build(
            "program p global a: int;\n\
             sub main() { if (rank() == 0) { a = 3; } else { a = 300; } }",
        );
        let r = analyze_mpi(&mpi);
        assert_eq!(width_at_exit(&ir, &mpi, &r, "a"), bits_for(300));
    }

    #[test]
    fn mod_bounds_the_result() {
        let (ir, mpi) = build(
            "program p global a: int;\n\
             sub main() { read(a); a = mod(a, 16); }",
        );
        let r = analyze_mpi(&mpi);
        assert_eq!(width_at_exit(&ir, &mpi, &r, "a"), bits_for(15));
    }

    #[test]
    fn narrow_width_crosses_the_communication_edge() {
        // The nonseparable payoff: a 4-bit counter stays 4 bits at the
        // receiver under the MPI-ICFG, but is full width conservatively.
        let src = "program p global ctr: int; global got: int;\n\
             sub main() {\n\
               ctr = mod(ctr, 10);\n\
               if (rank() == 0) { send(ctr, 1, 5); } else { recv(got, 0, 5); }\n\
             }";
        let (ir, mpi) = build(src);
        let precise = analyze_mpi(&mpi);
        assert_eq!(width_at_exit(&ir, &mpi, &precise, "got"), bits_for(9));

        let icfg = Icfg::build(ir.clone(), "main", 0).unwrap();
        let conservative = analyze(&icfg, &icfg, WidthMode::Conservative);
        let got = ir.locs.global("got").unwrap();
        assert_eq!(
            conservative.solution.before(icfg.context_exit()).get(got),
            FULL
        );
    }

    #[test]
    fn mismatched_tags_do_not_leak_width() {
        let src = "program p global wide: int; global narrow: int; global got: int;\n\
             sub main() {\n\
               read(wide);\n\
               narrow = 3;\n\
               send(wide, 1, 1);\n\
               send(narrow, 1, 2);\n\
               recv(got, 0, 2);\n\
             }";
        let (ir, mpi) = build(src);
        let r = analyze_mpi(&mpi);
        assert_eq!(
            width_at_exit(&ir, &mpi, &r, "got"),
            bits_for(3),
            "only the tag-2 send matches"
        );
    }

    #[test]
    fn reductions_grow_by_the_process_bits() {
        let src = "program p global part: int; global total: int;\n\
             sub main() { part = mod(part, 8); reduce(SUM, part, total, 0); }";
        let (ir, mpi) = build(src);
        let r = analyze_mpi(&mpi);
        let w = width_at_exit(&ir, &mpi, &r, "total");
        assert_eq!(w, bits_for(7) + 16, "sum over up to 2^16 ranks");
    }

    #[test]
    fn floats_are_always_full_width() {
        let (ir, mpi) = build("program p global x: real; sub main() { x = 1.0; }");
        let r = analyze_mpi(&mpi);
        // RealLit evaluates to FULL regardless.
        assert_eq!(width_at_exit(&ir, &mpi, &r, "x"), FULL);
    }

    #[test]
    fn widths_cross_call_boundaries() {
        let src = "program p global out: int;\n\
             sub double(v: int) { out = v * 2; }\n\
             sub main() { call double(5); }";
        let ir = ProgramIr::from_source(src).unwrap();
        let icfg = Icfg::build(ir.clone(), "main", 0).unwrap();
        let r = analyze(&icfg, &icfg, WidthMode::MpiIcfg);
        let out = ir.locs.global("out").unwrap();
        // 5 needs 4 bits; *2 (literal 2 = 3 bits) → 7 bits.
        assert_eq!(r.solution.before(icfg.context_exit()).get(out), 7);
    }

    #[test]
    fn narrowed_report_excludes_floats_and_untouched() {
        let (ir, mpi) = build(
            "program p global a: int; global x: real; global unused: int;\n\
             sub main() { a = 3; x = 1.0; }",
        );
        let r = analyze_mpi(&mpi);
        let narrowed = r.narrowed(&ir.locs);
        let names: Vec<&str> = narrowed
            .iter()
            .map(|(l, _)| ir.locs.info(*l).name.as_str())
            .collect();
        assert!(names.contains(&"a"));
        assert!(!names.contains(&"x"), "floats never narrow");
        // Zero-initialized and never written: provably a single bit.
        assert!(names.contains(&"unused"));
        let unused_width = narrowed
            .iter()
            .find(|(l, _)| ir.locs.info(*l).name == "unused")
            .unwrap()
            .1;
        assert_eq!(unused_width, 1);
    }

    #[test]
    fn loop_counters_stabilize() {
        let (ir, mpi) = build(
            "program p global s: int;\n\
             sub main() { var i: int; s = 0; for i = 1, 100 { s = s + 1; } }",
        );
        let r = analyze_mpi(&mpi);
        // s = s + 1 in a loop: each meet adds one bit until saturation; the
        // analysis must terminate at FULL, not diverge.
        let w = width_at_exit(&ir, &mpi, &r, "s");
        assert_eq!(w, FULL);
    }
}
