//! Clone-level (partial context sensitivity) integration tests — the
//! Section 4.1 claims, on the MG benchmark whose layered communication
//! wrappers make cloning matter.
//!
//! * MG-2 (context `psinv`): precision steps exactly at clone level 1
//!   (the shared send/recv stubs merge all tags at level 0);
//! * MG-1 (context `mg3P`): the byte-level result stabilizes at level 1
//!   but the active *set* keeps a polluted integer flag until the layered
//!   `comm_lev → xfer → stubs` chain is fully cloned at level 3 — exactly
//!   the level the paper configures;
//! * cloning is monotone: raising the level never increases the active set.

use mpi_dfa::suite::by_id;
use mpi_dfa::suite::runner::run_experiment_at;

#[test]
fn mg2_needs_exactly_clone_level_one() {
    let spec = by_id("MG-2").unwrap();
    let l0 = run_experiment_at(&spec, 0);
    let l1 = run_experiment_at(&spec, 1);
    let l2 = run_experiment_at(&spec, 2);
    assert!(
        l0.mpi.active_bytes > l1.mpi.active_bytes,
        "level 0 merges the stub tags: {} vs {}",
        l0.mpi.active_bytes,
        l1.mpi.active_bytes
    );
    assert_eq!(
        l1.mpi.active_bytes, 16_908_640,
        "paper's configured level is precise"
    );
    assert_eq!(
        l1.mpi.active_bytes, l2.mpi.active_bytes,
        "no further gain above level 1"
    );
}

#[test]
fn mg1_set_precision_stabilizes_at_clone_level_three() {
    let spec = by_id("MG-1").unwrap();
    let rows: Vec<_> = (0..=4).map(|l| run_experiment_at(&spec, l)).collect();
    // Byte totals and set sizes never increase with the clone level.
    for w in rows.windows(2) {
        assert!(w[1].mpi.active_bytes <= w[0].mpi.active_bytes);
        assert!(w[1].mpi.active_locs <= w[0].mpi.active_locs);
    }
    // The paper's level (3) is the lowest with the best precision.
    assert!(
        rows[2].mpi.active_locs > rows[3].mpi.active_locs,
        "level 3 still improves"
    );
    assert_eq!(
        rows[3].mpi.active_locs, rows[4].mpi.active_locs,
        "level 4 adds nothing"
    );
    assert_eq!(rows[3].mpi.active_bytes, 647_487_896);
}

#[test]
fn cloning_grows_the_graph_but_refines_comm_edges() {
    let spec = by_id("MG-1").unwrap();
    let l0 = run_experiment_at(&spec, 0);
    let l3 = run_experiment_at(&spec, 3);
    // One shared stub pair at level 0 ⇒ a single dense comm group; cloning
    // splits it into per-tag pairs (more edges overall is possible; what
    // matters is that the *matching* can then separate them).
    assert_ne!(l0.comm_edges, l3.comm_edges);
}

#[test]
fn insensitive_benchmarks_stay_flat() {
    // SOR/CG have inline exchanges: clone level must not change anything.
    for id in ["SOR", "CG"] {
        let spec = by_id(id).unwrap();
        let l0 = run_experiment_at(&spec, 0);
        let l3 = run_experiment_at(&spec, 3);
        assert_eq!(l0.mpi.active_bytes, l3.mpi.active_bytes, "{id}");
        assert_eq!(l0.icfg.active_bytes, l3.icfg.active_bytes, "{id}");
    }
}
