//! `ConvergenceStats` invariants on the real benchmark programs.
//!
//! The unit tests in `mpi-dfa-core` pin the counter semantics on toy
//! graphs; these tests re-check them where it matters — the Table 1
//! benchmarks — and add the cross-strategy bound the telemetry layer's
//! numbers rely on: summed across the suite the FIFO worklist performs no
//! more node visits than the round-robin sweep it replaces, while producing
//! the identical fixpoint. (The bound is *aggregate*, not per-program: on
//! CG's cyclic communication structure the FIFO order re-enqueues comm-edge
//! successors often enough that one phase visits ~1.4× the nodes a sweep
//! does — a churn pattern these very telemetry counters made visible. A
//! per-program 2× sanity factor guards against regressions beyond that.)

use mpi_dfa_analyses::activity::{vary_useful_problems, ActivityConfig, Mode};
use mpi_dfa_analyses::mpi_match::{build_mpi_icfg, Matching};
use mpi_dfa_core::graph::FlowGraph;
use mpi_dfa_core::solver::{ConvergenceStats, Solver, Strategy};
use mpi_dfa_graph::mpi::MpiIcfg;
use mpi_dfa_suite::all_experiments;
use mpi_dfa_suite::programs;

/// Row IDs to exercise: one per distinct benchmark program (running every
/// LU/Sw variant re-checks the same graphs with different seeds).
const ROWS: &[&str] = &["Biostat", "SOR", "CG", "LU-1", "MG-1", "Sw-1"];

fn suite_graphs() -> Vec<(&'static str, MpiIcfg, ActivityConfig)> {
    all_experiments()
        .iter()
        .filter(|s| ROWS.contains(&s.id))
        .map(|spec| {
            let ir = programs::ir(spec.program);
            let mpi = build_mpi_icfg(
                ir,
                spec.context,
                spec.clone_level,
                Matching::ReachingConstants,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.id));
            let config = ActivityConfig::new(spec.independents.to_vec(), spec.dependents.to_vec());
            (spec.id, mpi, config)
        })
        .collect()
}

#[test]
fn worklist_visits_bounded_by_round_robin_on_suite_programs() {
    let mut rr_total: u64 = 0;
    let mut wl_total: u64 = 0;
    for (id, mpi, config) in suite_graphs() {
        let (vary_p, useful_p) =
            vary_useful_problems(mpi.icfg(), Mode::MpiIcfg, &config).expect("problems");

        for (phase, rr, wl) in [
            (
                "vary",
                Solver::new(&vary_p, &mpi)
                    .strategy(Strategy::RoundRobin)
                    .run(),
                Solver::new(&vary_p, &mpi)
                    .strategy(Strategy::Worklist)
                    .run(),
            ),
            (
                "useful",
                Solver::new(&useful_p, &mpi)
                    .strategy(Strategy::RoundRobin)
                    .run(),
                Solver::new(&useful_p, &mpi)
                    .strategy(Strategy::Worklist)
                    .run(),
            ),
        ] {
            assert!(rr.stats.converged && wl.stats.converged, "{id}");
            assert_eq!(
                rr.input, wl.input,
                "{id} {phase}: strategies must agree on the fixpoint"
            );
            assert_eq!(rr.output, wl.output, "{id} {phase}");
            rr_total += rr.stats.node_visits;
            wl_total += wl.stats.node_visits;
            // Per-program sanity factor (see module docs: CG's vary phase
            // legitimately exceeds 1× under FIFO ordering).
            assert!(
                wl.stats.node_visits <= 2 * rr.stats.node_visits,
                "{id} {phase}: worklist {} visits > 2x round-robin {}",
                wl.stats.node_visits,
                rr.stats.node_visits
            );
            // Counter bookkeeping holds on real graphs, not just toys.
            for s in [&rr.stats, &wl.stats] {
                assert_eq!(
                    s.per_node_visits.iter().sum::<u64>(),
                    s.node_visits,
                    "{id} {phase}: per-node visits must sum to the total"
                );
                assert!(
                    s.pass_deltas.iter().sum::<u64>() > 0,
                    "{id} {phase}: some node must change before the fixpoint"
                );
            }
            assert_eq!(
                rr.stats.pass_deltas.len(),
                rr.stats.passes,
                "{id} {phase}: one delta recorded per round-robin pass"
            );
            assert_eq!(
                *rr.stats.pass_deltas.last().expect("at least one pass"),
                0,
                "{id} {phase}: a converged round-robin run ends with a zero-delta pass"
            );
            assert!(
                wl.stats.worklist_peak > 0 && rr.stats.worklist_peak == 0,
                "{id} {phase}: only the worklist strategy has a queue"
            );
        }
    }
    // The aggregate bound: across the whole suite the FIFO worklist does
    // strictly less work than the sweep, even though CG's vary phase locally
    // exceeds it.
    assert!(
        wl_total <= rr_total,
        "summed across the suite the worklist must not exceed round-robin: {wl_total} > {rr_total}"
    );
}

#[test]
fn absorb_is_order_independent_across_benchmark_stats() {
    // Absorbing the per-benchmark stats in any order yields the same
    // counters — the property that makes cross-run metric aggregation in
    // the telemetry sink well-defined. Mixing in stats produced by the
    // region-parallel engine (which itself merges per-region stats in
    // region-id order) extends the PR-3 property to parallel-merged
    // inputs: absorbing sequential and parallel-produced stats together
    // must stay order-independent.
    let mut stats: Vec<ConvergenceStats> = Vec::new();
    for (i, (_, mpi, config)) in suite_graphs().iter().enumerate() {
        let (vary_p, _) = vary_useful_problems(mpi.icfg(), Mode::MpiIcfg, config).unwrap();
        stats.push(
            Solver::new(&vary_p, mpi)
                .strategy(Strategy::RoundRobin)
                .run()
                .stats,
        );
        // Alternate the thread count so the absorbed set contains stats
        // merged from differently-scheduled parallel runs.
        stats.push(
            Solver::new(&vary_p, mpi)
                .strategy(Strategy::RegionParallel {
                    threads: 1 + (i % 8),
                })
                .run()
                .stats,
        );
        // Record a graph-size witness so zero-padding in absorb is hit.
        assert!(mpi.num_nodes() > 0);
    }
    assert!(stats.len() >= 6);

    let absorb_all = |order: &[usize]| {
        let mut acc = ConvergenceStats::default();
        for &i in order {
            acc.absorb(&stats[i]);
        }
        (
            acc.passes,
            acc.node_visits,
            acc.comm_evals,
            acc.meets,
            acc.worklist_peak,
            acc.pass_deltas.clone(),
            acc.per_node_visits.clone(),
        )
    };
    let forward: Vec<usize> = (0..stats.len()).collect();
    let backward: Vec<usize> = (0..stats.len()).rev().collect();
    assert_eq!(
        absorb_all(&forward),
        absorb_all(&backward),
        "absorb must be order-independent on the counters"
    );
}
