//! Deterministic parallel batch scheduler.
//!
//! `mpidfa batch` feeds a whole JSONL request file through [`run_batch`],
//! which answers every line **in input order** using a `std::thread`
//! worker pool. The hard requirement (asserted by tests at pool sizes 1,
//! 4, and 8) is that the rendered output is *byte-identical for any pool
//! size* — including the per-response `cache:` labels.
//!
//! Two properties make that hold:
//!
//! 1. **No wall clock in responses.** The engine renders provenance
//!    without elapsed time, and wall-clock-budgeted requests are labelled
//!    `bypass` unconditionally (see `engine`).
//! 2. **Two-phase leader/follower execution.** Requests are grouped by
//!    their result-cache key ([`Engine::request_key`]). The *first*
//!    occurrence of each key (the leader) runs in phase 1; duplicates
//!    (followers) run in phase 2, after every leader has completed and
//!    populated the cache. Leaders therefore always report `miss` (or
//!    `hit` against a pre-warmed cache) and followers always report
//!    `hit`, no matter how the pool interleaves.
//!
//! Caveat, documented rather than hidden: if the result cache's capacity
//! is smaller than the number of distinct keys in one batch, phase-1
//! evictions can race and follower labels may vary. The default capacity
//! (256) is far above any bundled workload; size `--cache-mem` to the
//! batch if you feed larger ones.
//!
//! Panic isolation: each job runs under `catch_unwind`, so a bug in one
//! analysis yields a structured `internal` error for that line while the
//! rest of the batch completes.

use crate::engine::Engine;
use crate::proto::{parse_request, render_err, ProtoError, Request, RequestKind};
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One schedulable unit: the response slot it fills and the parsed request.
struct Job {
    slot: usize,
    req: Request,
}

/// Answer every non-empty line of `input` (a JSONL request stream) and
/// return the responses in input order, one per non-empty line.
///
/// `pool` is clamped to at least 1; a pool of 1 still goes through the
/// same two-phase plan, which is what makes the output comparable across
/// pool sizes.
pub fn run_batch(engine: &Engine, input: &str, pool: usize) -> Vec<String> {
    let pool = pool.max(1);
    let mut responses: Vec<Option<String>> = Vec::new();
    let mut jobs: Vec<(Job, Option<u128>)> = Vec::new();

    for line in input.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let slot = responses.len();
        responses.push(None);
        match parse_request(line) {
            Err(e) => responses[slot] = Some(render_err(0, &e)),
            Ok(req) if req.kind == RequestKind::Shutdown => {
                // Shutting down a batch run is meaningless; answering it
                // inline keeps the remaining lines flowing.
                responses[slot] = Some(render_err(
                    req.id,
                    &ProtoError::new("unsupported", "`shutdown` is only meaningful in serve mode"),
                ));
            }
            Ok(req) if req.kind == RequestKind::CacheStats => {
                // Live counters depend on pool size and interleaving, which
                // would break byte-identical batch output; refuse inline.
                responses[slot] = Some(render_err(
                    req.id,
                    &ProtoError::new(
                        "unsupported",
                        "`cache-stats` is only meaningful in serve mode",
                    ),
                ));
            }
            Ok(req) if req.kind == RequestKind::Metrics => {
                // Same determinism argument as cache-stats: latency
                // histograms and live counters have no batch-stable answer.
                responses[slot] = Some(render_err(
                    req.id,
                    &ProtoError::new("unsupported", "`metrics` is only meaningful in serve mode"),
                ));
            }
            Ok(req) => {
                let key = engine.request_key(&req);
                jobs.push((Job { slot, req }, key));
            }
        }
    }

    // Phase split: the first job carrying each distinct cache key leads;
    // later duplicates follow once the leaders have warmed the cache.
    // Keyless jobs (cache bypass, or requests that will fail resolution)
    // are all leaders — duplicates among them recompute by design.
    //
    // `analyze-delta` jobs are held back into a third, **sequential**
    // phase: their `cache:` label (`partial` vs `miss`) depends on whether
    // the seed request — possibly an earlier line of this very batch, or
    // an earlier delta in a chain of edits — has already computed. Running
    // them in input order after everything else makes seed visibility, and
    // therefore the label, independent of pool size. Deltas are designed
    // to be the *cheap* requests, so serializing them costs little.
    let mut seen: HashSet<u128> = HashSet::new();
    let mut leaders: Vec<Job> = Vec::new();
    let mut followers: Vec<Job> = Vec::new();
    let mut deltas: Vec<Job> = Vec::new();
    for (job, key) in jobs {
        if job.req.kind == RequestKind::AnalyzeDelta {
            deltas.push(job);
            continue;
        }
        match key {
            Some(k) if !seen.insert(k) => followers.push(job),
            _ => leaders.push(job),
        }
    }

    run_phase(engine, pool, leaders, &mut responses);
    run_phase(engine, pool, followers, &mut responses);
    run_phase(engine, 1, deltas, &mut responses);

    responses
        .into_iter()
        .map(|r| r.expect("every non-empty input line produces a response"))
        .collect()
}

/// Run one phase's jobs across the pool, filling their response slots.
fn run_phase(engine: &Engine, pool: usize, jobs: Vec<Job>, responses: &mut [Option<String>]) {
    if jobs.is_empty() {
        return;
    }
    let workers = pool.min(jobs.len());
    let queue: Mutex<VecDeque<Job>> = Mutex::new(jobs.into());
    let done: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // A poisoned queue mutex can only mean another worker
                // panicked *outside* catch_unwind (i.e. in this loop's own
                // bookkeeping); recover the guard and keep draining.
                let job = {
                    let mut q = queue
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    q.pop_front()
                };
                let Some(Job { slot, req }) = job else { break };
                let resp =
                    catch_unwind(AssertUnwindSafe(|| engine.handle(&req))).unwrap_or_else(|_| {
                        render_err(
                            req.id,
                            &ProtoError::new("internal", "analysis worker panicked"),
                        )
                    });
                done.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((slot, resp));
            });
        }
    });

    for (slot, resp) in done
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        responses[slot] = Some(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use mpi_dfa_suite::experiments;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default()).unwrap()
    }

    /// The full Table-1 request set, plus duplicates and an analyze mix,
    /// as one JSONL batch.
    fn table1_batch() -> String {
        let mut lines = String::new();
        for (i, spec) in experiments::all().iter().enumerate() {
            lines.push_str(&format!(
                "{{\"id\":{},\"kind\":\"table1-row\",\"row\":\"{}\"}}\n",
                i + 1,
                spec.id
            ));
        }
        // Duplicates of the first row: followers that must report hits.
        lines.push_str("{\"id\":900,\"kind\":\"table1-row\",\"row\":\"Biostat\"}\n");
        lines.push_str("{\"id\":901,\"kind\":\"table1-row\",\"row\":\"Biostat\"}\n");
        lines.push_str(
            "{\"id\":902,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"]}\n",
        );
        lines
    }

    #[test]
    fn batch_output_is_byte_identical_across_pool_sizes() {
        // The acceptance criterion: pools {1, 4, 8}, fresh engine each, the
        // full Table-1 set plus duplicates — output must match byte for
        // byte, including hit/miss labels.
        let input = table1_batch();
        let base = run_batch(&engine(), &input, 1);
        for pool in [4usize, 8] {
            let out = run_batch(&engine(), &input, pool);
            assert_eq!(out, base, "pool size {pool} changed the batch output");
        }
        // And equal to the sequential single-request path.
        let e = engine();
        let direct: Vec<String> = input
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| e.handle_line(l))
            .collect();
        assert_eq!(base, direct, "batch must equal sequential evaluation");
        // Sanity on the labels themselves: leaders miss, duplicates hit.
        assert!(base
            .iter()
            .filter(|r| r.contains("\"id\":900"))
            .all(|r| r.contains("\"cache\":\"hit\"")));
        assert!(base
            .iter()
            .filter(|r| r.contains("\"id\":901"))
            .all(|r| r.contains("\"cache\":\"hit\"")));
    }

    #[test]
    fn responses_keep_input_order_with_errors_interleaved() {
        let input = "\
            {\"id\":1,\"kind\":\"ping\"}\n\
            this line is not json\n\
            {\"id\":2,\"kind\":\"shutdown\"}\n\
            \n\
            {\"id\":3,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"]}\n\
            {\"id\":4,\"kind\":\"analyze\",\"program\":\"nope\",\"ind\":[\"x\"],\"dep\":[\"f\"]}\n";
        let out = run_batch(&engine(), input, 4);
        assert_eq!(out.len(), 5, "blank line produces no response");
        assert!(out[0].contains("\"id\":1") && out[0].contains("pong"));
        assert!(out[1].contains("\"id\":0") && out[1].contains("\"code\":\"parse\""));
        assert!(out[2].contains("\"id\":2") && out[2].contains("\"code\":\"unsupported\""));
        let stats = run_batch(&engine(), "{\"id\":7,\"kind\":\"cache-stats\"}\n", 2);
        assert!(
            stats[0].contains("\"code\":\"unsupported\""),
            "cache-stats must not leak nondeterministic counters into batch output: {}",
            stats[0]
        );
        assert!(out[3].contains("\"id\":3") && out[3].contains("\"ok\":true"));
        assert!(out[4].contains("\"id\":4") && out[4].contains("\"code\":\"unknown-program\""));
    }

    #[test]
    fn eviction_under_pressure_recomputes_to_equal_results() {
        // Satellite: with a result cache big enough for ONE entry, a batch
        // of distinct requests evicts constantly; re-running the same batch
        // must recompute every evicted entry to a byte-equal payload.
        let tiny = Engine::new(EngineConfig {
            cache_capacity: 1,
            ..Default::default()
        })
        .unwrap();
        let input = "\
            {\"id\":1,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"]}\n\
            {\"id\":2,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\"clone\":1}\n\
            {\"id\":3,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\"mode\":\"global\"}\n\
            {\"id\":4,\"kind\":\"dot\",\"program\":\"figure1\"}\n";
        // Sequential (pool 1) so eviction order is deterministic.
        let cold = run_batch(&tiny, input, 1);
        let rerun = run_batch(&tiny, input, 1);
        let evictions = tiny.caches().results.counters().snapshot().evictions;
        assert!(evictions > 0, "capacity 1 must evict under this batch");
        // Payloads (everything but the cache label) are identical; against
        // a roomy engine they also match exactly.
        let roomy = run_batch(&engine(), input, 1);
        for ((a, b), c) in cold.iter().zip(rerun.iter()).zip(roomy.iter()) {
            let strip = |s: &str| {
                s.replace("\"cache\":\"hit\"", "\"cache\":\"x\"")
                    .replace("\"cache\":\"miss\"", "\"cache\":\"x\"")
            };
            assert_eq!(strip(a), strip(b), "evicted entry recomputed differently");
            assert_eq!(strip(a), strip(c), "tiny-cache result diverged from roomy");
        }
    }

    #[test]
    fn keyless_requests_all_run_as_leaders() {
        // Wall-clock-budgeted duplicates each compute independently and all
        // report bypass — no follower can wait on a cache fill that never
        // happens.
        let input = "\
            {\"id\":1,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\"budget_ms\":10000}\n\
            {\"id\":2,\"kind\":\"analyze\",\"program\":\"figure1\",\"ind\":[\"x\"],\"dep\":[\"f\"],\"budget_ms\":10000}\n";
        let out = run_batch(&engine(), input, 2);
        assert!(
            out.iter().all(|r| r.contains("\"cache\":\"bypass\"")),
            "{out:?}"
        );
    }
}
