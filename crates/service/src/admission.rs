//! Admission control and load shedding for the service tier.
//!
//! The ROADMAP's service item asks for admission control that "maps load
//! to the PR-2 governor ladder": instead of queueing unboundedly under
//! heavy traffic, the service degrades *deterministically*. This module
//! implements that as a bounded in-flight ledger with a watermark ladder:
//!
//! * `inflight < t1_watermark` — **T0**: requests run the full ladder;
//! * `inflight >= t1_watermark` — **T1** floor: the governor skips the
//!   precise full-MPI-ICFG rung (clone 0, syntactic matching);
//! * `inflight >= t2_watermark` — **T2** floor: plain-ICFG sound
//!   worst-case analysis only;
//! * `inflight >= max_inflight` — **shed**: the request is refused with a
//!   structured `overloaded` error carrying a `retry_after_ms` hint.
//!
//! Stepping *up* is immediate at the watermark; stepping *down* requires
//! the load to drain `hysteresis` permits below it, so the tier doesn't
//! flap at the boundary. Both transitions are pure functions of the
//! in-flight count, so a fixed request schedule sheds and degrades
//! identically on every run — the overload chaos tests assert exact shed
//! counts at a fixed seed.
//!
//! Results computed under a raised floor are **never cached** (the engine
//! bypasses the result cache when the floor is above T0): a degraded
//! answer must not be served later, from the cache, to an unloaded server.

use mpi_dfa_analyses::governor::Tier;
use mpi_dfa_core::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Watermark configuration for [`AdmissionControl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Hard cap on concurrently admitted requests; at or above it new
    /// requests are shed.
    pub max_inflight: usize,
    /// In-flight count at which the governor floor steps to T1.
    pub t1_watermark: usize,
    /// In-flight count at which the governor floor steps to T2.
    pub t2_watermark: usize,
    /// Permits of drain below a watermark required before the floor steps
    /// back down (anti-flap).
    pub hysteresis: usize,
    /// Backoff hint attached to `overloaded` errors.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::for_max_inflight(64)
    }
}

impl AdmissionConfig {
    /// Derive the ladder from a single knob: T1 at half the cap, T2 at
    /// three quarters, hysteresis an eighth (at least 1).
    pub fn for_max_inflight(max_inflight: usize) -> Self {
        let max_inflight = max_inflight.max(1);
        AdmissionConfig {
            max_inflight,
            t1_watermark: (max_inflight / 2).max(1),
            t2_watermark: (max_inflight * 3 / 4).max(1),
            hysteresis: (max_inflight / 8).max(1),
            retry_after_ms: 100,
        }
    }
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Hint for the client's backoff (mirrors the config).
    pub retry_after_ms: u64,
}

/// Point-in-time admission counters for `cache-stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    pub inflight: usize,
    pub tier_floor: Tier,
    pub admitted_total: u64,
    pub shed_total: u64,
    pub max_inflight: usize,
}

#[derive(Debug)]
struct LadderState {
    inflight: usize,
    tier: Tier,
}

/// The bounded request ledger. One instance is shared by every connection
/// of a server (and by the engine, which consults [`tier_floor`] when
/// running governed analyses).
///
/// [`tier_floor`]: AdmissionControl::tier_floor
#[derive(Debug)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    state: Mutex<LadderState>,
    admitted_total: AtomicU64,
    shed_total: AtomicU64,
}

impl AdmissionControl {
    pub fn new(cfg: AdmissionConfig) -> Arc<AdmissionControl> {
        Arc::new(AdmissionControl {
            cfg,
            state: Mutex::new(LadderState {
                inflight: 0,
                tier: Tier::T0,
            }),
            admitted_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The ladder transition: a pure function of (current tier, in-flight
    /// count). Step up immediately at a watermark; step down only once the
    /// load has drained `hysteresis` permits below it.
    fn next_tier(&self, cur: Tier, inflight: usize) -> Tier {
        let c = &self.cfg;
        // The tier the raw count maps to (no hysteresis).
        let pressure = if inflight >= c.t2_watermark {
            Tier::T2
        } else if inflight >= c.t1_watermark {
            Tier::T1
        } else {
            Tier::T0
        };
        if pressure >= cur {
            // Upward (or steady) pressure applies immediately.
            return pressure;
        }
        // Stepping down: require `hysteresis` permits of slack below the
        // watermark that put us on the current rung, and descend one rung
        // at a time so a T2→T0 drain passes visibly through T1.
        let watermark = match cur {
            Tier::T2 => c.t2_watermark,
            _ => c.t1_watermark,
        };
        if inflight + c.hysteresis > watermark {
            return cur;
        }
        match cur {
            Tier::T2 => Tier::T1,
            _ => Tier::T0,
        }
    }

    fn record_gauges(&self, inflight: usize, tier: Tier) {
        if !telemetry::is_enabled() {
            return;
        }
        telemetry::metric_set("service_inflight", inflight as f64);
        telemetry::metric_max("service_inflight_peak", inflight as f64);
        telemetry::metric_set(
            "service_admission_tier",
            match tier {
                Tier::T0 => 0.0,
                Tier::T1 => 1.0,
                Tier::T2 => 2.0,
            },
        );
    }

    /// Try to admit one request. On success the returned [`Permit`] holds
    /// the in-flight slot until dropped; on failure the caller must answer
    /// a structured `overloaded` error with the shed's retry hint.
    pub fn try_admit(self: &Arc<Self>) -> Result<Permit, Shed> {
        let mut st = self.state.lock().unwrap();
        if st.inflight >= self.cfg.max_inflight {
            drop(st);
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            if telemetry::is_enabled() {
                telemetry::metric_add("service_shed_total", 1.0);
            }
            return Err(Shed {
                retry_after_ms: self.cfg.retry_after_ms,
            });
        }
        st.inflight += 1;
        st.tier = self.next_tier(st.tier, st.inflight);
        let (inflight, tier) = (st.inflight, st.tier);
        drop(st);
        self.admitted_total.fetch_add(1, Ordering::Relaxed);
        self.record_gauges(inflight, tier);
        Ok(Permit {
            control: Arc::clone(self),
        })
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.inflight = st.inflight.saturating_sub(1);
        st.tier = self.next_tier(st.tier, st.inflight);
        let (inflight, tier) = (st.inflight, st.tier);
        drop(st);
        self.record_gauges(inflight, tier);
    }

    /// The governor floor currently imposed by load (see module docs).
    pub fn tier_floor(&self) -> Tier {
        self.state.lock().unwrap().tier
    }

    pub fn snapshot(&self) -> AdmissionSnapshot {
        let st = self.state.lock().unwrap();
        AdmissionSnapshot {
            inflight: st.inflight,
            tier_floor: st.tier,
            admitted_total: self.admitted_total.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            max_inflight: self.cfg.max_inflight,
        }
    }
}

/// An admitted request's in-flight slot; dropping it releases the slot and
/// re-evaluates the ladder.
#[derive(Debug)]
pub struct Permit {
    control: Arc<AdmissionControl>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.control.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 4,
            t1_watermark: 2,
            t2_watermark: 3,
            hysteresis: 1,
            retry_after_ms: 50,
        }
    }

    #[test]
    fn sheds_at_the_cap_with_retry_hint_and_exact_counts() {
        let ac = AdmissionControl::new(cfg4());
        let permits: Vec<_> = (0..4).map(|_| ac.try_admit().unwrap()).collect();
        for _ in 0..3 {
            let shed = ac.try_admit().unwrap_err();
            assert_eq!(shed.retry_after_ms, 50);
        }
        let snap = ac.snapshot();
        assert_eq!(snap.inflight, 4);
        assert_eq!(snap.admitted_total, 4);
        assert_eq!(snap.shed_total, 3, "shed count is deterministic");
        drop(permits);
        assert_eq!(ac.snapshot().inflight, 0);
        assert!(ac.try_admit().is_ok());
    }

    #[test]
    fn ladder_steps_up_at_watermarks_and_back_after_drain() {
        let ac = AdmissionControl::new(cfg4());
        assert_eq!(ac.tier_floor(), Tier::T0);
        let p1 = ac.try_admit().unwrap(); // inflight 1 < t1
        assert_eq!(ac.tier_floor(), Tier::T0);
        let p2 = ac.try_admit().unwrap(); // inflight 2 == t1
        assert_eq!(ac.tier_floor(), Tier::T1);
        let p3 = ac.try_admit().unwrap(); // inflight 3 == t2
        assert_eq!(ac.tier_floor(), Tier::T2);
        // Drain: 3 -> 2 (2 + hysteresis(1) <= t2) steps back to T1 …
        drop(p3);
        assert_eq!(ac.tier_floor(), Tier::T1);
        // … 2 -> 1 (1 + 1 <= t1) steps back to T0.
        drop(p2);
        assert_eq!(ac.tier_floor(), Tier::T0);
        drop(p1);
        assert_eq!(ac.tier_floor(), Tier::T0);
    }

    #[test]
    fn hysteresis_prevents_flapping_at_the_boundary() {
        let ac = AdmissionControl::new(AdmissionConfig {
            max_inflight: 8,
            t1_watermark: 4,
            t2_watermark: 6,
            hysteresis: 2,
            retry_after_ms: 10,
        });
        let mut permits: Vec<_> = (0..4).map(|_| ac.try_admit().unwrap()).collect();
        assert_eq!(ac.tier_floor(), Tier::T1);
        // Drop to 3: 3 + 2 > 4, still T1 (no flap)…
        permits.pop();
        assert_eq!(ac.tier_floor(), Tier::T1);
        // …admit back to 4: still T1, no thrash through T0.
        permits.push(ac.try_admit().unwrap());
        assert_eq!(ac.tier_floor(), Tier::T1);
        // Drain to 2: 2 + 2 <= 4 steps back down.
        permits.pop();
        permits.pop();
        assert_eq!(ac.tier_floor(), Tier::T0);
        drop(permits);
    }

    #[test]
    fn derived_config_is_sane_for_small_caps() {
        for n in 1..=16 {
            let c = AdmissionConfig::for_max_inflight(n);
            assert!(c.t1_watermark >= 1);
            assert!(c.t1_watermark <= c.t2_watermark);
            assert!(c.t2_watermark <= c.max_inflight);
            assert!(c.hysteresis >= 1);
        }
    }
}
