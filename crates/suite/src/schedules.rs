//! Schedule exploration: re-check soundness obligations under many
//! adversarial legal schedules.
//!
//! The paper's claim is that analyses over the MPI-ICFG are sound for
//! *every possible* send/receive pairing. A single interpreter run only
//! witnesses the one interleaving the OS scheduler happens to produce, so
//! this module replays each program under `K` seeded [`FaultPlan`]s —
//! per-message reordering across sources, injected delivery delays, and
//! staggered rank starts, all legal under MPI's non-overtaking guarantee —
//! and re-checks both dynamic soundness obligations against each run:
//!
//! 1. **Reaching constants**: a global the analysis proves constant at the
//!    context exit must hold that constant on every rank of every schedule.
//! 2. **Vary (activity)**: a global *not* in the Vary set at the context
//!    exit must not respond to a perturbation of the independent, on any
//!    rank, under any schedule (the perturbed twin run replays the *same*
//!    fault seed so only the input differs).
//!
//! Used by `tests/dynamic_soundness.rs` and by
//! `mpidfa run --faults seed=N --schedules K`.

use mpi_dfa_analyses::activity::{self, ActivityConfig};
use mpi_dfa_analyses::consts::{self, CVal};
use mpi_dfa_analyses::mpi_match::{build_mpi_icfg, Matching};
use mpi_dfa_core::lattice::ConstLattice;
use mpi_dfa_graph::icfg::ProgramIr;
use mpi_dfa_lang::compile;
use mpi_dfa_lang::fault::FaultPlan;
use mpi_dfa_lang::interp::{run, InterpConfig, ProcessResult, RuntimeError, RuntimeLimits};
use mpi_dfa_lang::rng::SplitMix64;
use std::time::Duration;

/// How many schedules to explore and how each run is bounded.
#[derive(Debug, Clone)]
pub struct ScheduleConfig {
    /// Number of adversarial schedules per program (`K`).
    pub schedules: usize,
    /// Base seed; per-schedule fault seeds are derived deterministically.
    pub base_seed: u64,
    /// Template fault plan re-seeded per schedule. Defaults to
    /// [`FaultPlan::adversarial`]; pass a chaotic plan to also exercise
    /// illegal (dropping/duplicating) transports.
    pub plan: FaultPlan,
    /// Simulated process count.
    pub nprocs: usize,
    /// Per-run step budget and recv deadline (structural deadlock
    /// detection usually fires long before the timeout). Defaults to a
    /// much shorter deadline and step budget than the production
    /// [`RuntimeLimits::default`] because each schedule run is tiny.
    pub limits: RuntimeLimits,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            schedules: 8,
            base_seed: 0xFA017,
            plan: FaultPlan::adversarial(0),
            nprocs: 2,
            limits: RuntimeLimits {
                recv_timeout: Duration::from_millis(400),
                max_steps: 500_000,
            },
        }
    }
}

impl ScheduleConfig {
    /// The fault plan for schedule `i`: the template re-seeded from a
    /// splitmix64 stream over (`base_seed`, `i`).
    pub fn plan_for(&self, i: usize) -> FaultPlan {
        let seed = SplitMix64::fork(self.base_seed, i as u64).next_u64();
        FaultPlan {
            seed,
            ..self.plan.clone()
        }
    }
}

/// One soundness violation found under one schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Fault seed of the offending schedule.
    pub seed: u64,
    /// Human-readable description (obligation, global, rank, values).
    pub message: String,
}

/// Outcome of exploring one program under `K` schedules.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// Schedules attempted (`K`, or 0 if the baseline run already failed).
    pub attempted: usize,
    /// Schedules that ran to completion on every rank.
    pub completed: usize,
    /// Schedules on which the program deadlocked. Legal schedules cannot
    /// *introduce* deadlocks, so nonzero here means the program itself can
    /// deadlock (and the baseline usually does too).
    pub deadlocked: usize,
    /// Soundness violations across all schedules — must be empty.
    pub violations: Vec<Violation>,
}

impl ScheduleReport {
    /// True when at least one schedule completed and no obligation failed.
    pub fn is_sound(&self) -> bool {
        self.completed > 0 && self.violations.is_empty()
    }
}

fn interp_config(
    sc: &ScheduleConfig,
    plan: Option<FaultPlan>,
    init: &[(String, f64)],
) -> InterpConfig {
    InterpConfig {
        nprocs: sc.nprocs,
        limits: sc.limits.clone(),
        capture_globals: true,
        init_globals: init.to_vec(),
        fault_plan: plan,
        ..Default::default()
    }
}

fn final_value(results: &[ProcessResult], rank: usize, name: &str) -> Vec<f64> {
    results[rank]
        .final_globals
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

/// Is this a location we check obligations on? (User-visible globals only.)
fn checkable(info: &mpi_dfa_graph::loc::LocInfo) -> bool {
    info.proc.is_none() && info.name != "__mpi_buffer"
}

/// Constant claims at the context exit: `(global name, expected value)`.
fn constant_claims(src: &str) -> Result<Vec<(String, f64)>, String> {
    let ir = ProgramIr::from_source(src).map_err(|e| e.to_string())?;
    let mpi = build_mpi_icfg(ir.clone(), "main", 0, Matching::ReachingConstants)
        .map_err(|e| e.to_string())?;
    let sol = consts::analyze_mpi(&mpi);
    let exit_env = &sol.input[mpi.context_exit().index()];
    let mut claims = Vec::new();
    for (loc, info) in ir.locs.iter() {
        if !checkable(info) {
            continue;
        }
        if let ConstLattice::Const(c) = exit_env.get(loc) {
            let expected = match c {
                CVal::Int(v) => *v as f64,
                CVal::Real(v) => *v,
                CVal::Bool(b) => {
                    if *b {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            claims.push((info.name.clone(), expected));
        }
    }
    Ok(claims)
}

/// Globals *not* in Vary at the context exit for independent `ind`.
fn non_varying(src: &str, ind: &str) -> Result<Vec<String>, String> {
    let ir = ProgramIr::from_source(src).map_err(|e| e.to_string())?;
    let mpi = build_mpi_icfg(ir.clone(), "main", 0, Matching::ReachingConstants)
        .map_err(|e| e.to_string())?;
    let config = ActivityConfig::new([ind], [ind]);
    let res = activity::analyze_mpi(&mpi, &config).map_err(|e| e.to_string())?;
    let vary_exit = res.vary.before(mpi.context_exit());
    let mut fixed = Vec::new();
    for (loc, info) in ir.locs.iter() {
        if checkable(info) && !vary_exit.contains(loc.index()) {
            fixed.push(info.name.clone());
        }
    }
    Ok(fixed)
}

/// Obligation 1 under `K` schedules: every Const claim at the context exit
/// must hold on every rank of every completed run. Returns `Ok(None)` when
/// the baseline (fault-free) run does not complete — the program deadlocks
/// or errors on its own, so there is nothing to explore.
pub fn check_constants(src: &str, sc: &ScheduleConfig) -> Result<Option<ScheduleReport>, String> {
    let unit = compile(src).map_err(|e| e.to_string())?;
    // Baseline: if the program cannot complete without faults, skip it
    // (generated programs may legitimately deadlock; static analyses don't
    // care but the oracle needs completed runs).
    if run(&unit.program, &interp_config(sc, None, &[])).is_err() {
        return Ok(None);
    }
    let claims = constant_claims(src)?;
    let mut report = ScheduleReport {
        attempted: sc.schedules,
        ..Default::default()
    };
    for i in 0..sc.schedules {
        let plan = sc.plan_for(i);
        let seed = plan.seed;
        match run(&unit.program, &interp_config(sc, Some(plan), &[])) {
            Ok(results) => {
                report.completed += 1;
                for (name, expected) in &claims {
                    for (rank, _) in results.iter().enumerate() {
                        for v in final_value(&results, rank, name) {
                            if v != *expected {
                                report.violations.push(Violation {
                                    seed,
                                    message: format!(
                                        "reaching-constants: analysis claims {name} = {expected} \
                                         at exit, rank {rank} has {v} under schedule seed {seed}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            Err(RuntimeError::Deadlock { .. }) => report.deadlocked += 1,
            Err(e) => {
                report.violations.push(Violation {
                    seed,
                    message: format!(
                        "run failed under schedule seed {seed} though the fault-free run \
                         completed: {e}"
                    ),
                });
            }
        }
    }
    Ok(Some(report))
}

/// Obligation 2 under `K` schedules: a global outside Vary must not respond
/// to a perturbation of `ind`. Each schedule replays the *same* fault seed
/// for the base and perturbed runs so the schedule is held fixed while the
/// input varies. Returns `Ok(None)` when the baseline run does not complete.
pub fn check_vary(
    src: &str,
    ind: &str,
    sc: &ScheduleConfig,
) -> Result<Option<ScheduleReport>, String> {
    let unit = compile(src).map_err(|e| e.to_string())?;
    let lo = vec![(ind.to_string(), 1.0)];
    let hi = vec![(ind.to_string(), 2.0)];
    if run(&unit.program, &interp_config(sc, None, &lo)).is_err() {
        return Ok(None);
    }
    let fixed = non_varying(src, ind)?;
    let mut report = ScheduleReport {
        attempted: sc.schedules,
        ..Default::default()
    };
    for i in 0..sc.schedules {
        let plan = sc.plan_for(i);
        let seed = plan.seed;
        let base = run(&unit.program, &interp_config(sc, Some(plan.clone()), &lo));
        let perturbed = run(&unit.program, &interp_config(sc, Some(plan), &hi));
        match (base, perturbed) {
            (Ok(base), Ok(perturbed)) => {
                report.completed += 1;
                for name in &fixed {
                    for rank in 0..base.len() {
                        let a = final_value(&base, rank, name);
                        let b = final_value(&perturbed, rank, name);
                        if a != b {
                            report.violations.push(Violation {
                                seed,
                                message: format!(
                                    "vary: `{name}` is not in Vary at exit but responded to \
                                     d{ind} (rank {rank}: {a:?} vs {b:?}) under schedule seed \
                                     {seed}"
                                ),
                            });
                        }
                    }
                }
            }
            (Err(RuntimeError::Deadlock { .. }), _) | (_, Err(RuntimeError::Deadlock { .. })) => {
                report.deadlocked += 1;
            }
            (a, b) => {
                let e = a
                    .err()
                    .or(b.err())
                    .map(|e| e.to_string())
                    .unwrap_or_default();
                report.violations.push(Violation {
                    seed,
                    message: format!(
                        "run failed under schedule seed {seed} though the fault-free run \
                         completed: {e}"
                    ),
                });
            }
        }
    }
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::FIGURE1;

    #[test]
    fn plans_derive_deterministically_and_differ() {
        let sc = ScheduleConfig::default();
        assert_eq!(sc.plan_for(3).seed, sc.plan_for(3).seed);
        assert_ne!(sc.plan_for(3).seed, sc.plan_for(4).seed);
        let other = ScheduleConfig {
            base_seed: 1,
            ..ScheduleConfig::default()
        };
        assert_ne!(sc.plan_for(3).seed, other.plan_for(3).seed);
    }

    #[test]
    fn figure1_constants_hold_under_adversarial_schedules() {
        let report = check_constants(FIGURE1, &ScheduleConfig::default())
            .expect("figure1 compiles")
            .expect("figure1 completes fault-free");
        assert_eq!(report.attempted, 8);
        assert_eq!(
            report.completed, 8,
            "legal schedules must not deadlock figure1"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.is_sound());
    }

    #[test]
    fn figure1_vary_holds_under_adversarial_schedules() {
        let report = check_vary(FIGURE1, "x", &ScheduleConfig::default())
            .expect("figure1 compiles")
            .expect("figure1 completes fault-free");
        assert_eq!(report.completed, 8);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn deadlocking_program_is_skipped_not_failed() {
        // Figure 1 with 3 ranks: ranks 2.. recv from 0 but are never sent
        // to. The baseline deadlocks, so exploration reports None.
        let sc = ScheduleConfig {
            nprocs: 3,
            ..ScheduleConfig::default()
        };
        let report = check_constants(FIGURE1, &sc).expect("compiles");
        assert!(report.is_none());
    }
}
