//! Property tests for the SMPL front end: the pretty-printer/parser pair
//! must be a round trip on arbitrary generated ASTs, and the lexer/parser
//! must be total on arbitrary input.
//!
//! The workspace builds fully offline, so instead of `proptest` these are
//! seeded sweeps driven by the shared `mpi_dfa_lang::rng::SplitMix64`
//! stream. A failing case panics with its seed for replay.

use mpi_dfa_lang::ast::*;
use mpi_dfa_lang::parser::parse;
use mpi_dfa_lang::pretty::program_to_string;
use mpi_dfa_lang::rng::SplitMix64;
use mpi_dfa_lang::span::Span;
use mpi_dfa_lang::types::{BaseType, Type};

const CASES: u64 = 128;

fn sp() -> Span {
    Span::DUMMY
}

fn ident(rng: &mut SplitMix64) -> String {
    // Avoid keywords and intrinsic names by prefixing.
    let mut s = String::from("v");
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 0..rng.below(5) {
        let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
        s.push(alphabet[rng.below(alphabet.len())] as char);
    }
    s
}

fn base_type(rng: &mut SplitMix64) -> BaseType {
    *rng.pick(&[
        BaseType::Int,
        BaseType::Real,
        BaseType::Real4,
        BaseType::Logical,
    ])
}

fn ty(rng: &mut SplitMix64) -> Type {
    let b = base_type(rng);
    let ndims = rng.below(3);
    if ndims == 0 {
        Type::scalar(b)
    } else {
        let dims = (0..ndims).map(|_| rng.range_i64(1, 20)).collect();
        Type::array(b, dims)
    }
}

fn literal(rng: &mut SplitMix64) -> ExprKind {
    match rng.below(5) {
        0 => ExprKind::IntLit(rng.range_i64(-1000, 1000)),
        1 => ExprKind::RealLit(rng.range_i64(-100, 100) as f64 / 4.0),
        2 => ExprKind::BoolLit(rng.chance(0.5)),
        3 => ExprKind::Rank,
        _ => ExprKind::Nprocs,
    }
}

fn bin_op(rng: &mut SplitMix64) -> BinOp {
    *rng.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Lt,
        BinOp::Eq,
    ])
}

fn expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || rng.chance(0.4) {
        // leaf
        let kind = if rng.chance(0.5) {
            literal(rng)
        } else {
            ExprKind::Var(LValue::var(ident(rng), sp()))
        };
        return Expr { kind, span: sp() };
    }
    match rng.below(3) {
        0 => {
            let a = expr(rng, depth - 1);
            let b = expr(rng, depth - 1);
            Expr {
                kind: ExprKind::Binary(bin_op(rng), Box::new(a), Box::new(b)),
                span: sp(),
            }
        }
        1 => {
            let e = expr(rng, depth - 1);
            Expr {
                kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                span: sp(),
            }
        }
        _ => {
            let a = expr(rng, depth - 1);
            let b = expr(rng, depth - 1);
            Expr {
                kind: ExprKind::Intrinsic(Intrinsic::Max, vec![a, b]),
                span: sp(),
            }
        }
    }
}

fn program(rng: &mut SplitMix64) -> Program {
    let nglobals = rng.range(1, 5);
    let nstmts = rng.range(1, 6);
    let mut names = std::collections::HashSet::new();
    let globals = (0..nglobals)
        .map(|_| (ident(rng), ty(rng)))
        .filter(|(n, _)| names.insert(n.clone()))
        .map(|(name, ty)| VarDecl {
            name,
            ty,
            span: sp(),
        })
        .collect();
    let stmts: Vec<Stmt> = (0..nstmts)
        .map(|i| Stmt {
            id: StmtId(i as u32),
            kind: StmtKind::Assign {
                lhs: LValue::var(ident(rng), sp()),
                rhs: expr(rng, 2),
            },
            span: sp(),
        })
        .collect();
    let n = stmts.len() as u32;
    Program {
        name: "gen".into(),
        globals,
        subs: vec![SubDecl {
            name: "main".into(),
            params: vec![],
            body: Block { stmts },
            span: sp(),
        }],
        stmt_count: n,
    }
}

/// pretty ∘ parse ∘ pretty = pretty: printing a generated AST, parsing
/// it back, and printing again reaches a fixpoint after one round.
#[test]
fn pretty_parse_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let p = program(&mut rng);
        let s1 = program_to_string(&p);
        let reparsed = parse(&s1)
            .unwrap_or_else(|e| panic!("seed {seed}: pretty output failed to parse: {e}\n{s1}"));
        let s2 = program_to_string(&reparsed);
        assert_eq!(&s1, &s2, "seed {seed}: pretty/parse not a fixpoint");
        assert_eq!(reparsed.stmt_count, p.stmt_count, "seed {seed}");
    }
}

/// The lexer never panics and either produces tokens or a diagnostic on
/// arbitrary input bytes (printable-ish plus embedded controls).
#[test]
fn lexer_total_on_arbitrary_input() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_A5A5);
        let len = rng.below(201);
        let s: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII, occasionally control bytes or
                // multi-byte unicode.
                match rng.below(10) {
                    0 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\n'),
                    1 => char::from_u32(0x00C0 + rng.below(0x100) as u32).unwrap_or('é'),
                    _ => (0x20 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect();
        let _ = mpi_dfa_lang::lexer::lex(&s);
    }
}

/// The parser is total on arbitrary token-ish text.
#[test]
fn parser_total_on_arbitrary_input() {
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789(){};=+*,<> \n"
        .chars()
        .collect();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ 0x5A5A_5A5A);
        let len = rng.below(201);
        let s: String = (0..len).map(|_| *rng.pick(&alphabet)).collect();
        let _ = parse(&s);
    }
}
