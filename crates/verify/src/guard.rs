//! Rank guards: which ranks can execute a statement.
//!
//! The verify passes are *rank-sensitive*: a statement nested under
//! `if (rank() == 0) { .. }` only ever executes on rank 0, so it cannot
//! happen in parallel with itself on another rank and cannot satisfy a
//! wait on any other rank. This module extracts that information purely
//! syntactically from the AST — every statement gets a conjunction of
//! *rank atoms* harvested from the `if`/`while` conditions enclosing it.
//!
//! The abstraction is deliberately one-sided: when a condition does not
//! compare `rank()` against a foldable bound the guard stays `Any`, which
//! over-approximates the executing-rank set. That is the conservative
//! direction for both consumers — MHP keeps the pair (may-happen), the
//! wait-for builder keeps the edge (candidate cycle survives).

use mpi_dfa_graph::mpi::fold_int;
use mpi_dfa_lang::ast::{BinOp, Block, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};

/// Comparison operator of a rank atom (a strict subset of [`BinOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// Mirror the comparison for a flipped operand order (`c op rank()`
    /// becomes `rank() mirror(op) c`).
    fn mirror(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }
}

/// Right-hand side of a rank atom: a constant, or `nprocs() + offset`
/// (covering the ubiquitous `rank() < nprocs() - 1` boundary guards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Const(i64),
    NprocsPlus(i64),
}

impl Bound {
    fn eval(self, nprocs: i64) -> i64 {
        match self {
            Bound::Const(c) => c,
            Bound::NprocsPlus(off) => nprocs + off,
        }
    }
}

/// One conjunct: `rank() cmp bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    pub cmp: Cmp,
    pub bound: Bound,
}

impl Atom {
    fn admits(&self, rank: i64, nprocs: i64) -> bool {
        self.cmp.holds(rank, self.bound.eval(nprocs))
    }
}

/// A conjunction of rank atoms; the empty conjunction admits every rank.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankGuard {
    atoms: Vec<Atom>,
}

/// Cap on tracked conjuncts — deeper nesting degrades to the (sound)
/// over-approximation of dropping further atoms.
const MAX_ATOMS: usize = 6;

impl RankGuard {
    /// The unconstrained guard (any rank may execute).
    pub fn any() -> Self {
        RankGuard::default()
    }

    /// `const` form of [`RankGuard::any`] for use in `static` items.
    pub const fn any_const() -> Self {
        RankGuard { atoms: Vec::new() }
    }

    pub fn is_any(&self) -> bool {
        self.atoms.is_empty()
    }

    fn and(&self, atom: Atom) -> Self {
        let mut atoms = self.atoms.clone();
        if atoms.len() < MAX_ATOMS {
            atoms.push(atom);
        }
        RankGuard { atoms }
    }

    /// True when `rank` may execute a statement under this guard, with
    /// `nprocs` processes.
    pub fn admits(&self, rank: usize, nprocs: usize) -> bool {
        self.atoms
            .iter()
            .all(|a| a.admits(rank as i64, nprocs as i64))
    }

    /// True when some rank in `0..nprocs` is admitted by *both* guards —
    /// i.e. the two statements can execute on a common rank.
    pub fn overlaps(&self, other: &RankGuard, nprocs: usize) -> bool {
        (0..nprocs).any(|r| self.admits(r, nprocs) && other.admits(r, nprocs))
    }
}

/// Per-statement rank guards for a whole program, indexed by `StmtId`.
#[derive(Debug, Clone)]
pub struct Guards {
    by_stmt: Vec<RankGuard>,
}

impl Guards {
    /// Harvest guards from every subroutine body. Statements in
    /// subroutines *called from* guarded contexts keep `Any` — the guard
    /// is intra-procedural, which only ever widens the admitted set.
    pub fn build(program: &Program) -> Guards {
        let mut by_stmt = vec![RankGuard::any(); program.stmt_count as usize];
        for sub in &program.subs {
            walk_block(&sub.body, &RankGuard::any(), &mut by_stmt);
        }
        Guards { by_stmt }
    }

    pub fn of(&self, stmt: mpi_dfa_lang::ast::StmtId) -> &RankGuard {
        static ANY: RankGuard = RankGuard::any_const();
        self.by_stmt.get(stmt.0 as usize).unwrap_or(&ANY)
    }
}

fn walk_block(block: &Block, guard: &RankGuard, out: &mut [RankGuard]) {
    for stmt in &block.stmts {
        walk_stmt(stmt, guard, out);
    }
}

fn walk_stmt(stmt: &Stmt, guard: &RankGuard, out: &mut [RankGuard]) {
    if let Some(slot) = out.get_mut(stmt.id.0 as usize) {
        *slot = guard.clone();
    }
    match &stmt.kind {
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let (then_g, else_g) = match rank_atom(cond) {
                Some(atom) => (
                    guard.and(atom),
                    guard.and(Atom {
                        cmp: atom.cmp.negate(),
                        bound: atom.bound,
                    }),
                ),
                None => (guard.clone(), guard.clone()),
            };
            walk_block(then_blk, &then_g, out);
            if let Some(e) = else_blk {
                walk_block(e, &else_g, out);
            }
        }
        StmtKind::While { cond, body } => {
            let body_g = match rank_atom(cond) {
                Some(atom) => guard.and(atom),
                None => guard.clone(),
            };
            walk_block(body, &body_g, out);
        }
        StmtKind::For { body, .. } => walk_block(body, guard, out),
        _ => {}
    }
}

/// Recognise `rank() cmp bound` (either operand order) where `bound` is a
/// foldable constant or `nprocs() ± const`.
fn rank_atom(cond: &Expr) -> Option<Atom> {
    let ExprKind::Binary(op, lhs, rhs) = &cond.kind else {
        return None;
    };
    let cmp = match op {
        BinOp::Eq => Cmp::Eq,
        BinOp::Ne => Cmp::Ne,
        BinOp::Lt => Cmp::Lt,
        BinOp::Le => Cmp::Le,
        BinOp::Gt => Cmp::Gt,
        BinOp::Ge => Cmp::Ge,
        _ => return None,
    };
    if is_rank(lhs) {
        bound_of(rhs).map(|bound| Atom { cmp, bound })
    } else if is_rank(rhs) {
        bound_of(lhs).map(|bound| Atom {
            cmp: cmp.mirror(),
            bound,
        })
    } else {
        None
    }
}

fn is_rank(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Rank)
}

fn bound_of(e: &Expr) -> Option<Bound> {
    if let Some(c) = fold_int(e) {
        return Some(Bound::Const(c));
    }
    match &e.kind {
        ExprKind::Nprocs => Some(Bound::NprocsPlus(0)),
        ExprKind::Binary(BinOp::Add, a, b) => match (&a.kind, fold_int(b)) {
            (ExprKind::Nprocs, Some(c)) => Some(Bound::NprocsPlus(c)),
            _ => match (fold_int(a), &b.kind) {
                (Some(c), ExprKind::Nprocs) => Some(Bound::NprocsPlus(c)),
                _ => None,
            },
        },
        ExprKind::Binary(BinOp::Sub, a, b) => match (&a.kind, fold_int(b)) {
            (ExprKind::Nprocs, Some(c)) => Some(Bound::NprocsPlus(-c)),
            _ => None,
        },
        ExprKind::Unary(UnOp::Neg, inner) => match bound_of(inner)? {
            Bound::Const(c) => Some(Bound::Const(-c)),
            Bound::NprocsPlus(_) => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_graph::icfg::ProgramIr;

    fn guards_of(src: &str) -> (Guards, Program) {
        let ir = ProgramIr::from_source(src).unwrap();
        let g = Guards::build(&ir.unit.program);
        (g, ir.unit.program.clone())
    }

    /// StmtIds of every MPI statement, in program order.
    fn mpi_stmts(p: &Program) -> Vec<mpi_dfa_lang::ast::StmtId> {
        fn blk(b: &Block, out: &mut Vec<mpi_dfa_lang::ast::StmtId>) {
            for s in &b.stmts {
                match &s.kind {
                    StmtKind::Mpi(_) => out.push(s.id),
                    StmtKind::If {
                        then_blk, else_blk, ..
                    } => {
                        blk(then_blk, out);
                        if let Some(e) = else_blk {
                            blk(e, out);
                        }
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => blk(body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for sub in &p.subs {
            blk(&sub.body, &mut out);
        }
        out
    }

    #[test]
    fn branch_guards_split_ranks() {
        let (g, p) = guards_of(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); } }",
        );
        let mpi = mpi_stmts(&p);
        assert_eq!(mpi.len(), 2);
        let send = g.of(mpi[0]);
        let recv = g.of(mpi[1]);
        assert!(send.admits(0, 2) && !send.admits(1, 2));
        assert!(!recv.admits(0, 2) && recv.admits(1, 2));
        assert!(!send.overlaps(recv, 2));
    }

    #[test]
    fn nprocs_bounds_fold() {
        let (g, p) = guards_of(
            "program p global x: real;\n\
             sub main() { if (rank() < nprocs() - 1) { send(x, 1, 7); } }",
        );
        let mpi = mpi_stmts(&p);
        let send = g.of(mpi[0]);
        assert!(send.admits(0, 2) && !send.admits(1, 2));
        assert!(send.admits(2, 4) && !send.admits(3, 4));
    }

    #[test]
    fn unparseable_conditions_stay_any() {
        let (g, p) = guards_of(
            "program p global x: real; global k: int;\n\
             sub main() { if (k == 0) { send(x, 1, 7); } }",
        );
        let mpi = mpi_stmts(&p);
        assert!(g.of(mpi[0]).is_any());
    }
}
