//! Random SPMD program generator.
//!
//! Produces syntactically and semantically valid SMPL programs of a
//! configurable size for property tests (precision/soundness relations that
//! must hold on *every* program) and for the solver scaling benchmarks.
//! Generation is fully deterministic given the seed.
//!
//! Programs are built bottom-up so calls can never recurse: procedure `i`
//! may only call procedures `j < i`. Array subscripts are always of the
//! form `mod(<int var>, dim) + 1`, which keeps every generated index in
//! bounds by construction.

use mpi_dfa_lang::rng::SplitMix64;
use std::fmt::Write;

/// Size/shape knobs for generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of global real scalars.
    pub scalars: usize,
    /// Number of global real arrays.
    pub arrays: usize,
    /// Number of subroutines besides `main`.
    pub subs: usize,
    /// Statements per subroutine body (before nesting expansion).
    pub stmts_per_sub: usize,
    /// Maximum nesting depth of if/for blocks.
    pub max_depth: usize,
    /// Number of distinct message tags (smaller = denser comm matching).
    pub tags: usize,
    /// Probability (0..100) that a statement slot becomes an MPI operation.
    pub mpi_percent: u32,
    /// Emit only deadlock-free communication: collectives and paired
    /// neighbour shifts, never inside rank-dependent branches. Used by the
    /// dynamic-vs-static cross-validation, which needs programs the
    /// interpreter can actually run to completion.
    pub runnable: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scalars: 6,
            arrays: 3,
            subs: 4,
            stmts_per_sub: 10,
            max_depth: 2,
            tags: 4,
            mpi_percent: 25,
            runnable: false,
        }
    }
}

impl GenConfig {
    /// A configuration scaled by `factor` (for the scaling bench).
    pub fn scaled(factor: usize) -> Self {
        GenConfig {
            scalars: 4 + 2 * factor,
            arrays: 2 + factor,
            subs: 2 + factor,
            stmts_per_sub: 8 * factor.max(1),
            ..Default::default()
        }
    }
}

/// Generate one SMPL program as source text.
pub fn generate(seed: u64, config: &GenConfig) -> String {
    Generator {
        rng: SplitMix64::new(seed),
        config: config.clone(),
    }
    .run()
}

struct Generator {
    rng: SplitMix64,
    config: GenConfig,
}

impl Generator {
    fn run(&mut self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "program generated");
        for i in 0..self.config.scalars {
            let _ = writeln!(out, "global s{i}: real;");
        }
        for i in 0..self.config.arrays {
            let dim = self.rng.range(4, 64);
            let _ = writeln!(out, "global a{i}: real[{dim}];");
        }
        let _ = writeln!(out, "global iv: int;");

        for sub in 0..self.config.subs {
            let _ = writeln!(out, "sub f{sub}() {{");
            let _ = writeln!(out, "  var i: int;");
            let _ = writeln!(out, "  var t: real;");
            let body = self.block(sub, self.config.max_depth, self.config.stmts_per_sub);
            out.push_str(&body);
            let _ = writeln!(out, "}}");
        }

        let _ = writeln!(out, "sub main() {{");
        for sub in 0..self.config.subs {
            let _ = writeln!(out, "  call f{sub}();");
        }
        let _ = writeln!(out, "  print(s0);");
        let _ = writeln!(out, "}}");
        out
    }

    fn scalar(&mut self) -> String {
        if self.rng.chance(0.3) {
            "t".to_string()
        } else {
            format!("s{}", self.rng.range(0, self.config.scalars))
        }
    }

    /// An in-bounds array element reference.
    fn element(&mut self) -> String {
        let a = self.rng.range(0, self.config.arrays);
        // dims are unknown here, so index via mod of the smallest possible
        // dim (4), which is always in bounds.
        format!("a{a}[mod(i, 4) + 1]")
    }

    fn operand(&mut self) -> String {
        match self.rng.range(0, 4) {
            0 => format!("{:.1}", self.rng.range(0, 100) as f64 / 10.0),
            1 => self.element(),
            _ => self.scalar(),
        }
    }

    fn expr(&mut self) -> String {
        let a = self.operand();
        let b = self.operand();
        let op = ["+", "-", "*"][self.rng.range(0, 3)];
        if self.rng.chance(0.2) {
            format!("sqrt(abs({a} {op} {b}))")
        } else {
            format!("{a} {op} {b}")
        }
    }

    fn tag(&mut self) -> usize {
        self.rng.range(0, self.config.tags)
    }

    fn block(&mut self, sub: usize, depth: usize, stmts: usize) -> String {
        self.block_inner(sub, depth, stmts, false)
    }

    fn block_inner(&mut self, sub: usize, depth: usize, stmts: usize, in_branch: bool) -> String {
        let mut out = String::new();
        for _ in 0..stmts {
            let roll = self.rng.range(0, 100) as u32;
            if roll < self.config.mpi_percent {
                // In runnable mode, communication inside a rank-dependent
                // branch would desynchronize the processes.
                if !self.config.runnable || !in_branch {
                    out.push_str(&self.mpi_stmt());
                } else {
                    let s = self.scalar();
                    let v = self.expr();
                    let _ = writeln!(out, "  {s} = {v};");
                }
            } else if roll < self.config.mpi_percent + 10 && depth > 0 {
                // nested control flow
                if self.rng.chance(0.5) {
                    let _ = writeln!(out, "  if (rank() == {}) {{", self.rng.range(0, 4));
                    out.push_str(&self.block_inner(sub, depth - 1, 2, true));
                    if self.rng.chance(0.5) {
                        let _ = writeln!(out, "  }} else {{");
                        out.push_str(&self.block_inner(sub, depth - 1, 2, true));
                    }
                    let _ = writeln!(out, "  }}");
                } else {
                    let _ = writeln!(out, "  for i = 1, {} {{", self.rng.range(2, 8));
                    out.push_str(&self.block_inner(sub, depth - 1, 2, in_branch));
                    let _ = writeln!(out, "  }}");
                }
            } else if roll < self.config.mpi_percent + 15 && sub > 0 {
                let callee = self.rng.range(0, sub);
                let _ = writeln!(out, "  call f{callee}();");
            } else if roll < self.config.mpi_percent + 20 {
                let e = self.element();
                let v = self.expr();
                let _ = writeln!(out, "  {e} = {v};");
            } else {
                let s = self.scalar();
                let v = self.expr();
                let _ = writeln!(out, "  {s} = {v};");
            }
        }
        out
    }

    fn mpi_stmt(&mut self) -> String {
        let mut out = String::new();
        let kinds = if self.config.runnable { 5 } else { 6 };
        match self.rng.range(0, kinds) {
            0 if self.config.runnable => {
                // A paired neighbour shift: every send has its receive.
                let s = self.scalar();
                let r = self.scalar();
                let tag = self.tag();
                let _ = writeln!(out, "  if (rank() > 0) {{ send({s}, rank() - 1, {tag}); }}");
                let _ = writeln!(
                    out,
                    "  if (rank() < nprocs() - 1) {{ recv({r}, rank() + 1, {tag}); }}"
                );
            }
            0 => {
                let s = self.scalar();
                let tag = self.tag();
                let _ = writeln!(out, "  if (rank() > 0) {{ send({s}, rank() - 1, {tag}); }}");
            }
            1 if self.config.runnable => {
                // Ring exchange: unconditional, always matched.
                let s = self.scalar();
                let r = self.scalar();
                let tag = self.tag();
                let _ = writeln!(out, "  send({s}, mod(rank() + 1, nprocs()), {tag});");
                let _ = writeln!(
                    out,
                    "  recv({r}, mod(rank() + nprocs() - 1, nprocs()), {tag});"
                );
            }
            1 => {
                let s = self.scalar();
                let tag = self.tag();
                let _ = writeln!(
                    out,
                    "  if (rank() < nprocs() - 1) {{ recv({s}, rank() + 1, {tag}); }}"
                );
            }
            2 => {
                let a = self.rng.range(0, self.config.arrays);
                let _ = writeln!(out, "  bcast(a{a}, 0);");
            }
            3 => {
                let s = self.scalar();
                let d = self.scalar();
                let _ = writeln!(out, "  reduce(SUM, {s}, {d}, 0);");
            }
            4 => {
                let s = self.scalar();
                let d = self.scalar();
                let _ = writeln!(out, "  allreduce(MAX, {s}, {d});");
            }
            _ => {
                let s = self.scalar();
                let tag = self.tag();
                let _ = writeln!(out, "  if (rank() > 0) {{ recv({s}, ANY, {tag}); }}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_lang::compile;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..50 {
            let src = generate(seed, &GenConfig::default());
            compile(&src).unwrap_or_else(|e| panic!("seed {seed} failed: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn scaled_configs_grow() {
        let small = generate(1, &GenConfig::scaled(1));
        let big = generate(1, &GenConfig::scaled(6));
        assert!(big.len() > small.len());
        assert!(compile(&big).is_ok());
    }

    #[test]
    fn generated_programs_contain_mpi() {
        let mut any = false;
        for seed in 0..10 {
            let src = generate(seed, &GenConfig::default());
            any |= src.contains("send(") || src.contains("bcast(") || src.contains("reduce(");
        }
        assert!(any, "generator should emit MPI operations");
    }
}
