//! The resource governor: budget-metered analysis with a sound
//! graceful-degradation ladder.
//!
//! The paper's evaluation compares a precise MPI-ICFG analysis against a
//! conservative plain-ICFG baseline, which means every client analysis in
//! this repo has a built-in, provably sound fallback. The governor exploits
//! that structure: instead of hanging (or being killed) when a budget is
//! exceeded, it steps down tier by tier, re-running the analysis in a
//! cheaper configuration within the remaining budget:
//!
//! * **T0** — full MPI-ICFG at the configured clone level with the
//!   configured matching strategy (the paper's precise configuration);
//! * **T1** — clone level 0 (context-insensitive) with syntactic matching,
//!   skipping the budget-hungry reaching-constants bootstrap;
//! * **T2** — plain ICFG under [`Mode::GlobalBufferSound`], the worst-case
//!   communication assumption (every receive may deliver varying data,
//!   every sent value may be needed);
//! * if even T2 cannot finish, a **saturated** all-active result — the ⊤
//!   element of the activity lattice, trivially sound for a may-analysis.
//!
//! Every result carries an [`AnalysisProvenance`] so a degraded number can
//! never be mistaken for a precise one. The tiers only ever *lose*
//! precision (`active(T0) ⊆ active(T1) ⊆ active(T2) ⊆ saturated`); the
//! ladder tests in `tests/degradation_ladder.rs` assert this relation on
//! generated programs.
//!
//! Note a *non-converged snapshot* of a union analysis is an
//! **under**-approximation (facts still in flight) and is therefore never
//! published by the governor — exhaustion always moves down the ladder
//! instead.

use crate::activity::{
    active_bytes, analyze_icfg_with, analyze_mpi_delta, analyze_mpi_with, ActivityConfig,
    ActivityDelta, ActivityResult, Mode,
};
use crate::mpi_match::{build_mpi_icfg_with_budget, Matching};
use mpi_dfa_core::budget::{Budget, BudgetSpent};
use mpi_dfa_core::graph::NodeId;
use mpi_dfa_core::problem::Direction;
use mpi_dfa_core::solver::{ConvergenceStats, Solution, SolveParams, Strategy};
use mpi_dfa_core::telemetry::{self, ArgValue};
use mpi_dfa_core::varset::VarSet;
use mpi_dfa_graph::icfg::{Icfg, ProgramIr};
use std::sync::Arc;
use std::time::Instant;

/// The degradation ladder's rungs, most precise first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Full MPI-ICFG, configured clone level and matching.
    T0,
    /// Clone level 0 MPI-ICFG, syntactic matching.
    T1,
    /// Plain ICFG with the sound global-buffer assumption.
    T2,
}

impl Tier {
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::T0 => "T0",
            Tier::T1 => "T1",
            Tier::T2 => "T2",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a published result came from, attached to every governed analysis
/// so Table-1/Figure-4 output, the CLI, and JSON reports can distinguish a
/// precise number from a degraded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisProvenance {
    /// The tier that produced the published result.
    pub tier: Tier,
    /// Budget the whole governed run consumed (solver work units across
    /// all attempted tiers, wall clock from entry to publication).
    pub budget_spent: BudgetSpent,
    /// Why higher tiers were abandoned; `None` for an undegraded T0 run.
    pub degradation_reason: Option<String>,
    /// True when even T2 exhausted and the all-active ⊤ result was
    /// published instead of a solver fixpoint.
    pub saturated: bool,
}

impl AnalysisProvenance {
    /// True when the result is the precise, undegraded configuration.
    pub fn is_precise(&self) -> bool {
        self.tier == Tier::T0 && !self.saturated
    }
}

/// Whether the governor may step down the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeMode {
    /// Step down tier by tier on exhaustion (the default).
    Auto,
    /// Fail with a structured error instead of degrading.
    Off,
}

/// Configuration of one governed activity run.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Clone level for the T0 attempt.
    pub clone_level: usize,
    /// Matching strategy for the T0 attempt.
    pub matching: Matching,
    /// The budget shared by all tiers of the run.
    pub budget: Budget,
    pub degrade: DegradeMode,
    /// Solver pass bound per fixpoint (see [`SolveParams::max_passes`]).
    pub max_passes: usize,
    /// Fixpoint strategy used by every tier's solves. Deliberately **not**
    /// part of any result-cache key: all strategies produce identical facts
    /// (see `docs/SOLVER.md`), so a cached result is valid for any strategy.
    pub strategy: Strategy,
    /// Lowest rung the ladder may *start* from. `Tier::T0` (the default)
    /// is the normal full ladder; the service's admission control raises
    /// this under sustained load so heavy traffic degrades deterministically
    /// instead of queueing unboundedly. Results produced under a raised
    /// floor are still sound (the floor only skips the more precise rungs).
    pub tier_floor: Tier,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            clone_level: 0,
            matching: Matching::ReachingConstants,
            budget: Budget::unlimited(),
            degrade: DegradeMode::Auto,
            max_passes: SolveParams::default().max_passes,
            strategy: Strategy::session_default(),
            tier_floor: Tier::T0,
        }
    }
}

/// A governed analysis outcome: the (sound) result plus its provenance.
#[derive(Debug)]
pub struct GovernedActivity {
    pub result: ActivityResult,
    pub provenance: AnalysisProvenance,
    /// Communication-edge count of the graph the published tier analyzed;
    /// `None` when the tier had no MPI-ICFG (T2 or the saturated result).
    pub comm_edges: Option<usize>,
}

/// Projected bytes of data-flow facts for an activity run: two phases
/// (Vary/Useful) × two sides (input/output) × one bitvector word per 64
/// locations per node. Checked against `Budget::max_fact_bytes` *before*
/// allocating, so the cap degrades instead of OOM-killing.
pub fn projected_activity_fact_bytes(num_nodes: usize, universe: usize) -> u64 {
    let words_per_set = universe.div_ceil(64) as u64;
    (num_nodes as u64) * 2 * 2 * words_per_set * 8
}

/// Run activity analysis for `context` under the governor: try T0, then
/// degrade tier by tier within the remaining budget. Returns `Err` only for
/// configuration errors (unknown context/variables) or when degradation is
/// [`DegradeMode::Off`] and the budget ran out.
pub fn governed_activity(
    ir: &Arc<ProgramIr>,
    context: &str,
    config: &ActivityConfig,
    gov: &GovernorConfig,
) -> Result<GovernedActivity, String> {
    let started = Instant::now();
    let mut gov_span = telemetry::span("governor", "governed_activity");
    gov_span.arg("context", context);
    let mut spent_work: u64 = 0;
    let mut reasons: Vec<String> = Vec::new();

    let t1_redundant = gov.clone_level == 0
        && matches!(gov.matching, Matching::Syntactic | Matching::Naive)
        && gov.degrade == DegradeMode::Auto;
    let full_ladder: &[Tier] = match gov.degrade {
        // With degradation off the floor still applies: the service uses
        // the floor for load shedding, which must override precision even
        // for clients that opted out of budget-driven degradation.
        DegradeMode::Off => match gov.tier_floor {
            Tier::T0 => &[Tier::T0],
            Tier::T1 => &[Tier::T1],
            Tier::T2 => &[Tier::T2],
        },
        DegradeMode::Auto if t1_redundant => &[Tier::T0, Tier::T2],
        DegradeMode::Auto => &[Tier::T0, Tier::T1, Tier::T2],
    };
    let tiers: Vec<Tier> = full_ladder
        .iter()
        .copied()
        // A T1 floor keeps a T0 attempt that is already configured at T1's
        // cost (clone 0, cheap matching) — skipping it would only lose work.
        .filter(|&t| t >= gov.tier_floor || (t1_redundant && gov.tier_floor == Tier::T1))
        .collect();
    if gov.tier_floor > Tier::T0 {
        reasons.push(format!("tier floor {} (load shedding)", gov.tier_floor));
    }

    for &tier in &tiers {
        let spent = BudgetSpent {
            work: spent_work,
            elapsed: started.elapsed(),
        };
        let remaining = gov.budget.remaining_after(&spent);
        trace_tier_attempt(tier);
        match attempt_tier(ir, context, config, gov, tier, &remaining, &mut spent_work) {
            Ok((result, comm_edges)) => {
                let degradation_reason = if reasons.is_empty() {
                    None
                } else {
                    Some(reasons.join("; "))
                };
                trace_tier_publish(&mut gov_span, tier, false, spent_work);
                return Ok(GovernedActivity {
                    result,
                    provenance: AnalysisProvenance {
                        tier,
                        budget_spent: BudgetSpent {
                            work: spent_work,
                            elapsed: started.elapsed(),
                        },
                        degradation_reason,
                        saturated: false,
                    },
                    comm_edges,
                });
            }
            Err(TierFailure::Config(msg)) => return Err(msg),
            Err(TierFailure::Exhausted(reason)) => {
                trace_tier_degrade(tier, &reason);
                reasons.push(format!("{tier}: {reason}"));
            }
        }
    }

    if gov.degrade == DegradeMode::Off {
        return Err(format!(
            "budget exhausted and degradation disabled (--degrade=off): {}",
            reasons.join("; ")
        ));
    }

    // Even T2 could not finish: publish the saturated all-active ⊤ result,
    // which over-approximates every tier by construction.
    let result = saturated_result(ir, context)?;
    reasons.push("saturated: published the all-active ⊤ result".into());
    trace_tier_publish(&mut gov_span, Tier::T2, true, spent_work);
    Ok(GovernedActivity {
        result,
        provenance: AnalysisProvenance {
            tier: Tier::T2,
            budget_spent: BudgetSpent {
                work: spent_work,
                elapsed: started.elapsed(),
            },
            degradation_reason: Some(reasons.join("; ")),
            saturated: true,
        },
        comm_edges: None,
    })
}

/// A governed *incremental* analysis outcome.
#[derive(Debug)]
pub struct GovernedDelta {
    pub governed: GovernedActivity,
    /// True when the incremental engine produced the published result;
    /// false when it fell back to a full [`governed_activity`] ladder run.
    pub incremental: bool,
    /// Why the incremental attempt was abandoned (seed rejected, budget
    /// exhausted, graph rebuild failed); `None` on the incremental path.
    pub fallback_reason: Option<String>,
    /// SCC regions in the new graph, both phases summed (0 on fallback).
    pub regions_total: usize,
    /// Regions transplanted from the seed (0 on fallback).
    pub regions_reused: usize,
    /// Regions re-solved (0 on fallback).
    pub regions_resolved: usize,
}

/// Incremental governed activity: seed the T0 fixpoints from `prev` and
/// force-dirty every node of `dirty_procs` in the re-built graph. The
/// governor's policy for this path differs from the full ladder: **any**
/// failure — an unusable seed, budget exhaustion, non-convergence — falls
/// back to a *full* [`governed_activity`] run (which may then degrade
/// tier by tier as usual) rather than publishing a tier-dropped
/// incremental answer. Incremental results are always precise-T0 or not
/// incremental at all, so `cache: partial` provenance can never hide a
/// degraded tier.
pub fn governed_activity_delta(
    ir: &Arc<ProgramIr>,
    context: &str,
    config: &ActivityConfig,
    gov: &GovernorConfig,
    prev: &ActivityResult,
    dirty_procs: &[String],
) -> Result<GovernedDelta, String> {
    let started = Instant::now();
    let mut span = telemetry::span("governor", "governed_activity_delta");
    span.arg("context", context);
    span.arg("dirty_procs", dirty_procs.len());
    match attempt_delta(ir, context, config, gov, prev, dirty_procs) {
        Ok((delta, comm_edges)) => {
            let spent_work =
                delta.result.vary.stats.node_visits + delta.result.useful.stats.node_visits;
            span.arg("incremental", true);
            span.arg("regions_reused", delta.regions_reused);
            span.arg("regions_resolved", delta.regions_resolved);
            Ok(GovernedDelta {
                governed: GovernedActivity {
                    result: delta.result,
                    provenance: AnalysisProvenance {
                        tier: Tier::T0,
                        budget_spent: BudgetSpent {
                            work: spent_work,
                            elapsed: started.elapsed(),
                        },
                        degradation_reason: None,
                        saturated: false,
                    },
                    comm_edges: Some(comm_edges),
                },
                incremental: true,
                fallback_reason: None,
                regions_total: delta.regions_total,
                regions_reused: delta.regions_reused,
                regions_resolved: delta.regions_resolved,
            })
        }
        Err(reason) => {
            if telemetry::is_enabled() {
                telemetry::metric_add("governor_delta_fallback_total", 1.0);
            }
            span.arg("incremental", false);
            span.arg("fallback_reason", reason.clone());
            let governed = governed_activity(ir, context, config, gov)?;
            Ok(GovernedDelta {
                governed,
                incremental: false,
                fallback_reason: Some(reason),
                regions_total: 0,
                regions_reused: 0,
                regions_resolved: 0,
            })
        }
    }
}

/// The incremental T0 attempt of [`governed_activity_delta`]: rebuild the
/// graph, map dirty procedures to their nodes, and run the seeded
/// re-solve. Every error is a fallback signal, never a published result.
fn attempt_delta(
    ir: &Arc<ProgramIr>,
    context: &str,
    config: &ActivityConfig,
    gov: &GovernorConfig,
    prev: &ActivityResult,
    dirty_procs: &[String],
) -> Result<(ActivityDelta, usize), String> {
    let remaining = &gov.budget;
    let mpi = build_mpi_icfg_with_budget(
        ir.clone(),
        context,
        gov.clone_level,
        gov.matching,
        remaining,
    )
    .map_err(|e| format!("graph rebuild failed: {e}"))?;
    let projected = projected_activity_fact_bytes(mpi.icfg().nodes().count(), ir.locs.len());
    remaining
        .meter()
        .check_fact_bytes(projected)
        .map_err(|e| format!("{e} ({projected} bytes projected)"))?;
    let icfg = mpi.icfg();
    let dirty: Vec<NodeId> = icfg
        .nodes()
        .filter(|&n| {
            let name = icfg.ir.proc_name(icfg.proc_of(n));
            dirty_procs.iter().any(|p| p == name)
        })
        .collect();
    let params = SolveParams {
        max_passes: gov.max_passes,
        budget: remaining.clone(),
        strategy: gov.strategy,
    };
    let edges = mpi.comm_edges.len();
    let delta = analyze_mpi_delta(&mpi, config, &params, prev, &dirty)?;
    Ok((delta, edges))
}

/// Telemetry for one ladder step being tried: an instant event plus the
/// `governor_tier_attempts_total{tier=...}` counter.
fn trace_tier_attempt(tier: Tier) {
    if !telemetry::is_enabled() {
        return;
    }
    telemetry::instant(
        "governor",
        "tier_attempt",
        vec![("tier", ArgValue::Str(tier.as_str().into()))],
    );
    telemetry::metric_add(
        &telemetry::metric_name("governor_tier_attempts_total", &[("tier", tier.as_str())]),
        1.0,
    );
}

/// Telemetry for a tier abandoned on exhaustion — the ladder transition the
/// acceptance criteria ask the metrics dump to record per tier.
fn trace_tier_degrade(tier: Tier, reason: &str) {
    if !telemetry::is_enabled() {
        return;
    }
    telemetry::instant(
        "governor",
        "tier_degrade",
        vec![
            ("tier", ArgValue::Str(tier.as_str().into())),
            ("reason", ArgValue::Str(reason.to_string())),
        ],
    );
    telemetry::metric_add(
        &telemetry::metric_name("governor_tier_exhausted_total", &[("tier", tier.as_str())]),
        1.0,
    );
}

/// Telemetry for the tier whose result gets published (possibly the
/// saturated ⊤ fallback); also closes out the governed-run span args.
fn trace_tier_publish(span: &mut telemetry::SpanGuard, tier: Tier, saturated: bool, work: u64) {
    if !telemetry::is_enabled() {
        return;
    }
    telemetry::instant(
        "governor",
        "tier_publish",
        vec![
            ("tier", ArgValue::Str(tier.as_str().into())),
            ("saturated", ArgValue::Bool(saturated)),
        ],
    );
    telemetry::metric_add(
        &telemetry::metric_name("governor_published_tier_total", &[("tier", tier.as_str())]),
        1.0,
    );
    if saturated {
        telemetry::metric_add("governor_saturated_total", 1.0);
    }
    span.arg("published_tier", tier.as_str());
    span.arg("saturated", saturated);
    span.arg("work", work);
}

enum TierFailure {
    /// Unknown context / variables: retrying cheaper tiers cannot help.
    Config(String),
    /// Budget exhaustion or non-convergence: step down the ladder.
    Exhausted(String),
}

fn attempt_tier(
    ir: &Arc<ProgramIr>,
    context: &str,
    config: &ActivityConfig,
    gov: &GovernorConfig,
    tier: Tier,
    remaining: &Budget,
    spent_work: &mut u64,
) -> Result<(ActivityResult, Option<usize>), TierFailure> {
    let universe = ir.locs.len();
    let params = SolveParams {
        max_passes: gov.max_passes,
        budget: remaining.clone(),
        strategy: gov.strategy,
    };

    let check_mem = |num_nodes: usize| -> Result<(), TierFailure> {
        let projected = projected_activity_fact_bytes(num_nodes, universe);
        remaining
            .meter()
            .check_fact_bytes(projected)
            .map_err(|e| TierFailure::Exhausted(format!("{e} ({projected} bytes projected)")))
    };

    let (result, comm_edges) = match tier {
        Tier::T0 | Tier::T1 => {
            let (clone_level, matching) = match tier {
                Tier::T0 => (gov.clone_level, gov.matching),
                _ => (0, Matching::Syntactic),
            };
            let mpi =
                build_mpi_icfg_with_budget(ir.clone(), context, clone_level, matching, remaining)
                    .map_err(|e| match e {
                    mpi_dfa_graph::icfg::IcfgError::Budget(x) => {
                        TierFailure::Exhausted(x.to_string())
                    }
                    mpi_dfa_graph::icfg::IcfgError::TooManyNodes(n) => {
                        TierFailure::Exhausted(format!("clone expansion reached {n} nodes"))
                    }
                    other => TierFailure::Config(other.to_string()),
                })?;
            check_mem(mpi.icfg().nodes().count())?;
            let edges = mpi.comm_edges.len();
            (
                analyze_mpi_with(&mpi, config, &params).map_err(TierFailure::Config)?,
                Some(edges),
            )
        }
        Tier::T2 => {
            let icfg =
                Icfg::build_with_budget(ir.clone(), context, 0, remaining).map_err(
                    |e| match e {
                        mpi_dfa_graph::icfg::IcfgError::Budget(x) => {
                            TierFailure::Exhausted(x.to_string())
                        }
                        other => TierFailure::Config(other.to_string()),
                    },
                )?;
            check_mem(icfg.nodes().count())?;
            (
                analyze_icfg_with(&icfg, Mode::GlobalBufferSound, config, &params)
                    .map_err(TierFailure::Config)?,
                None,
            )
        }
    };

    *spent_work += result.vary.stats.node_visits + result.useful.stats.node_visits;
    if result.converged() {
        Ok((result, comm_edges))
    } else {
        let reason = result
            .vary
            .stats
            .exhausted
            .or(result.useful.stats.exhausted)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "pass bound hit before fixpoint".to_string());
        Err(TierFailure::Exhausted(reason))
    }
}

/// The ⊤ element of the activity analysis: every location varies and is
/// useful at every program point of the clone-0 ICFG. This *is* a sound
/// answer for a may-analysis (it over-approximates every fixpoint), unlike
/// a non-converged solver snapshot, which under-approximates.
fn saturated_result(ir: &Arc<ProgramIr>, context: &str) -> Result<ActivityResult, String> {
    // Clone level 0 keeps the graph linear in program size; if even that
    // overflows the hard node cap the program itself is out of scope.
    let icfg = Icfg::build(ir.clone(), context, 0).map_err(|e| e.to_string())?;
    let universe = ir.locs.len();
    let n = icfg.nodes().count();
    let full = VarSet::full(universe);
    // Synthetic fixpoint: marked converged because it is a final sound
    // answer, not an in-flight snapshot.
    let stats = ConvergenceStats {
        converged: true,
        ..Default::default()
    };
    let solution = |direction: Direction| Solution {
        direction,
        input: vec![full.clone(); n],
        output: vec![full.clone(); n],
        stats: stats.clone(),
        regions: None,
    };
    let bytes = active_bytes(&ir.locs, &full);
    Ok(ActivityResult {
        mode: Mode::GlobalBufferSound,
        vary: solution(Direction::Forward),
        useful: solution(Direction::Backward),
        active: full,
        active_bytes: bytes,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = "program fig1\n\
        global x: real; global z: real; global b: real; global y: real;\n\
        global f: real;\n\
        sub main() {\n\
          x = 0.0; z = 2.0; b = 7.0;\n\
          if (rank() == 0) {\n\
            x = x + 1.0; b = x * 3.0; send(x, 1, 9);\n\
          } else {\n\
            recv(y, 0, 9); z = b * y;\n\
          }\n\
          reduce(SUM, z, f, 0);\n\
        }";

    fn fig1() -> Arc<ProgramIr> {
        ProgramIr::from_source(FIGURE1).expect("compile")
    }

    fn cfg() -> ActivityConfig {
        ActivityConfig::new(["x"], ["f"])
    }

    #[test]
    fn unlimited_budget_stays_at_t0() {
        let g = governed_activity(&fig1(), "main", &cfg(), &GovernorConfig::default()).unwrap();
        assert_eq!(g.provenance.tier, Tier::T0);
        assert!(g.provenance.is_precise());
        assert!(!g.provenance.saturated);
        assert_eq!(g.provenance.degradation_reason, None);
        assert!(g.result.converged());
        assert!(g.provenance.budget_spent.work > 0);
    }

    #[test]
    fn tiny_work_budget_degrades_with_reason() {
        let gov = GovernorConfig {
            budget: Budget::unlimited().with_max_work(1),
            ..GovernorConfig::default()
        };
        let g = governed_activity(&fig1(), "main", &cfg(), &gov).unwrap();
        assert_ne!(g.provenance.tier, Tier::T0);
        let reason = g.provenance.degradation_reason.as_deref().unwrap();
        assert!(
            reason.contains("T0"),
            "reason names the failed tier: {reason}"
        );
        // Whatever rung it landed on, the result over-approximates T0.
        let precise =
            governed_activity(&fig1(), "main", &cfg(), &GovernorConfig::default()).unwrap();
        assert!(precise.result.active.is_subset(&g.result.active));
    }

    #[test]
    fn exhausting_all_tiers_saturates() {
        // One work unit makes every graph build fail immediately.
        let gov = GovernorConfig {
            budget: Budget::unlimited().with_max_work(0),
            ..GovernorConfig::default()
        };
        let g = governed_activity(&fig1(), "main", &cfg(), &gov).unwrap();
        assert!(g.provenance.saturated);
        assert_eq!(g.provenance.tier, Tier::T2);
        assert_eq!(g.result.active.len(), g.result.active.universe());
        assert!(g.result.converged(), "saturated ⊤ is a final sound answer");
    }

    #[test]
    fn degrade_off_returns_error_instead() {
        let gov = GovernorConfig {
            budget: Budget::unlimited().with_max_work(1),
            degrade: DegradeMode::Off,
            ..GovernorConfig::default()
        };
        let e = governed_activity(&fig1(), "main", &cfg(), &gov).unwrap_err();
        assert!(e.contains("degradation disabled"), "{e}");
    }

    #[test]
    fn config_errors_do_not_degrade() {
        let gov = GovernorConfig::default();
        let bad = ActivityConfig::new(["nope"], ["f"]);
        assert!(governed_activity(&fig1(), "main", &bad, &gov).is_err());
        assert!(governed_activity(&fig1(), "nope", &cfg(), &gov).is_err());
    }

    #[test]
    fn fact_memory_cap_degrades_to_saturated() {
        let gov = GovernorConfig {
            budget: Budget::unlimited().with_max_fact_bytes(8),
            ..GovernorConfig::default()
        };
        let g = governed_activity(&fig1(), "main", &cfg(), &gov).unwrap();
        assert!(
            g.provenance.saturated,
            "8 bytes cannot hold any tier's facts"
        );
        let reason = g.provenance.degradation_reason.unwrap();
        assert!(reason.contains("fact-memory"), "{reason}");
    }

    #[test]
    fn provenance_tier_ordering_matches_ladder() {
        assert!(Tier::T0 < Tier::T1 && Tier::T1 < Tier::T2);
        assert_eq!(Tier::T1.to_string(), "T1");
    }

    const TWO_PROC_BASE: &str = "program inc\n\
        global x: real; global y: real; global f: real; global t: real;\n\
        sub work() {\n\
          t = x * 2.0;\n\
          if (rank() == 0) { send(t, 1, 4); } else { recv(y, 0, 4); }\n\
        }\n\
        sub main() {\n\
          x = x + 1.0;\n\
          call work();\n\
          f = y + t;\n\
        }";

    const TWO_PROC_EDIT: &str = "program inc\n\
        global x: real; global y: real; global f: real; global t: real;\n\
        sub work() {\n\
          print(1.0);\n\
          t = x * 2.0;\n\
          if (rank() == 0) { send(t, 1, 4); } else { recv(y, 0, 4); }\n\
          print(2.0);\n\
        }\n\
        sub main() {\n\
          x = x + 1.0;\n\
          call work();\n\
          f = y + t;\n\
        }";

    fn rp_gov() -> GovernorConfig {
        GovernorConfig {
            strategy: Strategy::RegionParallel { threads: 2 },
            ..GovernorConfig::default()
        }
    }

    #[test]
    fn delta_matches_the_full_governed_solve() {
        let gov = rp_gov();
        let cfg = ActivityConfig::new(["x"], ["f"]);
        let base = ProgramIr::from_source(TWO_PROC_BASE).expect("compile base");
        let edit = ProgramIr::from_source(TWO_PROC_EDIT).expect("compile edit");

        let prev = governed_activity(&base, "main", &cfg, &gov).unwrap();
        let full = governed_activity(&edit, "main", &cfg, &gov).unwrap();
        let delta = governed_activity_delta(
            &edit,
            "main",
            &cfg,
            &gov,
            &prev.result,
            &["work".to_string()],
        )
        .unwrap();

        assert!(delta.incremental, "{:?}", delta.fallback_reason);
        assert_eq!(delta.fallback_reason, None);
        assert_eq!(delta.governed.provenance.tier, Tier::T0);
        assert!(delta.governed.provenance.is_precise());
        assert!(delta.regions_resolved > 0);
        assert_eq!(
            delta.regions_reused + delta.regions_resolved,
            delta.regions_total
        );
        assert_eq!(delta.governed.result.vary.input, full.result.vary.input);
        assert_eq!(delta.governed.result.vary.output, full.result.vary.output);
        assert_eq!(delta.governed.result.useful.input, full.result.useful.input);
        assert_eq!(
            delta.governed.result.useful.output,
            full.result.useful.output
        );
        assert_eq!(delta.governed.result.active, full.result.active);
        assert_eq!(delta.governed.comm_edges, full.comm_edges);
    }

    #[test]
    fn delta_with_seedless_previous_result_falls_back_to_full_solve() {
        let cfg = ActivityConfig::new(["x"], ["f"]);
        let base = ProgramIr::from_source(TWO_PROC_BASE).expect("compile base");
        let edit = ProgramIr::from_source(TWO_PROC_EDIT).expect("compile edit");

        // A worklist run never captures seed regions, so the incremental
        // attempt must be rejected — and the governor answers with a full
        // precise solve, not an error and not a tier drop.
        let wl_gov = GovernorConfig {
            strategy: Strategy::Worklist,
            ..GovernorConfig::default()
        };
        let prev = governed_activity(&base, "main", &cfg, &wl_gov).unwrap();
        let delta = governed_activity_delta(
            &edit,
            "main",
            &cfg,
            &wl_gov,
            &prev.result,
            &["work".to_string()],
        )
        .unwrap();

        assert!(!delta.incremental);
        let reason = delta.fallback_reason.as_deref().unwrap();
        assert!(reason.contains("seed"), "{reason}");
        assert_eq!(delta.governed.provenance.tier, Tier::T0);
        assert!(delta.governed.result.converged());

        let full = governed_activity(&edit, "main", &cfg, &wl_gov).unwrap();
        assert_eq!(delta.governed.result.active, full.result.active);
    }

    #[test]
    fn delta_budget_exhaustion_falls_back_to_the_full_ladder() {
        let cfg = ActivityConfig::new(["x"], ["f"]);
        let base = ProgramIr::from_source(TWO_PROC_BASE).expect("compile base");
        let edit = ProgramIr::from_source(TWO_PROC_EDIT).expect("compile edit");

        let prev = governed_activity(&base, "main", &cfg, &rp_gov()).unwrap();

        // A budget too small for the incremental attempt: the delta path
        // must not publish a tier-dropped incremental answer — it hands
        // the whole request to the normal governed ladder, which degrades
        // (or saturates) with its usual provenance.
        let tiny = GovernorConfig {
            budget: Budget::unlimited().with_max_work(1),
            ..rp_gov()
        };
        let delta = governed_activity_delta(
            &edit,
            "main",
            &cfg,
            &tiny,
            &prev.result,
            &["work".to_string()],
        )
        .unwrap();

        assert!(!delta.incremental);
        assert!(delta.fallback_reason.is_some());
        assert_eq!(delta.regions_reused, 0);
        // The published result came from the ladder, with honest
        // degradation provenance — not an incremental partial answer.
        assert!(delta.governed.provenance.degradation_reason.is_some());
        assert!(delta.governed.result.converged());
    }
}
