//! The benchmark program registry.
//!
//! Each benchmark is an SMPL reimplementation preserving the data-flow
//! skeleton of the code the paper evaluated (see the header comment of each
//! `.smpl` file and DESIGN.md for the substitution argument). Loop extents
//! cover prefixes of the arrays so the interpreter can run the programs
//! quickly; static analysis results depend only on the declarations.

use mpi_dfa_graph::icfg::ProgramIr;
use std::sync::Arc;

/// The paper's Figure 1 motivating program.
pub const FIGURE1: &str = include_str!("programs/figure1.smpl");
/// Biostat log-likelihood (Spiegelman / Hovland).
pub const BIOSTAT: &str = include_str!("programs/biostat.smpl");
/// Successive over-relaxation (Hovland).
pub const SOR: &str = include_str!("programs/sor.smpl");
/// NAS CG-style conjugate gradient.
pub const CG: &str = include_str!("programs/cg.smpl");
/// NAS LU-style SSOR solver.
pub const LU: &str = include_str!("programs/lu.smpl");
/// NAS MG-style multigrid V-cycle.
pub const MG: &str = include_str!("programs/mg.smpl");
/// ASCI Sweep3d-style wavefront transport sweep.
pub const SWEEP3D: &str = include_str!("programs/sweep3d.smpl");

/// All registered programs, by name.
pub const ALL: &[(&str, &str)] = &[
    ("figure1", FIGURE1),
    ("biostat", BIOSTAT),
    ("sor", SOR),
    ("cg", CG),
    ("lu", LU),
    ("mg", MG),
    ("sweep3d", SWEEP3D),
];

/// Look up a program source by name.
pub fn source(name: &str) -> Option<&'static str> {
    ALL.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Compile and build the IR for a registered program, panicking with a
/// readable message on front-end errors (the sources are fixed assets; a
/// failure is a bug).
pub fn ir(name: &str) -> Arc<ProgramIr> {
    let src = source(name).unwrap_or_else(|| panic!("unknown benchmark program `{name}`"));
    ProgramIr::from_source(src)
        .unwrap_or_else(|e| panic!("benchmark program `{name}` failed to compile:\n{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_compile() {
        for (name, _) in ALL {
            let ir = ir(name);
            assert!(!ir.cfgs.is_empty(), "{name} has procedures");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(source("biostat").is_some());
        assert!(source("nonesuch").is_none());
    }

    #[test]
    fn declared_sizes_match_the_design() {
        // The Table 1 reproduction depends on these exact declarations;
        // guard them against accidental edits.
        let bio = ir("biostat");
        let sz = |ir: &ProgramIr, n: &str| ir.locs.info(ir.locs.global(n).unwrap()).byte_size();
        assert_eq!(sz(&bio, "dmat"), 1_432_616);
        assert_eq!(sz(&bio, "xmle"), 8_712);

        let sor = ir("sor");
        assert_eq!(sz(&sor, "u"), 3_030_080);
        assert_eq!(sz(&sor, "bc"), 8_032);

        let lu = ir("lu");
        assert_eq!(sz(&lu, "u"), 93_558_448);
        assert_eq!(sz(&lu, "rsd"), 46_817_952);
        assert_eq!(sz(&lu, "frct"), 46_818_048);
        assert_eq!(sz(&lu, "tv"), 5_524_712);
        assert_eq!(sz(&lu, "ce"), 40);

        let mg = ir("mg");
        assert_eq!(sz(&mg, "u"), 16_908_584);
        assert_eq!(sz(&mg, "r"), 16_908_608);
        assert_eq!(sz(&mg, "hier"), 613_670_648);

        let sw = ir("sweep3d");
        assert_eq!(sz(&sw, "hi"), 120_736);
        assert_eq!(sz(&sw, "w"), 192);
        assert_eq!(sz(&sw, "weta"), 48);
        assert_eq!(
            sz(&sw, "phi") + sz(&sw, "flux") + sz(&sw, "src") + sz(&sw, "phiib"),
            17_999_856
        );
    }

    #[test]
    fn every_benchmark_has_mpi_operations() {
        for (name, _) in ALL {
            let ir = ir(name);
            assert!(
                ir.callgraph.has_mpi.iter().any(|&b| b),
                "{name} contains no MPI data operations"
            );
        }
    }
}
