//! The two-copy CFG alternative (Section 2 related work).
//!
//! The paper discusses an approach due to Krishnamurthy & Yelick: replicate
//! the control-flow graph, give each copy its own namespace, and let
//! communication edges cross between the copies — properly modeling the
//! disjoint memory spaces of SPMD processes. It is precise but doubles the
//! graph; the paper's claim is that the one-copy MPI-ICFG framework
//! "provides results with equivalent precision".
//!
//! This module implements the two-copy construction so that claim can be
//! *measured*: [`TwoCopyGraph`] duplicates any MPI-ICFG (flow/call/return
//! edges within each copy, communication edges crossing copies), and
//! [`rebase`] adapts any node-indexed problem to run over it. Because
//! communication facts are lattice summaries rather than variable sets, the
//! two namespaces never mix through the crossing edges, so both copies can
//! share one location universe.

use mpi_dfa_core::graph::{Edge, FlowGraph, NodeId};
use mpi_dfa_core::problem::{Dataflow, Direction};
use mpi_dfa_graph::mpi::MpiIcfg;

/// Two disjoint copies of a base graph with communication edges crossing
/// between the copies. Node `i + N` is copy B's instance of base node `i`.
#[derive(Debug)]
pub struct TwoCopyGraph {
    base_nodes: usize,
    in_edges: Vec<Vec<Edge>>,
    out_edges: Vec<Vec<Edge>>,
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
}

impl TwoCopyGraph {
    /// Duplicate `g`.
    pub fn build(g: &MpiIcfg) -> TwoCopyGraph {
        let n = g.num_nodes();
        let shift = |node: NodeId| NodeId(node.0 + n as u32);
        let mut in_edges = vec![Vec::new(); 2 * n];
        let mut out_edges = vec![Vec::new(); 2 * n];
        let push = |e: Edge, ins: &mut Vec<Vec<Edge>>, outs: &mut Vec<Vec<Edge>>| {
            outs[e.from.index()].push(e);
            ins[e.to.index()].push(e);
        };
        for i in 0..n {
            let node = NodeId(i as u32);
            for e in g.out_edges(node) {
                if e.kind.is_comm() {
                    // Crossing edges only: copy A sends to copy B and vice
                    // versa (the two simulated processes).
                    push(
                        Edge {
                            from: e.from,
                            to: shift(e.to),
                            kind: e.kind,
                        },
                        &mut in_edges,
                        &mut out_edges,
                    );
                    push(
                        Edge {
                            from: shift(e.from),
                            to: e.to,
                            kind: e.kind,
                        },
                        &mut in_edges,
                        &mut out_edges,
                    );
                } else {
                    push(*e, &mut in_edges, &mut out_edges);
                    push(
                        Edge {
                            from: shift(e.from),
                            to: shift(e.to),
                            kind: e.kind,
                        },
                        &mut in_edges,
                        &mut out_edges,
                    );
                }
            }
        }
        let entries = g.entries().iter().flat_map(|&e| [e, shift(e)]).collect();
        let exits = g.exits().iter().flat_map(|&e| [e, shift(e)]).collect();
        TwoCopyGraph {
            base_nodes: n,
            in_edges,
            out_edges,
            entries,
            exits,
        }
    }

    /// Number of base-graph nodes (half the total).
    pub fn base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// Map a doubled node back to its base node.
    pub fn to_base(&self, node: NodeId) -> NodeId {
        if (node.index()) < self.base_nodes {
            node
        } else {
            NodeId(node.0 - self.base_nodes as u32)
        }
    }
}

impl FlowGraph for TwoCopyGraph {
    fn num_nodes(&self) -> usize {
        2 * self.base_nodes
    }

    fn in_edges(&self, n: NodeId) -> &[Edge] {
        &self.in_edges[n.index()]
    }

    fn out_edges(&self, n: NodeId) -> &[Edge] {
        &self.out_edges[n.index()]
    }

    fn entries(&self) -> &[NodeId] {
        &self.entries
    }

    fn exits(&self) -> &[NodeId] {
        &self.exits
    }
}

/// Adapt a base-graph problem to the doubled node space: node ids are
/// rebased before reaching the inner problem, so its payload lookups work
/// unchanged.
pub struct Rebased<'a, P> {
    inner: &'a P,
    base_nodes: u32,
}

/// Wrap `inner` for solving over `graph`.
pub fn rebase<'a, P: Dataflow>(inner: &'a P, graph: &TwoCopyGraph) -> Rebased<'a, P> {
    Rebased {
        inner,
        base_nodes: graph.base_nodes as u32,
    }
}

impl<P: Dataflow> Rebased<'_, P> {
    fn base(&self, n: NodeId) -> NodeId {
        if n.0 < self.base_nodes {
            n
        } else {
            NodeId(n.0 - self.base_nodes)
        }
    }
}

impl<P: Dataflow> Dataflow for Rebased<'_, P> {
    type Fact = P::Fact;
    type CommFact = P::CommFact;

    fn direction(&self) -> Direction {
        self.inner.direction()
    }

    fn top(&self) -> Self::Fact {
        self.inner.top()
    }

    fn boundary(&self) -> Self::Fact {
        self.inner.boundary()
    }

    fn meet_into(&self, dst: &mut Self::Fact, src: &Self::Fact) -> bool {
        self.inner.meet_into(dst, src)
    }

    fn transfer(&self, node: NodeId, input: &Self::Fact, comm: &[Self::CommFact]) -> Self::Fact {
        self.inner.transfer(self.base(node), input, comm)
    }

    fn comm_transfer(&self, node: NodeId, input: &Self::Fact) -> Self::CommFact {
        self.inner.comm_transfer(self.base(node), input)
    }

    fn translate(&self, edge: &Edge, fact: &Self::Fact) -> Option<Self::Fact> {
        let rebased = Edge {
            from: self.base(edge.from),
            to: self.base(edge.to),
            kind: edge.kind,
        };
        self.inner.translate(&rebased, fact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{self, ActivityConfig, Mode};
    use crate::mpi_match::{build_mpi_icfg, Matching};
    use mpi_dfa_graph::icfg::ProgramIr;

    const FIGURE1: &str = "program fig1\n\
        global x: real; global z: real; global b: real; global y: real;\n\
        global f: real;\n\
        sub main() {\n\
          x = 0.0; z = 2.0; b = 7.0;\n\
          if (rank() == 0) {\n\
            x = x + 1.0; b = x * 3.0; send(x, 1, 9);\n\
          } else {\n\
            recv(y, 0, 9); z = b * y;\n\
          }\n\
          reduce(SUM, z, f, 0);\n\
        }";

    fn two_copy_active(src: &str, context: &str, ind: &[&str], dep: &[&str]) -> (u64, u64) {
        use mpi_dfa_core::solver::Solver;
        use mpi_dfa_core::varset::VarSet;

        let ir = ProgramIr::from_source(src).unwrap();
        let mpi = build_mpi_icfg(ir.clone(), context, 0, Matching::ReachingConstants).unwrap();
        let config = ActivityConfig::new(ind.to_vec(), dep.to_vec());

        // One-copy framework result.
        let one = activity::analyze_mpi(&mpi, &config).unwrap();

        // Two-copy result computed through the public per-phase problems:
        // reuse the framework's own vary/useful by running analyze over the
        // doubled graph via the Rebased adapter. The activity module does
        // not expose its problem structs, so we use the equivalent public
        // entry point below.
        let doubled = TwoCopyGraph::build(&mpi);
        let (vary, useful) =
            activity::vary_useful_problems(mpi.icfg(), Mode::MpiIcfg, &config).expect("problems");
        let v = Solver::new(&rebase(&vary, &doubled), &doubled).run();
        let u = Solver::new(&rebase(&useful, &doubled), &doubled).run();
        let mut active = VarSet::empty(ir.locs.len());
        for n in 0..doubled.num_nodes() {
            let node = NodeId(n as u32);
            active.union_into(&v.before(node).intersection(u.before(node)));
            active.union_into(&v.after(node).intersection(u.after(node)));
        }
        let bytes = activity::active_bytes(&ir.locs, &active);
        (one.active_bytes, bytes)
    }

    #[test]
    fn two_copy_matches_one_copy_on_figure1() {
        // The paper's Section 2 claim: the one-copy MPI-ICFG framework has
        // precision equivalent to the two-copy construction.
        let (one, two) = two_copy_active(FIGURE1, "main", &["x"], &["f"]);
        assert_eq!(one, two);
        assert_eq!(one, 32);
    }

    #[test]
    fn doubled_graph_structure() {
        let ir = ProgramIr::from_source(FIGURE1).unwrap();
        let mpi = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
        let n = mpi.num_nodes();
        let comm = mpi.comm_edges.len();
        let doubled = TwoCopyGraph::build(&mpi);
        assert_eq!(doubled.num_nodes(), 2 * n);
        assert_eq!(doubled.entries().len(), 2);
        assert_eq!(doubled.exits().len(), 2);
        // Every comm edge crosses: count comm edges in the doubled graph.
        let doubled_comm: usize = (0..doubled.num_nodes())
            .map(|i| {
                doubled
                    .out_edges(NodeId(i as u32))
                    .iter()
                    .filter(|e| e.kind.is_comm())
                    .count()
            })
            .sum();
        assert_eq!(doubled_comm, 2 * comm);
        for i in 0..doubled.num_nodes() {
            for e in doubled.out_edges(NodeId(i as u32)) {
                let cross = (e.from.index() < n) != (e.to.index() < n);
                assert_eq!(e.kind.is_comm(), cross, "comm edges cross, others stay");
            }
        }
    }

    #[test]
    fn to_base_roundtrip() {
        let ir = ProgramIr::from_source(FIGURE1).unwrap();
        let mpi = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
        let doubled = TwoCopyGraph::build(&mpi);
        let n = doubled.base_nodes();
        assert_eq!(doubled.to_base(NodeId(3)), NodeId(3));
        assert_eq!(doubled.to_base(NodeId(3 + n as u32)), NodeId(3));
    }
}
