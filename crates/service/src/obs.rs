//! Cross-process observability: the distributed-trace span store, the
//! worker → supervisor telemetry stream, the cluster metrics merge, the
//! JSONL access log, and offline trace reconstruction.
//!
//! ## Architecture
//!
//! Each worker process runs the ordinary in-process `core::telemetry`
//! sink. A flusher thread periodically [`telemetry::drain`]s it, pairs
//! span begin/end events with a [`SpanPairer`], and prints one
//! [`TELE_PREFIX`]-tagged JSONL line to **stdout** — the pipe the
//! supervisor already holds for the startup banner. The supervisor's
//! drain thread forwards those lines into the shared [`TelemetryHub`],
//! stamping each with the worker's shard and incarnation epoch. This
//! reuses an existing crash-tolerant channel: spans flushed before a
//! SIGKILL are already in the hub, and a dead worker's still-open spans
//! were streamed as `open` records, so its partial trace renders (tagged
//! with the epoch that died). The router's own spans take the same path
//! in-process (pid 0).
//!
//! Timestamps are absolute same-host UNIX microseconds
//! (`event.ts_us + telemetry::unix_base_us()`), which is what lets spans
//! from several processes interleave correctly on one timeline. Span ids
//! are only unique per process, so the span store keys by
//! `(pid, epoch, id)` and cross-process parenting is the `remote_parent`
//! arg (the router's span id) rather than the Chrome `parent` field.
//!
//! All cluster-level merges (`absorb`) are commutative and associative —
//! counter sums, `_peak` maxima, histogram bucket adds — so the rendered
//! cluster metrics are byte-identical regardless of shard-report arrival
//! order (asserted by tests).

use crate::json::{self, Json};
use crate::slo::{self, SloSnapshot};
use mpi_dfa_core::telemetry::{self, ArgValue, Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Prefix a worker puts on telemetry-stream lines so the supervisor can
/// tell them apart from anything else the child writes to stdout.
pub const TELE_PREFIX: &str = "@tele ";

/// Upper bound on spans held in memory by the hub; beyond it new spans
/// are counted as dropped instead of stored (the spool file still gets
/// them). Keeps a long-running router bounded.
const MAX_SPANS: usize = 100_000;

/// Maximum in-memory access-log lines retained (the file gets them all).
const MAX_ACCESS: usize = 10_000;

/// Mint a fresh 128-bit trace id: FNV-128 of the wall clock, a
/// process-wide sequence number, and the OS pid — distinct across the
/// cluster's processes, restarts, and concurrent requests.
pub fn mint_trace_id() -> u128 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut h = mpi_dfa_core::Hasher128::new();
    h.write_u64(now)
        .write_u64(SEQ.fetch_add(1, Ordering::Relaxed))
        .write_u64(std::process::id() as u64);
    h.finish()
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::I64(n) => n.to_string(),
        ArgValue::F64(n) => {
            if n.is_finite() {
                n.to_string()
            } else {
                "null".to_string()
            }
        }
        ArgValue::Bool(b) => b.to_string(),
        ArgValue::Str(s) => format!("\"{}\"", json::escape(s)),
    }
}

// ---------------------------------------------------------------------------
// Completed spans
// ---------------------------------------------------------------------------

/// One span (or instant) on the cluster-wide timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSpan {
    /// Merged-trace process id: 0 = the router / single-box process,
    /// `shard + 1` for workers.
    pub pid: u64,
    pub tid: u64,
    /// Worker incarnation epoch (0 for the router). Distinguishes span
    /// ids across restarts of the same shard.
    pub epoch: u64,
    /// Span id in its own process (0 for instants).
    pub id: u64,
    /// Local parent span id, if any.
    pub parent: Option<u64>,
    pub trace: Option<u128>,
    pub name: String,
    pub cat: String,
    /// Absolute UNIX microseconds (same-host shared timebase).
    pub ts_us: u64,
    /// `None` while the span is still open (crash-partial spans render
    /// with this unset).
    pub dur_us: Option<u64>,
    /// Args as (key, raw-JSON-value) pairs, begin args then end args.
    pub args: Vec<(String, String)>,
}

impl CompletedSpan {
    /// The cross-process parent span id (`remote_parent` arg), if any.
    pub fn remote_parent(&self) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| k == "remote_parent")
            .and_then(|(_, v)| v.parse().ok())
    }

    /// Fixed-key-order JSONL record, used both on the stream and in the
    /// spool file.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"pid\":{},\"tid\":{},\"epoch\":{},\"id\":{},\"parent\":{},\"trace\":{},\
             \"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{",
            self.pid,
            self.tid,
            self.epoch,
            self.id,
            self.parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into()),
            self.trace
                .map(|t| format!("\"{t:032x}\""))
                .unwrap_or_else(|| "null".into()),
            json::escape(&self.name),
            json::escape(&self.cat),
            self.ts_us,
            self.dur_us
                .map(|d| d.to_string())
                .unwrap_or_else(|| "null".into()),
        );
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json::escape(k));
        }
        out.push_str("}}");
        out
    }

    /// Parse one [`CompletedSpan::render`] record. `None` on shape
    /// violations (corrupt stream lines are dropped, never panic).
    pub fn parse(v: &Json) -> Option<CompletedSpan> {
        let trace = match v.get("trace")? {
            Json::Null => None,
            t => Some(telemetry::parse_trace_id(t.as_str()?)?),
        };
        let parent = match v.get("parent")? {
            Json::Null => None,
            p => Some(p.as_u64()?),
        };
        let dur_us = match v.get("dur")? {
            Json::Null => None,
            d => Some(d.as_u64()?),
        };
        let Json::Obj(arg_fields) = v.get("args")? else {
            return None;
        };
        let args = arg_fields
            .iter()
            .map(|(k, av)| (k.clone(), av.render()))
            .collect();
        Some(CompletedSpan {
            pid: v.get("pid")?.as_u64()?,
            tid: v.get("tid")?.as_u64()?,
            epoch: v.get("epoch")?.as_u64()?,
            id: v.get("id")?.as_u64()?,
            parent,
            trace,
            name: v.get("name")?.as_str()?.to_string(),
            cat: v.get("cat")?.as_str()?.to_string(),
            ts_us: v.get("ts")?.as_u64()?,
            dur_us,
            args,
        })
    }
}

// ---------------------------------------------------------------------------
// Span pairing (worker side)
// ---------------------------------------------------------------------------

/// Pairs `SpanBegin`/`SpanEnd` events across successive
/// [`telemetry::drain`] batches into [`CompletedSpan`]s, carrying
/// still-open spans between flushes so a span whose end arrives in a
/// later batch still pairs.
#[derive(Debug, Default)]
pub struct SpanPairer {
    open: BTreeMap<u64, CompletedSpan>,
}

impl SpanPairer {
    pub fn new() -> SpanPairer {
        SpanPairer::default()
    }

    /// Feed one drained batch. `base_us` is [`telemetry::unix_base_us`]
    /// (events carry install-relative timestamps). Returns the spans that
    /// completed in this batch; instants come back as zero-duration spans.
    pub fn feed(&mut self, events: &[Event], base_us: u64) -> Vec<CompletedSpan> {
        let mut done = Vec::new();
        for e in events {
            match e.kind {
                EventKind::SpanBegin { id, parent } => {
                    self.open.insert(
                        id,
                        CompletedSpan {
                            pid: 0,
                            tid: e.tid,
                            epoch: 0,
                            id,
                            parent,
                            trace: e.trace,
                            name: e.name.clone(),
                            cat: e.cat.to_string(),
                            ts_us: base_us + e.ts_us,
                            dur_us: None,
                            args: e
                                .args
                                .iter()
                                .map(|(k, v)| (k.to_string(), arg_json(v)))
                                .collect(),
                        },
                    );
                }
                EventKind::SpanEnd { id } => {
                    // An end without a begin (sink installed mid-span) is
                    // dropped — there is nothing to anchor it to.
                    if let Some(mut span) = self.open.remove(&id) {
                        span.dur_us = Some((base_us + e.ts_us).saturating_sub(span.ts_us));
                        span.args
                            .extend(e.args.iter().map(|(k, v)| (k.to_string(), arg_json(v))));
                        done.push(span);
                    }
                }
                EventKind::Instant => {
                    done.push(CompletedSpan {
                        pid: 0,
                        tid: e.tid,
                        epoch: 0,
                        id: 0,
                        parent: None,
                        trace: e.trace,
                        name: e.name.clone(),
                        cat: e.cat.to_string(),
                        ts_us: base_us + e.ts_us,
                        dur_us: Some(0),
                        args: e
                            .args
                            .iter()
                            .map(|(k, v)| (k.to_string(), arg_json(v)))
                            .collect(),
                    });
                }
                EventKind::Counter { .. } => {}
            }
        }
        done
    }

    /// The spans currently open (crash-partial candidates): streamed each
    /// flush with `dur: null` so a worker killed mid-request still shows
    /// its in-flight span in the merged trace.
    pub fn open_spans(&self) -> Vec<CompletedSpan> {
        self.open.values().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// The worker → supervisor stream
// ---------------------------------------------------------------------------

/// Render one telemetry-stream line (without [`TELE_PREFIX`]):
/// `{"spans":[...],"open":[...],"metrics":{...},"slo":[...]}`.
/// Metrics and SLO snapshots are cumulative; spans are incremental.
pub fn render_tele_update(
    spans: &[CompletedSpan],
    open: &[CompletedSpan],
    metrics: &BTreeMap<String, f64>,
    slo_snap: &SloSnapshot,
) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.render());
    }
    out.push_str("],\"open\":[");
    for (i, s) in open.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.render());
    }
    out.push_str("],\"metrics\":{");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{}",
            json::escape(k),
            if v.is_finite() { *v } else { 0.0 }
        );
    }
    out.push_str("},\"slo\":");
    out.push_str(&slo::to_json(slo_snap));
    out.push('}');
    out
}

/// One parsed telemetry-stream update.
pub struct TeleUpdate {
    pub spans: Vec<CompletedSpan>,
    pub open: Vec<CompletedSpan>,
    pub metrics: BTreeMap<String, f64>,
    pub slo: SloSnapshot,
}

/// Parse the payload of a [`TELE_PREFIX`] line. `None` drops the line.
pub fn parse_tele_update(payload: &str) -> Option<TeleUpdate> {
    let v = json::parse(payload).ok()?;
    let spans = v
        .get("spans")?
        .as_array()?
        .iter()
        .map(CompletedSpan::parse)
        .collect::<Option<Vec<_>>>()?;
    let open = v
        .get("open")?
        .as_array()?
        .iter()
        .map(CompletedSpan::parse)
        .collect::<Option<Vec<_>>>()?;
    let Json::Obj(metric_fields) = v.get("metrics")? else {
        return None;
    };
    let mut metrics = BTreeMap::new();
    for (k, mv) in metric_fields {
        if let Json::Num(n) = mv {
            metrics.insert(k.clone(), *n);
        } else {
            return None;
        }
    }
    let slo = slo::from_json(v.get("slo")?)?;
    Some(TeleUpdate {
        spans,
        open,
        metrics,
        slo,
    })
}

// ---------------------------------------------------------------------------
// Access log
// ---------------------------------------------------------------------------

/// One access-log line: the per-request summary the router (or single-box
/// server) appends exactly once per client analysis request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    pub trace: u128,
    pub verb: String,
    /// Shard that answered; `None` when no shard did (terminal error) or
    /// the process is unsharded.
    pub shard: Option<u64>,
    /// Incarnation epoch of the answering shard (0 when unknown).
    pub epoch: u64,
    /// Forwarding attempts consumed (1 = first try answered).
    pub attempts: u64,
    /// `hit` | `miss` | `bypass` | `error`.
    pub cache: String,
    /// Governor tier from the response provenance, `-` when absent.
    pub tier: String,
    pub latency_us: u64,
}

impl AccessRecord {
    /// Fixed key order: trace, verb, shard, epoch, attempts, cache, tier,
    /// latency_us. Renders into one pre-sized buffer with hand-rolled
    /// integer formatting (no `core::fmt`) — this runs once per answered
    /// request, and the bench bounds it (with the histogram record) at
    /// ≤ 10% of a warm cache hit.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"trace\":\"");
        push_hex32(&mut out, self.trace);
        out.push_str("\",\"verb\":\"");
        json::escape_into(&self.verb, &mut out);
        out.push_str("\",\"shard\":");
        match self.shard {
            Some(s) => push_u64(&mut out, s),
            None => out.push_str("null"),
        }
        out.push_str(",\"epoch\":");
        push_u64(&mut out, self.epoch);
        out.push_str(",\"attempts\":");
        push_u64(&mut out, self.attempts);
        out.push_str(",\"cache\":\"");
        json::escape_into(&self.cache, &mut out);
        out.push_str("\",\"tier\":\"");
        json::escape_into(&self.tier, &mut out);
        out.push_str("\",\"latency_us\":");
        push_u64(&mut out, self.latency_us);
        out.push('}');
        out
    }

    pub fn parse(v: &Json) -> Option<AccessRecord> {
        let shard = match v.get("shard")? {
            Json::Null => None,
            s => Some(s.as_u64()?),
        };
        Some(AccessRecord {
            trace: telemetry::parse_trace_id(v.get("trace")?.as_str()?)?,
            verb: v.get("verb")?.as_str()?.to_string(),
            shard,
            epoch: v.get("epoch")?.as_u64()?,
            attempts: v.get("attempts")?.as_u64()?,
            cache: v.get("cache")?.as_str()?.to_string(),
            tier: v.get("tier")?.as_str()?.to_string(),
            latency_us: v.get("latency_us")?.as_u64()?,
        })
    }
}

/// Append the zero-padded 32-digit lowercase hex of a 128-bit trace id.
fn push_hex32(out: &mut String, v: u128) {
    let mut buf = [0u8; 32];
    let mut v = v;
    for slot in buf.iter_mut().rev() {
        let d = (v & 0xf) as u8;
        *slot = if d < 10 { b'0' + d } else { b'a' + d - 10 };
        v >>= 4;
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

/// Append a decimal u64 without going through `core::fmt`.
fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
}

// ---------------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------------

#[derive(Default)]
struct HubState {
    /// Keyed by (pid, epoch, id): an `open` record is replaced in place
    /// when its completed version arrives.
    spans: BTreeMap<(u64, u64, u64), CompletedSpan>,
    dropped_spans: u64,
    /// Latest cumulative metrics per worker incarnation.
    worker_metrics: BTreeMap<(u64, u64), BTreeMap<String, f64>>,
    /// Latest cumulative SLO snapshot per worker incarnation.
    worker_slo: BTreeMap<(u64, u64), SloSnapshot>,
    /// Recent access lines (the file, when configured, gets them all).
    access: Vec<String>,
    access_total: u64,
}

/// The cluster-wide observability aggregation point, shared by the
/// supervisor drain threads (worker updates), the router (its own spans,
/// access records, the `metrics` verb), and shutdown exporters.
pub struct TelemetryHub {
    state: Mutex<HubState>,
    spool_file: Mutex<Option<File>>,
    access_file: Mutex<Option<File>>,
    log_dir: Option<PathBuf>,
}

impl TelemetryHub {
    /// `log_dir`, when given, receives `spans.jsonl` (the span spool the
    /// `mpidfa trace` subcommand reads) and `access.jsonl`.
    pub fn new(log_dir: Option<&Path>) -> Result<Arc<TelemetryHub>, String> {
        let mut spool_file = None;
        let mut access_file = None;
        if let Some(dir) = log_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("--log-dir {}: {e}", dir.display()))?;
            let open = |name: &str| {
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(name))
                    .map_err(|e| format!("--log-dir {}/{name}: {e}", dir.display()))
            };
            spool_file = Some(open("spans.jsonl")?);
            access_file = Some(open("access.jsonl")?);
        }
        Ok(Arc::new(TelemetryHub {
            state: Mutex::new(HubState::default()),
            spool_file: Mutex::new(spool_file),
            access_file: Mutex::new(access_file),
            log_dir: log_dir.map(Path::to_path_buf),
        }))
    }

    pub fn log_dir(&self) -> Option<&Path> {
        self.log_dir.as_deref()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Store spans (completed or open). Completed spans are appended to
    /// the spool file; open ones live only in memory until their
    /// completed version replaces them (or shutdown renders them
    /// unfinished).
    pub fn add_spans(&self, spans: Vec<CompletedSpan>) {
        let mut spool = String::new();
        {
            let mut st = self.lock();
            for s in spans {
                if s.dur_us.is_some() {
                    spool.push_str(&s.render());
                    spool.push('\n');
                }
                let key = (s.pid, s.epoch, s.id);
                if st.spans.len() >= MAX_SPANS && !st.spans.contains_key(&key) {
                    st.dropped_spans += 1;
                    continue;
                }
                st.spans.insert(key, s);
            }
        }
        if !spool.is_empty() {
            let mut f = self.spool_file.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(f) = f.as_mut() {
                let _ = f.write_all(spool.as_bytes());
            }
        }
    }

    /// Ingest one worker stream update, stamping every span with the
    /// worker's merged-trace pid (`shard + 1`) and incarnation epoch.
    pub fn note_worker_update(&self, shard: u64, epoch: u64, update: TeleUpdate) {
        let stamp = |mut s: CompletedSpan| {
            s.pid = shard + 1;
            s.epoch = epoch;
            s
        };
        // Instants all carry id 0, which would collide in the span store;
        // give each a synthetic unique id in the high range.
        let mut spans: Vec<CompletedSpan> =
            Vec::with_capacity(update.spans.len() + update.open.len());
        for s in update.spans.into_iter().chain(update.open) {
            let mut s = stamp(s);
            if s.id == 0 {
                s.id = (1 << 48) | (s.ts_us & 0xffff_ffff_ffff);
            }
            spans.push(s);
        }
        self.add_spans(spans);
        let mut st = self.lock();
        st.worker_metrics.insert((shard, epoch), update.metrics);
        st.worker_slo.insert((shard, epoch), update.slo);
    }

    /// Append one access record (memory ring + file).
    pub fn record_access(&self, rec: &AccessRecord) {
        let line = rec.render();
        {
            let mut st = self.lock();
            st.access_total += 1;
            if st.access.len() < MAX_ACCESS {
                st.access.push(line.clone());
            }
        }
        let mut f = self.access_file.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = f.as_mut() {
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
    }

    /// Recent access-log lines (test/introspection surface).
    pub fn access_lines(&self) -> Vec<String> {
        self.lock().access.clone()
    }

    /// All stored spans, timeline-sorted.
    pub fn spans(&self) -> Vec<CompletedSpan> {
        let st = self.lock();
        let mut spans: Vec<CompletedSpan> = st.spans.values().cloned().collect();
        spans.sort_by_key(|s| (s.ts_us, s.pid, s.tid, s.id));
        spans
    }

    /// The order-independently merged cluster Prometheus text: telemetry
    /// counters summed across every worker incarnation (`_peak` series
    /// take the max instead), then the process-local metrics of the
    /// caller, then the merged SLO histogram series. `local` is the
    /// router's own metric map (its telemetry sink plus `router_*_total`
    /// counters); `local_slo` its own latency view.
    pub fn cluster_metrics(
        &self,
        local: &BTreeMap<String, f64>,
        local_slo: &SloSnapshot,
    ) -> String {
        let st = self.lock();
        let mut merged: BTreeMap<String, f64> = BTreeMap::new();
        let mut fold = |map: &BTreeMap<String, f64>| {
            for (name, v) in map {
                let slot = merged.entry(name.clone()).or_insert(0.0);
                if name.ends_with("_peak") || name.contains("_peak{") {
                    if *v > *slot {
                        *slot = *v;
                    }
                } else {
                    *slot += *v;
                }
            }
        };
        for map in st.worker_metrics.values() {
            fold(map);
        }
        fold(local);
        merged.insert("obs_spans_dropped_total".into(), st.dropped_spans as f64);
        merged.insert("access_log_lines_total".into(), st.access_total as f64);

        // The two latency views stay separate metric families so no
        // request is double-counted inside one series: workers measure
        // their own handling, the router measures the client round-trip.
        let mut merged_slo = SloSnapshot::new();
        for snap in st.worker_slo.values() {
            slo::absorb(&mut merged_slo, snap);
        }

        let mut out = telemetry::export_metrics_text(&merged);
        slo::render_prometheus(&merged_slo, &mut out);
        slo::render_prometheus_named(slo::E2E_METRIC, local_slo, &mut out);
        out
    }

    /// Render every stored span as one merged Chrome trace. Spans are
    /// complete events (`ph: "X"`); still-open spans render with
    /// `dur: 0` and an `unfinished` arg. Timestamps are rebased to the
    /// earliest span. Each process appears under its merged-trace pid
    /// (0 = router, shard+1 = workers) so one request's spans from
    /// several processes nest on the shared timeline; `trace`, `span`,
    /// `parent_span`, `remote_parent`, and `epoch` args carry the
    /// cross-process structure.
    pub fn merged_chrome_trace(&self) -> String {
        let spans = self.spans();
        let t0 = spans.iter().map(|s| s.ts_us).min().unwrap_or(0);
        let mut out = String::with_capacity(spans.len() * 128 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
                json::escape(&s.name),
                json::escape(&s.cat),
                s.pid,
                s.tid,
                s.ts_us - t0,
                s.dur_us.unwrap_or(0),
            );
            let mut first = true;
            let mut arg = |out: &mut String, k: &str, v: String| {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{k}\":{v}");
            };
            if let Some(t) = s.trace {
                arg(&mut out, "trace", format!("\"{t:032x}\""));
            }
            arg(&mut out, "span", s.id.to_string());
            if let Some(p) = s.parent {
                arg(&mut out, "parent_span", p.to_string());
            }
            arg(&mut out, "epoch", s.epoch.to_string());
            if s.dur_us.is_none() {
                arg(&mut out, "unfinished", "true".to_string());
            }
            for (k, v) in &s.args {
                if k == "remote_parent"
                    || !matches!(k.as_str(), "trace" | "span" | "parent_span" | "epoch")
                {
                    arg(&mut out, k, v.clone());
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Offline trace reconstruction (`mpidfa trace <trace-id>`)
// ---------------------------------------------------------------------------

fn process_label(pid: u64, epoch: u64) -> String {
    if pid == 0 {
        "router".to_string()
    } else {
        format!("shard {}/e{}", pid - 1, epoch)
    }
}

/// Reconstruct a request's cross-shard timeline from the span spool and
/// access log (`spans.jsonl` / `access.jsonl` contents). Returns a text
/// report; `Err` when the trace id appears nowhere.
pub fn reconstruct_trace(spool: &str, access: &str, trace_id: u128) -> Result<String, String> {
    let mut spans: Vec<CompletedSpan> = Vec::new();
    for line in spool.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Ok(v) = json::parse(line) {
            if let Some(s) = CompletedSpan::parse(&v) {
                if s.trace == Some(trace_id) {
                    spans.push(s);
                }
            }
        }
    }
    let mut access_recs: Vec<AccessRecord> = Vec::new();
    for line in access.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Ok(v) = json::parse(line) {
            if let Some(r) = AccessRecord::parse(&v) {
                if r.trace == trace_id {
                    access_recs.push(r);
                }
            }
        }
    }
    if spans.is_empty() && access_recs.is_empty() {
        return Err(format!("trace {:032x} not found in the spool", trace_id));
    }
    spans.sort_by_key(|s| (s.ts_us, s.pid, s.tid, s.id));
    let t0 = spans.iter().map(|s| s.ts_us).min().unwrap_or(0);

    // Nesting depth: local parent chain within a process, plus one level
    // under the remote parent for the outermost span of a worker.
    let by_key: BTreeMap<(u64, u64), usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.pid, s.id), i))
        .collect();
    fn depth_of(
        spans: &[CompletedSpan],
        by_key: &BTreeMap<(u64, u64), usize>,
        idx: usize,
        fuel: usize,
    ) -> usize {
        if fuel == 0 {
            return 0;
        }
        let s = &spans[idx];
        if let Some(p) = s.parent {
            if let Some(&pi) = by_key.get(&(s.pid, p)) {
                return depth_of(spans, by_key, pi, fuel - 1) + 1;
            }
        }
        if let Some(rp) = s.remote_parent() {
            // The remote parent lives in another process; find it.
            for (&(pid, id), &pi) in by_key {
                if id == rp && pid != s.pid {
                    return depth_of(spans, by_key, pi, fuel - 1) + 1;
                }
            }
        }
        0
    }

    let mut out = String::new();
    let _ = writeln!(out, "trace {trace_id:032x}");
    for r in &access_recs {
        let _ = writeln!(
            out,
            "access: verb={} shard={} epoch={} attempts={} cache={} tier={} latency_us={}",
            r.verb,
            r.shard.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            r.epoch,
            r.attempts,
            r.cache,
            r.tier,
            r.latency_us
        );
    }
    for (i, s) in spans.iter().enumerate() {
        let depth = depth_of(&spans, &by_key, i, 32);
        let dur = match s.dur_us {
            Some(d) => format!("{:.3} ms", d as f64 / 1000.0),
            None => "unfinished".to_string(),
        };
        let _ = writeln!(
            out,
            "[{:>10.3} ms] {:<12} {}{} ({})",
            (s.ts_us - t0) as f64 / 1000.0,
            process_label(s.pid, s.epoch),
            "  ".repeat(depth),
            s.name,
            dur
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_dfa_core::telemetry::{TraceContext, TraceLevel, TEST_SINK_GATE};

    fn span_fixture(pid: u64, id: u64, ts: u64, trace: u128) -> CompletedSpan {
        CompletedSpan {
            pid,
            tid: 1,
            epoch: 1,
            id,
            parent: None,
            trace: Some(trace),
            name: format!("span-{id}"),
            cat: "service".into(),
            ts_us: ts,
            dur_us: Some(100),
            args: vec![("kind".into(), "\"analyze\"".into())],
        }
    }

    #[test]
    fn completed_span_record_round_trips() {
        let mut s = span_fixture(2, 7, 1_000_000, 0xfeed);
        s.parent = Some(3);
        s.args.push(("remote_parent".into(), "42".into()));
        let line = s.render();
        let back = CompletedSpan::parse(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.remote_parent(), Some(42));
        // Open span (dur null) round-trips too.
        let mut open = span_fixture(1, 9, 5, 0xfeed);
        open.dur_us = None;
        let back = CompletedSpan::parse(&json::parse(&open.render()).unwrap()).unwrap();
        assert_eq!(back.dur_us, None);
    }

    #[test]
    fn pairer_pairs_across_drain_batches_and_reports_open_spans() {
        let _g = TEST_SINK_GATE.lock().unwrap_or_else(|p| p.into_inner());
        telemetry::install(TraceLevel::Spans);
        let base = telemetry::unix_base_us();
        let ctx = TraceContext {
            trace_id: 0xabc,
            parent_span: 5,
        };
        let mut pairer = SpanPairer::new();
        let long = telemetry::with_trace(Some(ctx), || {
            let long = telemetry::span("service", "long");
            {
                let _quick = telemetry::span("service", "quick");
            }
            long
        });
        // First drain: `quick` completed, `long` still open.
        let done = pairer.feed(&telemetry::drain().events, base);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].name, "quick");
        assert_eq!(done[0].trace, Some(0xabc));
        let open = pairer.open_spans();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].name, "long");
        assert_eq!(open[0].dur_us, None);
        // `long` has no local parent, so it carries the remote parent.
        assert_eq!(open[0].remote_parent(), Some(5));
        drop(long);
        let done = pairer.feed(&telemetry::drain().events, base);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].name, "long");
        assert!(done[0].dur_us.is_some());
        assert!(pairer.open_spans().is_empty());
        let _ = telemetry::finish();
    }

    #[test]
    fn tele_update_round_trips() {
        let spans = vec![span_fixture(0, 1, 10, 0x1)];
        let mut open = vec![span_fixture(0, 2, 20, 0x1)];
        open[0].dur_us = None;
        let mut metrics = BTreeMap::new();
        metrics.insert("cache_hits_total".to_string(), 3.0);
        let reg = crate::slo::SloRegistry::new();
        reg.record("analyze", "hit", "0", 1234);
        let snap = reg.snapshot();
        let line = render_tele_update(&spans, &open, &metrics, &snap);
        let update = parse_tele_update(&line).unwrap();
        assert_eq!(update.spans, spans);
        assert_eq!(update.open, open);
        assert_eq!(update.metrics, metrics);
        assert_eq!(update.slo, snap);
        // Corrupt payloads are dropped, not panics.
        assert!(parse_tele_update("not json").is_none());
        assert!(parse_tele_update("{\"spans\":0}").is_none());
    }

    #[test]
    fn access_record_round_trips() {
        let rec = AccessRecord {
            trace: 0xdead_beef,
            verb: "analyze".into(),
            shard: Some(2),
            epoch: 3,
            attempts: 2,
            cache: "miss".into(),
            tier: "T0".into(),
            latency_us: 4200,
        };
        let line = rec.render();
        assert!(line.starts_with("{\"trace\":\"00000000000000000000000"));
        let back = AccessRecord::parse(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        let none_shard = AccessRecord {
            shard: None,
            ..rec.clone()
        };
        let back = AccessRecord::parse(&json::parse(&none_shard.render()).unwrap()).unwrap();
        assert_eq!(back.shard, None);
    }

    #[test]
    fn hub_merges_cluster_metrics_order_independently() {
        // Two worker reports and a router view, ingested in both orders:
        // the rendered Prometheus text must be byte-identical.
        let make_update = |hits: f64, peak: f64, lat: u64| {
            let mut metrics = BTreeMap::new();
            metrics.insert("result_cache_hits_total".to_string(), hits);
            metrics.insert("service_inflight_peak".to_string(), peak);
            let reg = crate::slo::SloRegistry::new();
            reg.record("analyze", "hit", "0", lat);
            reg.record("analyze", "miss", "1", lat * 2);
            TeleUpdate {
                spans: vec![],
                open: vec![],
                metrics,
                slo: reg.snapshot(),
            }
        };
        let mut local = BTreeMap::new();
        local.insert("router_requests_total".to_string(), 5.0);
        let local_slo = SloSnapshot::new();
        let render = |order_rev: bool| {
            let hub = TelemetryHub::new(None).unwrap();
            let updates = [
                (0u64, make_update(10.0, 3.0, 100)),
                (1u64, make_update(7.0, 9.0, 900)),
            ];
            let mut ix: Vec<usize> = vec![0, 1];
            if order_rev {
                ix.reverse();
            }
            for i in ix {
                let (shard, u) = &updates[i];
                // Rebuild the update (TeleUpdate is not Clone by design).
                let u2 = TeleUpdate {
                    spans: u.spans.clone(),
                    open: u.open.clone(),
                    metrics: u.metrics.clone(),
                    slo: u.slo.clone(),
                };
                hub.note_worker_update(*shard, 1, u2);
            }
            hub.cluster_metrics(&local, &local_slo)
        };
        let a = render(false);
        let b = render(true);
        assert_eq!(a, b, "arrival order changed cluster metrics");
        assert!(a.contains("result_cache_hits_total 17"), "{a}");
        assert!(a.contains("service_inflight_peak 9"), "{a}");
        assert!(a.contains("router_requests_total 5"), "{a}");
        assert!(a.contains("mpidfa_request_latency_us{verb=\"analyze\",cache=\"hit\",shard=\"0\",quantile=\"0.5\"}"), "{a}");
        assert!(a.contains("cache=\"all\",shard=\"all\""), "{a}");
    }

    #[test]
    fn merged_trace_replaces_open_spans_and_keeps_epochs() {
        let hub = TelemetryHub::new(None).unwrap();
        // Worker 0 epoch 1 streams an open span, then dies; worker 0
        // epoch 2 streams a completed span with the same local id.
        let mut open = span_fixture(0, 11, 1_000, 0xfeed);
        open.dur_us = None;
        hub.note_worker_update(
            0,
            1,
            TeleUpdate {
                spans: vec![],
                open: vec![open],
                metrics: BTreeMap::new(),
                slo: SloSnapshot::new(),
            },
        );
        hub.note_worker_update(
            0,
            2,
            TeleUpdate {
                spans: vec![span_fixture(0, 11, 2_000, 0xfeed)],
                open: vec![],
                metrics: BTreeMap::new(),
                slo: SloSnapshot::new(),
            },
        );
        let spans = hub.spans();
        assert_eq!(spans.len(), 2, "epochs keep distinct span identities");
        let json = hub.merged_chrome_trace();
        assert!(json.contains("\"unfinished\":true"), "{json}");
        assert!(json.contains("\"epoch\":1"), "{json}");
        assert!(json.contains("\"epoch\":2"), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains(&format!("\"trace\":\"{:032x}\"", 0xfeedu128)));
    }

    #[test]
    fn reconstruct_trace_renders_cross_process_timeline() {
        // Router route span (pid 0, id 5) parents a worker request span
        // (pid 2, remote_parent 5) which parents a local child.
        let router = CompletedSpan {
            pid: 0,
            tid: 1,
            epoch: 0,
            id: 5,
            parent: None,
            trace: Some(0xcafe),
            name: "route".into(),
            cat: "router".into(),
            ts_us: 1_000,
            dur_us: Some(5_000),
            args: vec![],
        };
        let mut worker = span_fixture(2, 9, 2_000, 0xcafe);
        worker.name = "request".into();
        worker.args.push(("remote_parent".into(), "5".into()));
        let mut child = span_fixture(2, 10, 2_500, 0xcafe);
        child.name = "fixpoint".into();
        child.parent = Some(9);
        let other_trace = span_fixture(1, 3, 1_500, 0xbeef);
        let spool: String = [&router, &worker, &child, &other_trace]
            .iter()
            .map(|s| format!("{}\n", s.render()))
            .collect();
        let access = AccessRecord {
            trace: 0xcafe,
            verb: "analyze".into(),
            shard: Some(1),
            epoch: 1,
            attempts: 2,
            cache: "miss".into(),
            tier: "T0".into(),
            latency_us: 5_100,
        }
        .render();
        let report = reconstruct_trace(&spool, &access, 0xcafe).unwrap();
        assert!(report.contains("trace 0000000000000000000000000000cafe"));
        assert!(report.contains("access: verb=analyze shard=1"), "{report}");
        assert!(report.contains("router"), "{report}");
        assert!(report.contains("shard 1/e1"), "{report}");
        // Nesting: worker request indents under route, fixpoint under it.
        assert!(report.contains("  request"), "{report}");
        assert!(report.contains("    fixpoint"), "{report}");
        assert!(!report.contains("span-3"), "other traces filtered out");
        assert!(reconstruct_trace(&spool, &access, 0x1).is_err());
    }
}
