//! The service-layer chaos suite (acceptance gate for the robustness PR).
//!
//! Runs `CHAOS_CASES` seeded scenarios (default 60 locally; CI's
//! `chaos-smoke` job sets 500) against an in-process server. Any hang,
//! panic, unstructured error, or payload divergence fails the test; the
//! failing seed and case index are printed so
//! `CHAOS_SEED=<seed> cargo test -p mpi-dfa-service --test chaos_service`
//! reproduces the exact run, and the failure detail (with the telemetry
//! span tree) is written to `target/chaos-failure.txt` for CI artifact
//! upload.

use mpi_dfa_core::telemetry;
use mpi_dfa_service::{run_chaos, ChaosConfig};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn chaos_run_is_clean() {
    let seed = env_u64("CHAOS_SEED", 0);
    let cases = env_u64("CHAOS_CASES", 60) as usize;
    telemetry::install(telemetry::TraceLevel::Spans);

    let report = run_chaos(ChaosConfig { seed, cases });

    println!(
        "chaos: {} cases, {} requests, {} ok, {} errors, {} sheds, {} corruptions, {} disconnects",
        report.cases,
        report.requests_sent,
        report.ok_responses,
        report.error_responses,
        report.sheds,
        report.corruptions,
        report.disconnects
    );

    if let Some(f) = &report.failure {
        let artifact = format!(
            "chaos failure\nseed: {}\ncase: {}\ndetail:\n{}\n\nspan tree:\n{}\n",
            f.seed, f.case_index, f.detail, f.span_tree
        );
        // Best-effort artifact for CI upload; the panic message below is
        // the canonical record.
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/chaos-failure.txt", &artifact);
        panic!(
            "chaos case {} failed under CHAOS_SEED={} — reproduce with \
             `CHAOS_SEED={} CHAOS_CASES={} cargo test -p mpi-dfa-service --test chaos_service`\n{}",
            f.case_index, f.seed, f.seed, cases, f.detail
        );
    }

    assert!(report.requests_sent > 0, "chaos run sent no requests");
    assert!(report.ok_responses > 0, "chaos run saw no successes");
}
