//! Direct regression tests for the nastiest protocol edges: lines past
//! the 16 MiB cap (the reader must answer `too-large` and resynchronize
//! at the next newline) and clients that vanish mid-line. These edges are
//! also visited probabilistically by the chaos suite; here they get
//! deterministic, always-run coverage.

use mpi_dfa_service::{Engine, EngineConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server() -> (SocketAddr, std::thread::JoinHandle<Result<(), String>>) {
    let engine = Arc::new(Engine::new(EngineConfig::default()).unwrap());
    let server = Server::bind_with(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    line.trim_end().to_string()
}

fn shutdown_server(addr: SocketAddr, handle: std::thread::JoinHandle<Result<(), String>>) {
    let (mut s, mut r) = connect(addr);
    writeln!(s, "{{\"id\":99,\"kind\":\"shutdown\"}}").unwrap();
    let _ = read_line(&mut r);
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_line_answers_too_large_then_resyncs_to_a_real_analysis() {
    let (addr, handle) = start_server();
    let (mut s, mut r) = connect(addr);

    // One byte past the cap, streamed in big chunks to exercise the
    // discard path, then a newline, then a full analyze on the SAME
    // connection — the reader must resynchronize, not desync or drop.
    let cap = mpi_dfa_service::proto::MAX_LINE_BYTES;
    let chunk = vec![b'x'; 1 << 20];
    let mut sent = 0usize;
    while sent <= cap {
        s.write_all(&chunk).unwrap();
        sent += chunk.len();
    }
    s.write_all(b"\n").unwrap();
    let resp = read_line(&mut r);
    assert!(resp.contains("\"code\":\"too-large\""), "{resp}");

    let analyze = r#"{"id":7,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#;
    writeln!(s, "{analyze}").unwrap();
    let resp = read_line(&mut r);
    assert!(
        resp.contains("\"id\":7") && resp.contains("\"ok\":true"),
        "resync failed: {resp}"
    );

    shutdown_server(addr, handle);
}

#[test]
fn mid_line_disconnect_leaves_the_server_serving() {
    let (addr, handle) = start_server();

    // Half a JSON line, then a hard close: the server must discard the
    // fragment without panicking or wedging the acceptor.
    {
        let (mut s, _r) = connect(addr);
        s.write_all(b"{\"id\":1,\"kind\":\"analy").unwrap();
        s.shutdown(Shutdown::Both).unwrap();
    }
    // Same, but close only the write half first (clean EOF mid-line).
    {
        let (mut s, mut r) = connect(addr);
        s.write_all(b"{\"id\":2,\"kind\":").unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        // The fragment has no newline; at EOF the server answers it as a
        // final (malformed) line — a structured parse error, then EOF.
        let resp = read_line(&mut r);
        assert!(resp.contains("\"code\":\"parse\""), "{resp}");
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), 0, "expected EOF: {line}");
    }

    // A fresh connection still gets full service.
    let (mut s, mut r) = connect(addr);
    writeln!(s, "{{\"id\":3,\"kind\":\"ping\"}}").unwrap();
    let resp = read_line(&mut r);
    assert!(resp.contains("\"pong\":true"), "{resp}");

    shutdown_server(addr, handle);
}

#[test]
fn abrupt_disconnect_during_compute_does_not_poison_the_engine() {
    let (addr, handle) = start_server();

    // Send a complete expensive request, then vanish before reading the
    // answer: the worker's write fails, and that must not take the server
    // (or the shared engine) down with it.
    {
        let (mut s, _r) = connect(addr);
        writeln!(
            s,
            "{{\"id\":4,\"kind\":\"table1-row\",\"row\":\"Biostat\"}}"
        )
        .unwrap();
        s.shutdown(Shutdown::Both).unwrap();
    }

    let (mut s, mut r) = connect(addr);
    writeln!(
        s,
        "{{\"id\":5,\"kind\":\"table1-row\",\"row\":\"Biostat\"}}"
    )
    .unwrap();
    let resp = read_line(&mut r);
    assert!(
        resp.contains("\"id\":5") && resp.contains("\"ok\":true"),
        "{resp}"
    );

    shutdown_server(addr, handle);
}
