//! Lowered CFG node payloads.
//!
//! Lowering resolves every variable reference to a [`Loc`] and classifies
//! uses as *differentiable* (value flows arithmetically into the result) or
//! *non-differentiable* (array subscripts, branch conditions, integer `mod`
//! arithmetic) — the distinction Section 3 of the paper relies on for the
//! Vary/Useful transfer functions. The original expression ASTs are kept so
//! reaching constants can evaluate right-hand sides and MPI match arguments.

use crate::loc::{Loc, ProcId};
use mpi_dfa_lang::ast::{Expr, RedOp, StmtId};
use mpi_dfa_lang::span::Span;

/// Classified uses of one expression.
#[derive(Debug, Clone, Default)]
pub struct UseSet {
    /// Value uses through differentiable operations.
    pub diff: Vec<Loc>,
    /// Index, control, and integer-only uses.
    pub nondiff: Vec<Loc>,
}

impl UseSet {
    /// All used locations, differentiable first.
    pub fn all(&self) -> impl Iterator<Item = Loc> + '_ {
        self.diff.iter().chain(self.nondiff.iter()).copied()
    }
}

/// An expression with resolved, classified uses.
#[derive(Debug, Clone)]
pub struct ExprInfo {
    pub expr: Expr,
    pub uses: UseSet,
}

/// A resolved storage reference (assignment target, MPI buffer, `read`
/// target, or by-reference actual).
#[derive(Debug, Clone)]
pub struct RefInfo {
    pub loc: Loc,
    /// True when the whole variable is referenced (no subscripts): a *strong*
    /// definition. Element references are weak definitions of the array.
    pub whole: bool,
    /// Locations used in subscript expressions (always non-differentiable).
    pub index_uses: Vec<Loc>,
}

impl RefInfo {
    /// Whether a write through this reference overwrites all storage.
    pub fn is_strong_def(&self) -> bool {
        self.whole
    }
}

/// One by-reference-capable actual argument at a call site.
#[derive(Debug, Clone)]
pub struct ActualArg {
    /// `Some` when the actual is an lvalue: a whole variable (true aliasing)
    /// or an array element (conservatively aliased to the whole array).
    pub reference: Option<RefInfo>,
    /// The argument expression with classified uses (covers the by-value
    /// case and the subscript uses of the lvalue case).
    pub value: ExprInfo,
}

/// A call site within a procedure CFG.
#[derive(Debug, Clone)]
pub struct CallSiteInfo {
    pub callee: ProcId,
    pub args: Vec<ActualArg>,
    pub stmt: StmtId,
    /// Local node id of the call node.
    pub call_node: u32,
    /// Local node id of the matching after-call (return-point) node.
    pub after_node: u32,
}

/// MPI operation category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiKind {
    Send,
    Isend,
    Recv,
    Irecv,
    Bcast,
    Reduce,
    Allreduce,
    Barrier,
    Wait,
}

impl MpiKind {
    /// Operations whose buffer contents leave this process.
    pub fn sends_data(self) -> bool {
        matches!(
            self,
            MpiKind::Send | MpiKind::Isend | MpiKind::Bcast | MpiKind::Reduce | MpiKind::Allreduce
        )
    }

    /// Operations whose buffer is (possibly) written with remote data.
    pub fn receives_data(self) -> bool {
        matches!(
            self,
            MpiKind::Recv | MpiKind::Irecv | MpiKind::Bcast | MpiKind::Reduce | MpiKind::Allreduce
        )
    }

    /// Point-to-point message source (matched against receives).
    pub fn is_p2p_send(self) -> bool {
        matches!(self, MpiKind::Send | MpiKind::Isend)
    }

    /// Point-to-point message sink.
    pub fn is_p2p_recv(self) -> bool {
        matches!(self, MpiKind::Recv | MpiKind::Irecv)
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            MpiKind::Send => "send",
            MpiKind::Isend => "isend",
            MpiKind::Recv => "recv",
            MpiKind::Irecv => "irecv",
            MpiKind::Bcast => "bcast",
            MpiKind::Reduce => "reduce",
            MpiKind::Allreduce => "allreduce",
            MpiKind::Barrier => "barrier",
            MpiKind::Wait => "wait",
        }
    }
}

/// An MPI match argument (tag / communicator / root / rank expression),
/// kept as AST for constant evaluation during communication-edge matching.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    pub expr: Option<Expr>,
    /// True when the argument is the `ANY` wildcard.
    pub is_any: bool,
    /// Locations the expression reads (all non-differentiable).
    pub uses: Vec<Loc>,
}

impl MatchExpr {
    pub fn any() -> Self {
        MatchExpr {
            expr: None,
            is_any: true,
            uses: Vec::new(),
        }
    }
}

/// Lowered MPI operation.
#[derive(Debug, Clone)]
pub struct MpiInfo {
    pub kind: MpiKind,
    /// The message buffer: send/recv/bcast payload, or the reduce/allreduce
    /// *receive* buffer.
    pub buf: Option<RefInfo>,
    /// The reduce/allreduce contributed value.
    pub value: Option<ExprInfo>,
    /// Destination rank (sends) or source rank (receives).
    pub peer: Option<MatchExpr>,
    /// Message tag (point-to-point only).
    pub tag: Option<MatchExpr>,
    /// Collective root (bcast/reduce).
    pub root: Option<MatchExpr>,
    /// Communicator; never `ANY`. `None` means the default `COMM_WORLD`.
    pub comm: Option<MatchExpr>,
    pub op: Option<RedOp>,
}

/// The payload of one CFG node.
///
/// `Mpi` dominates the size; nodes are built once per procedure and shared
/// by all clones, so boxing it would only add indirection on the analysis
/// hot path.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum NodeKind {
    /// Procedure entry (local node 0).
    Entry,
    /// Procedure exit (local node 1).
    Exit,
    /// `lhs = rhs`.
    Assign { lhs: RefInfo, rhs: ExprInfo },
    /// A branch / loop-header condition evaluation (control uses only).
    Branch { cond: ExprInfo },
    /// A call site; index into [`crate::cfg::ProcCfg::call_sites`].
    CallSite { site: u32 },
    /// The return point of a call site.
    AfterCall { site: u32 },
    /// An MPI operation.
    Mpi(MpiInfo),
    /// External input into a reference.
    Read { target: RefInfo },
    /// External output of an expression.
    Print { value: ExprInfo },
    /// No effect (declaration without initializer).
    Nop,
}

/// One lowered CFG node.
#[derive(Debug, Clone)]
pub struct CfgNode {
    pub kind: NodeKind,
    /// Originating statement, when there is one (used by slicing and the
    /// pretty dumps). Synthetic loop bookkeeping nodes inherit the loop's id.
    pub stmt: Option<StmtId>,
    pub span: Span,
}

impl CfgNode {
    pub fn synthetic(kind: NodeKind) -> Self {
        CfgNode {
            kind,
            stmt: None,
            span: Span::DUMMY,
        }
    }

    /// Short label for dumps and DOT output.
    pub fn label(&self) -> String {
        match &self.kind {
            NodeKind::Entry => "entry".into(),
            NodeKind::Exit => "exit".into(),
            NodeKind::Assign { lhs, .. } => format!("assign {}", lhs.loc),
            NodeKind::Branch { .. } => "branch".into(),
            NodeKind::CallSite { site } => format!("call#{site}"),
            NodeKind::AfterCall { site } => format!("after#{site}"),
            NodeKind::Mpi(m) => m.kind.mnemonic().into(),
            NodeKind::Read { .. } => "read".into(),
            NodeKind::Print { .. } => "print".into(),
            NodeKind::Nop => "nop".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_kind_directionality() {
        assert!(MpiKind::Send.sends_data() && !MpiKind::Send.receives_data());
        assert!(!MpiKind::Recv.sends_data() && MpiKind::Recv.receives_data());
        assert!(MpiKind::Bcast.sends_data() && MpiKind::Bcast.receives_data());
        assert!(MpiKind::Reduce.sends_data() && MpiKind::Reduce.receives_data());
        assert!(MpiKind::Allreduce.sends_data() && MpiKind::Allreduce.receives_data());
        assert!(!MpiKind::Barrier.sends_data() && !MpiKind::Barrier.receives_data());
        assert!(MpiKind::Isend.is_p2p_send());
        assert!(MpiKind::Irecv.is_p2p_recv());
        assert!(!MpiKind::Bcast.is_p2p_send());
    }

    #[test]
    fn strong_def_is_whole_reference() {
        let strong = RefInfo {
            loc: Loc(3),
            whole: true,
            index_uses: vec![],
        };
        let weak = RefInfo {
            loc: Loc(3),
            whole: false,
            index_uses: vec![Loc(4)],
        };
        assert!(strong.is_strong_def());
        assert!(!weak.is_strong_def());
    }

    #[test]
    fn useset_all_iterates_both_classes() {
        let u = UseSet {
            diff: vec![Loc(1)],
            nondiff: vec![Loc(2), Loc(3)],
        };
        assert_eq!(u.all().collect::<Vec<_>>(), vec![Loc(1), Loc(2), Loc(3)]);
    }
}
