//! # mpi-dfa-analyses — client analyses over the ICFG and MPI-ICFG
//!
//! Instantiates the `mpi-dfa-core` framework for the analyses the paper
//! discusses:
//!
//! * [`consts`] — interprocedural **reaching constants** (the canonical
//!   nonseparable analysis; also the engine behind communication-edge
//!   matching via [`mpi_match`]);
//! * [`activity`] — **activity analysis** (Vary ∩ Useful) with the paper's
//!   three modes: naive CFG (incorrect on SPMD code), the conservative
//!   global-buffer ICFG baseline, and the MPI-ICFG framework;
//! * [`liveness`] / [`reaching_defs`] — separable bit-vector analyses, which
//!   by the paper's argument need *no* communication modeling;
//! * [`slicing`] — forward data slicing over communication edges (the
//!   paper's Section 1 motivating client);
//! * [`taint`] — trust analysis (Section 2's second example client);
//! * [`interproc`] — shared caller↔callee fact mapping for set analyses.

pub mod activity;
pub mod bitwidth;
pub mod consts;
pub mod governor;
pub mod interproc;
pub mod liveness;
pub mod mpi_match;
pub mod reaching_defs;
pub mod slicing;
pub mod taint;
pub mod twocopy;

pub use activity::{ActivityConfig, ActivityResult, Mode};
pub use consts::{CVal, ConstEnv, ConstsQuery};
pub use governor::{
    governed_activity, AnalysisProvenance, DegradeMode, GovernedActivity, GovernorConfig, Tier,
};
pub use mpi_match::{build_mpi_icfg, build_mpi_icfg_with_budget, Matching};
