//! JSONL-over-TCP daemon front end (`mpidfa serve`).
//!
//! One `std::net::TcpListener`, one thread per connection, all sharing one
//! [`Engine`] (and therefore one set of caches — the second client to ask
//! a question gets the first client's warm answer). The wire protocol is
//! exactly the batch protocol: one JSON request per line in, one JSON
//! response per line out, in order, on the same connection.
//!
//! Robustness contract (exercised by the fuzz corpus and the chaos
//! harness in `tests/`):
//!
//! * a malformed line gets a structured `parse` error, never a dropped
//!   connection;
//! * a line longer than [`MAX_LINE_BYTES`] gets a `too-large` error and
//!   the reader **resynchronizes at the next newline**, so the client can
//!   keep using the connection;
//! * every analysis request passes **admission control** first: past the
//!   in-flight cap it is shed with a structured `overloaded` error and a
//!   `retry_after_ms` hint, and under sustained load the admission ladder
//!   raises the governor tier floor (see [`crate::admission`]);
//! * sockets carry an **idle read timeout** (a connection that sends
//!   nothing for [`ServerConfig::idle_timeout`] is reaped) and a **write
//!   timeout** (a stalled reader cannot pin a worker thread past
//!   [`ServerConfig::write_timeout`] — the connection is dropped);
//! * a panic inside the engine is caught per request and answered as a
//!   structured `internal` error; the connection and server survive;
//! * a `shutdown` request is acknowledged (`{"stopping":true}`), then the
//!   whole server drains: the accept loop is woken by a loopback connect
//!   and every open connection's socket is shut down, which interrupts
//!   parked reads immediately — no polling tick, no idle CPU burn, and
//!   `Server::run` returns only after all threads join.

use crate::engine::Engine;
use crate::obs::{mint_trace_id, AccessRecord, TelemetryHub};
use crate::proto::{parse_request, render_err, ProtoError, RequestKind, TraceCtx, MAX_LINE_BYTES};
use crate::slo;
use mpi_dfa_core::telemetry;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Socket-level limits for one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// A connection that sends no bytes for this long is reaped.
    pub idle_timeout: Duration,
    /// A response write blocked on a stalled client for this long drops
    /// the connection.
    pub write_timeout: Duration,
    /// Hard cap on concurrently open connections; excess connections are
    /// answered with one `overloaded` error line and closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_connections: 256,
        }
    }
}

/// One line in, one line out: the pluggable request brain behind the
/// socket loop. [`EngineLineHandler`] is the single-box worker
/// (admission + engine); the cluster router in [`crate::router`] is a
/// second implementation that forwards lines to sharded workers. Both
/// inherit the same socket robustness contract (oversize resync, idle
/// reaping, connection cap, shutdown drain) from [`Server`] for free.
pub trait LineHandler: Send + Sync + 'static {
    /// Answer one trimmed, non-empty request line. Returns the response
    /// line (no trailing newline) and whether this line asked the server
    /// to shut down (the returned response is the acknowledgement).
    fn answer(&self, line: &str) -> (String, bool);

    /// The single structured line answered to a connection rejected at
    /// the connection cap before it is closed.
    fn connection_overloaded(&self, max_connections: usize) -> String {
        let e = ProtoError::new(
            "overloaded",
            format!("connection limit {max_connections} reached; retry later"),
        )
        .with_retry_after(crate::admission::AdmissionConfig::default().retry_after_ms);
        render_err(0, &e)
    }
}

/// The single-process worker brain: admission control in front of the
/// shared [`Engine`], panics caught per request.
pub struct EngineLineHandler {
    engine: Arc<Engine>,
    /// Present on a single-box `serve` with observability configured:
    /// each analysis request then gets one access-log line (minting a
    /// trace id when the client sent none). Cluster workers run without a
    /// hub — their latency view reaches the supervisor's hub over the
    /// telemetry stream, and the *router* writes the access log.
    hub: Option<Arc<TelemetryHub>>,
}

impl EngineLineHandler {
    pub fn new(engine: Arc<Engine>) -> Self {
        EngineLineHandler { engine, hub: None }
    }

    /// [`EngineLineHandler::new`] plus an observability hub for the
    /// access log (single-box serve).
    pub fn with_hub(engine: Arc<Engine>, hub: Arc<TelemetryHub>) -> Self {
        EngineLineHandler {
            engine,
            hub: Some(hub),
        }
    }

    /// The wrapped engine (tests and the CLI reach caches through this).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl std::fmt::Debug for EngineLineHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineLineHandler")
            .field("engine", &self.engine)
            .field("hub", &self.hub.is_some())
            .finish()
    }
}

impl LineHandler for EngineLineHandler {
    /// Analysis kinds pass admission control first: a shed answers a
    /// structured `overloaded` error with the retry hint; an admitted
    /// request runs under the current governor tier floor, holding its
    /// in-flight permit until the response is computed. Control verbs
    /// (`ping`, `shutdown`, `cache-stats`) skip admission — health checks
    /// and introspection must keep answering precisely when the server is
    /// busiest.
    fn answer(&self, line: &str) -> (String, bool) {
        let engine = &self.engine;
        let started = std::time::Instant::now();
        match parse_request(line) {
            Err(e) => (render_err(0, &e), false),
            Ok(mut req) => {
                let control = matches!(
                    req.kind,
                    RequestKind::Ping
                        | RequestKind::Shutdown
                        | RequestKind::CacheStats
                        | RequestKind::Metrics
                );
                // With an access log configured, every analysis request
                // gets a trace id — minted here when the client sent none,
                // so its line is always correlatable.
                if self.hub.is_some() && !control && req.trace.is_none() {
                    req.trace = Some(TraceCtx {
                        id: mint_trace_id(),
                        parent: 0,
                        attempt: 0,
                    });
                }
                let resp = if control {
                    engine.handle(&req)
                } else {
                    match engine.admission().try_admit() {
                        Err(shed) => render_err(
                            req.id,
                            &ProtoError::new(
                                "overloaded",
                                "server at max in-flight requests; retry later",
                            )
                            .with_retry_after(shed.retry_after_ms),
                        ),
                        Ok(_permit) => {
                            // The permit is held across the compute; the
                            // floor is sampled once so the whole request
                            // runs one consistent configuration.
                            let floor = engine.admission().tier_floor();
                            catch_unwind(AssertUnwindSafe(|| engine.handle_with_floor(&req, floor)))
                                .unwrap_or_else(|_| {
                                    render_err(
                                        req.id,
                                        &ProtoError::new("internal", "analysis worker panicked"),
                                    )
                                })
                        }
                    }
                };
                if !control {
                    let latency_us = started.elapsed().as_micros() as u64;
                    let cache = slo::cache_outcome(&resp);
                    engine.slo().record(
                        req.kind.as_str(),
                        cache,
                        &engine.shard_label(),
                        latency_us,
                    );
                    if let (Some(hub), Some(t)) = (&self.hub, &req.trace) {
                        hub.record_access(&AccessRecord {
                            trace: t.id,
                            verb: req.kind.as_str().to_string(),
                            shard: None,
                            epoch: 0,
                            attempts: 1,
                            cache: cache.to_string(),
                            tier: slo::tier_of(&resp).to_string(),
                            latency_us,
                        });
                    }
                }
                (resp, req.kind == RequestKind::Shutdown)
            }
        }
    }

    fn connection_overloaded(&self, max_connections: usize) -> String {
        let e = ProtoError::new(
            "overloaded",
            format!("connection limit {max_connections} reached; retry later"),
        )
        .with_retry_after(self.engine.admission().config().retry_after_ms);
        render_err(0, &e)
    }
}

/// A bound-but-not-yet-running server. Splitting bind from run lets the
/// caller learn the actual address (port 0 ⇒ ephemeral) before blocking.
#[derive(Debug)]
pub struct Server<H: LineHandler = EngineLineHandler> {
    listener: TcpListener,
    handler: Arc<H>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7117`, or port `0` for ephemeral) with
    /// default socket limits.
    pub fn bind(engine: Arc<Engine>, addr: &str) -> Result<Server, String> {
        Self::bind_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit socket limits.
    pub fn bind_with(
        engine: Arc<Engine>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server, String> {
        Server::bind_handler(Arc::new(EngineLineHandler::new(engine)), addr, config)
    }
}

impl<H: LineHandler> Server<H> {
    /// Bind with an explicit request brain (the cluster router uses this).
    pub fn bind_handler(
        handler: Arc<H>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server<H>, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server {
            listener,
            handler,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))
    }

    /// Accept and serve connections until a client sends `shutdown`.
    /// Returns once every connection thread has exited.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr()?;
        let mut threads = Vec::new();
        // Registry of open connections (a `try_clone` per socket) so the
        // drain path can interrupt parked reads with a socket shutdown
        // instead of waiting out a timeout tick.
        let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut next_id: u64 = 0;
        loop {
            let (mut stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.shutdown.load(Ordering::SeqCst) => break,
                Err(e) => return Err(format!("accept: {e}")),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // The stream that woke us (loopback or a late client) is
                // dropped unanswered; we are draining.
                break;
            }
            if registry.lock().unwrap().len() >= self.config.max_connections {
                // Over the connection cap: one structured line, then close.
                // Best-effort — the client may already be gone.
                let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                let _ = writeln!(
                    stream,
                    "{}",
                    self.handler
                        .connection_overloaded(self.config.max_connections)
                );
                if telemetry::is_enabled() {
                    telemetry::metric_add("service_connections_rejected_total", 1.0);
                }
                continue;
            }
            let id = next_id;
            next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                registry.lock().unwrap().insert(id, clone);
            }
            let handler = Arc::clone(&self.handler);
            let shutdown = Arc::clone(&self.shutdown);
            let registry2 = Arc::clone(&registry);
            let config = self.config;
            threads.push(std::thread::spawn(move || {
                let mut span = telemetry::span("service", "connection");
                span.arg("peer", peer.to_string());
                // I/O errors here mean the client vanished; nothing to do.
                let _ = serve_connection(handler.as_ref(), stream, &shutdown, addr, &config);
                registry2.lock().unwrap().remove(&id);
            }));
        }
        // Drain: shut every open socket down so parked reads return
        // immediately (EOF), then join. No polling loop anywhere.
        self.shutdown.store(true, Ordering::SeqCst);
        for stream in registry.lock().unwrap().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }
}

/// Bind, announce `listening on ADDR` on stdout (line-buffered clients —
/// including the CI harness — wait for exactly this line), then serve
/// until shutdown.
pub fn serve(engine: Arc<Engine>, addr: &str) -> Result<(), String> {
    serve_with(engine, addr, ServerConfig::default())
}

/// [`serve`] with explicit socket limits.
pub fn serve_with(engine: Arc<Engine>, addr: &str, config: ServerConfig) -> Result<(), String> {
    let server = Server::bind_with(engine, addr, config)?;
    let bound = server.local_addr()?;
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    server.run()
}

/// Serve one connection. Returns `Ok(true)` iff this connection requested
/// shutdown (in which case the flag is already set and the acceptor has
/// been woken).
fn serve_connection<H: LineHandler>(
    handler: &H,
    mut stream: TcpStream,
    shutdown: &Arc<AtomicBool>,
    server_addr: SocketAddr,
    config: &ServerConfig,
) -> std::io::Result<bool> {
    // The read timeout is the *idle reaper*, not a shutdown tick: shutdown
    // interrupts reads via socket shutdown, so this can be generous.
    stream.set_read_timeout(Some(config.idle_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    // One JSON line per response: without TCP_NODELAY the Nagle /
    // delayed-ACK interaction can add ~40 ms to every round trip, which
    // dwarfs a warm cache hit.
    stream.set_nodelay(true)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    // After an oversized line is reported, discard bytes up to the next
    // newline so the stream resynchronizes on line boundaries.
    let mut skip_to_newline = false;

    loop {
        // Drain every complete line currently buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            if skip_to_newline {
                skip_to_newline = false; // this newline ends the giant line
                continue;
            }
            if answer_line(handler, &mut stream, &line_bytes)? {
                shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor if it is parked in `accept`.
                let _ = TcpStream::connect(server_addr);
                return Ok(true);
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            if !skip_to_newline {
                let e = ProtoError::new(
                    "too-large",
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                writeln!(stream, "{}", render_err(0, &e))?;
                skip_to_newline = true;
            }
            buf.clear();
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. Be forgiving about a final line with no trailing
                // newline — answer it, then close.
                if !buf.is_empty() && !skip_to_newline {
                    let line = std::mem::take(&mut buf);
                    if answer_line(handler, &mut stream, &line)? {
                        shutdown.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(server_addr);
                        return Ok(true);
                    }
                }
                return Ok(false);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle past the reaper timeout (or a drain already shut the
                // socket): close. A client that went quiet this long can
                // reconnect; holding the slot open starves admission.
                if telemetry::is_enabled() && !shutdown.load(Ordering::SeqCst) {
                    telemetry::metric_add("service_idle_reaped_total", 1.0);
                }
                return Ok(false);
            }
            Err(_) if shutdown.load(Ordering::SeqCst) => return Ok(false),
            Err(e) => return Err(e),
        }
    }
}

/// Answer one raw line through the handler. Returns `Ok(true)` iff the
/// line was a valid `shutdown` request (already acknowledged on the
/// stream).
fn answer_line<H: LineHandler>(
    handler: &H,
    stream: &mut TcpStream,
    line_bytes: &[u8],
) -> std::io::Result<bool> {
    let line = String::from_utf8_lossy(line_bytes);
    let line = line.trim_end_matches(['\n', '\r']);
    if line.trim().is_empty() {
        return Ok(false);
    }
    let (resp, wants_shutdown) = handler.answer(line);
    writeln!(stream, "{resp}")?;
    Ok(wants_shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::engine::EngineConfig;
    use std::io::{BufRead, BufReader};

    fn start() -> (SocketAddr, std::thread::JoinHandle<Result<(), String>>) {
        let (addr, handle, _) = start_with(EngineConfig::default(), ServerConfig::default());
        (addr, handle)
    }

    fn start_with(
        engine_cfg: EngineConfig,
        server_cfg: ServerConfig,
    ) -> (
        SocketAddr,
        std::thread::JoinHandle<Result<(), String>>,
        Arc<Engine>,
    ) {
        let engine = Arc::new(Engine::new(engine_cfg).unwrap());
        let server = Server::bind_with(Arc::clone(&engine), "127.0.0.1:0", server_cfg).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle, engine)
    }

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { stream, reader }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            writeln!(self.stream, "{line}").unwrap();
            let mut resp = String::new();
            self.reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        }
    }

    #[test]
    fn serve_ping_analyze_and_clean_shutdown() {
        let (addr, handle) = start();
        let mut c = Client::connect(addr);
        let pong = c.roundtrip(r#"{"id":1,"kind":"ping"}"#);
        assert!(pong.contains("\"pong\":true"), "{pong}");

        let cold =
            c.roundtrip(r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        // Warmth is shared across connections: a NEW client hits.
        let mut c2 = Client::connect(addr);
        let warm = c2
            .roundtrip(r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");

        let bye = c2.roundtrip(r#"{"id":4,"kind":"shutdown"}"#);
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        // run() returns: every thread drained — including c, which is
        // still parked in a read with most of its 60 s idle timeout left;
        // only the socket-shutdown drain can release it this fast.
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_get_errors_and_connection_survives() {
        let (addr, handle) = start();
        let mut c = Client::connect(addr);
        let r = c.roundtrip("{\"id\":1,\"kind\":");
        assert!(
            r.contains("\"code\":\"parse\"") && r.contains("\"id\":0"),
            "{r}"
        );
        let r = c.roundtrip(r#"{"id":2,"kind":"warp"}"#);
        assert!(r.contains("\"code\":\"unknown-kind\""), "{r}");
        // Still alive after both errors.
        let r = c.roundtrip(r#"{"id":3,"kind":"ping"}"#);
        assert!(r.contains("\"pong\":true"), "{r}");
        c.roundtrip(r#"{"id":4,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_line_is_rejected_and_stream_resyncs() {
        let (addr, handle) = start();
        let mut c = Client::connect(addr);
        // One line just over the cap, then a valid ping on the same
        // connection: the reader must resync at the newline.
        let huge = vec![b'a'; MAX_LINE_BYTES + 2];
        c.stream.write_all(&huge).unwrap();
        c.stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        c.reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"code\":\"too-large\""), "{resp}");
        let r = c.roundtrip(r#"{"id":9,"kind":"ping"}"#);
        assert!(r.contains("\"pong\":true"), "resync failed: {r}");
        c.roundtrip(r#"{"id":10,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn final_line_without_newline_is_answered() {
        let (addr, handle) = start();
        let mut c = Client::connect(addr);
        c.stream.write_all(br#"{"id":1,"kind":"ping"}"#).unwrap();
        c.stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        c.reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"pong\":true"), "{resp}");
        // Shut the server down from a second client.
        let mut c2 = Client::connect(addr);
        c2.roundtrip(r#"{"id":2,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn saturated_admission_sheds_with_retry_hint_then_recovers() {
        let (addr, handle, engine) = start_with(
            EngineConfig {
                admission: AdmissionConfig {
                    max_inflight: 1,
                    t1_watermark: 1,
                    t2_watermark: 1,
                    hysteresis: 1,
                    retry_after_ms: 7,
                },
                ..Default::default()
            },
            ServerConfig::default(),
        );
        let mut c = Client::connect(addr);
        // Saturate the ledger deterministically by holding the only permit
        // directly — no racing threads involved.
        let permit = engine.admission().try_admit().unwrap();
        let r =
            c.roundtrip(r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(r.contains("\"code\":\"overloaded\""), "{r}");
        assert!(r.contains("\"retry_after_ms\":7"), "{r}");
        // Ping is exempt: liveness keeps answering at full load.
        let r = c.roundtrip(r#"{"id":2,"kind":"ping"}"#);
        assert!(r.contains("\"pong\":true"), "{r}");
        assert_eq!(engine.admission().snapshot().shed_total, 1);
        // Release: the same request is admitted and answers.
        drop(permit);
        let r =
            c.roundtrip(r#"{"id":3,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(r.contains("\"ok\":true"), "{r}");
        c.roundtrip(r#"{"id":4,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn sustained_load_steps_the_tier_floor_up_and_back_down() {
        let (addr, handle, engine) = start_with(
            EngineConfig {
                admission: AdmissionConfig {
                    max_inflight: 8,
                    t1_watermark: 2,
                    t2_watermark: 3,
                    hysteresis: 1,
                    retry_after_ms: 10,
                },
                ..Default::default()
            },
            ServerConfig::default(),
        );
        let mut c = Client::connect(addr);
        // Three held permits put the ladder at T2 (the socket request
        // below admits as the fourth and samples the T2 floor).
        let p1 = engine.admission().try_admit().unwrap();
        let p2 = engine.admission().try_admit().unwrap();
        let p3 = engine.admission().try_admit().unwrap();
        let degraded =
            c.roundtrip(r#"{"id":1,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(degraded.contains("\"tier\":\"T2\""), "{degraded}");
        assert!(
            degraded.contains("\"cache\":\"bypass\""),
            "degraded answers are never cached: {degraded}"
        );
        // Drain steps back down one rung at a time: T2 -> T1 -> T0.
        drop(p3);
        assert_eq!(
            engine.admission().tier_floor(),
            mpi_dfa_analyses::governor::Tier::T1
        );
        drop(p2);
        assert_eq!(
            engine.admission().tier_floor(),
            mpi_dfa_analyses::governor::Tier::T0
        );
        drop(p1);
        // And the precise answer is computed fresh (the degraded one was
        // not cached); one in-flight request stays below the T1 watermark.
        let precise =
            c.roundtrip(r#"{"id":2,"kind":"analyze","program":"figure1","ind":["x"],"dep":["f"]}"#);
        assert!(precise.contains("\"tier\":\"T0\""), "{precise}");
        c.roundtrip(r#"{"id":3,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn connection_cap_answers_one_overloaded_line_and_closes() {
        let (addr, handle, _engine) = start_with(
            EngineConfig::default(),
            ServerConfig {
                max_connections: 1,
                ..Default::default()
            },
        );
        let mut c1 = Client::connect(addr);
        // Ensure c1 is fully registered before racing a second connect.
        assert!(c1.roundtrip(r#"{"id":1,"kind":"ping"}"#).contains("pong"));
        let mut c2 = Client::connect(addr);
        let mut line = String::new();
        c2.reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"code\":\"overloaded\""), "{line}");
        assert!(line.contains("retry_after_ms"), "{line}");
        // The rejected socket is closed (EOF on the next read)…
        let mut rest = String::new();
        assert_eq!(c2.reader.read_line(&mut rest).unwrap(), 0, "{rest:?}");
        // …while the admitted one keeps serving.
        assert!(c1.roundtrip(r#"{"id":2,"kind":"ping"}"#).contains("pong"));
        c1.roundtrip(r#"{"id":3,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let (addr, handle, _engine) = start_with(
            EngineConfig::default(),
            ServerConfig {
                idle_timeout: Duration::from_millis(100),
                ..Default::default()
            },
        );
        let mut c = Client::connect(addr);
        assert!(c.roundtrip(r#"{"id":1,"kind":"ping"}"#).contains("pong"));
        // Send nothing: the server closes our socket after ~100 ms.
        let mut line = String::new();
        assert_eq!(
            c.reader.read_line(&mut line).unwrap(),
            0,
            "idle connection must be reaped: {line:?}"
        );
        // The server itself is fine.
        let mut c2 = Client::connect(addr);
        assert!(c2.roundtrip(r#"{"id":2,"kind":"ping"}"#).contains("pong"));
        c2.roundtrip(r#"{"id":3,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
    }
}
