//! # mpi-dfa — data-flow analysis for MPI programs
//!
//! A Rust reproduction of *Data-Flow Analysis for MPI Programs*
//! (Strout, Kreaseck, Hovland; ICPP 2006): an interprocedural data-flow
//! framework whose graphs carry **communication edges** between matching
//! MPI operations, so nonseparable analyses (reaching constants, activity
//! analysis, slicing, trust analysis) model message-passing SPMD semantics
//! correctly and precisely.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`lang`] — the SMPL front end (SPMD mini-language: parser, sema,
//!   interpreter);
//! * [`graph`] — CFG/ICFG construction, clone-level context sensitivity,
//!   and MPI-ICFG communication-edge matching;
//! * [`core`] — the generic solver: lattices, the [`core::Dataflow`] trait
//!   with its communication transfer function, and the [`core::Solver`]
//!   builder over round-robin, worklist, and SCC-region-parallel
//!   strategies, plus incremental (`seed`/`dirty`) and demand-driven
//!   (`demand`) partial modes (see `docs/SOLVER.md` and
//!   `docs/INCREMENTAL.md`);
//! * [`analyses`] — reaching constants, activity (Vary/Useful/Active),
//!   liveness, reaching definitions, forward slicing, taint;
//! * [`suite`] — the benchmark programs and the Table 1 / Figure 4
//!   experiment harness;
//! * [`service`] — the analysis service: content-addressed incremental
//!   caching (per-procedure CFG reuse, whole-program IR, result store)
//!   behind a JSONL batch scheduler and TCP daemon (see
//!   `docs/SERVING.md`);
//! * [`verify`] — the static correctness suite: match-set verification,
//!   rank-sensitive may-happen-in-parallel, and predictive deadlock
//!   detection, cross-checked against the schedule explorer (see
//!   `docs/VERIFY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use mpi_dfa::prelude::*;
//!
//! let ir = ProgramIr::from_source(
//!     "program demo
//!      global x: real; global y: real; global out: real;
//!      sub main() {
//!          x = x * 2.0;
//!          if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); }
//!          out = y + 1.0;
//!      }",
//! )
//! .unwrap();
//!
//! // Build the MPI-ICFG with reaching-constants edge matching.
//! let mpi = build_mpi_icfg(ir, "main", 0, Matching::ReachingConstants).unwrap();
//! assert_eq!(mpi.comm_edges.len(), 1);
//!
//! // Activity analysis: what needs derivatives if we differentiate
//! // `out` with respect to `x`?
//! let result = activity::analyze_mpi(&mpi, &ActivityConfig::new(["x"], ["out"])).unwrap();
//! assert_eq!(result.active_bytes, 24); // x, y, out
//! ```

pub use mpi_dfa_analyses as analyses;
pub use mpi_dfa_core as core;
pub use mpi_dfa_graph as graph;
pub use mpi_dfa_lang as lang;
pub use mpi_dfa_service as service;
pub use mpi_dfa_suite as suite;
pub use mpi_dfa_verify as verify;

/// The most common imports for building and analyzing MPI-ICFGs.
pub mod prelude {
    pub use mpi_dfa_analyses::activity::{self, ActivityConfig, ActivityResult, Mode};
    pub use mpi_dfa_analyses::governor::{
        governed_activity, AnalysisProvenance, DegradeMode, GovernedActivity, GovernorConfig, Tier,
    };
    pub use mpi_dfa_analyses::mpi_match::{build_mpi_icfg, Matching};
    pub use mpi_dfa_analyses::{consts, liveness, reaching_defs, slicing, taint};
    pub use mpi_dfa_core::budget::{Budget, BudgetSpent, CancelToken, Exhaustion};
    pub use mpi_dfa_core::solver::{
        DemandRun, SeededRun, Solution, SolveParams, Solver, SolverConfigError, Strategy,
    };
    pub use mpi_dfa_core::{Dataflow, Direction, VarSet};
    pub use mpi_dfa_graph::icfg::{Icfg, ProgramIr};
    pub use mpi_dfa_graph::mpi::{MpiIcfg, SyntacticConsts};
    pub use mpi_dfa_lang::{compile, CompiledUnit, StmtId};
}
