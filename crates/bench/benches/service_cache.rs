//! Service cache effectiveness: cold vs warm query latency on CG and LU.
//!
//! A warm query — the second time the service sees a request — must come
//! back from the content-addressed result cache, skipping parse, sema,
//! graph construction, matching, and both fixpoints. The bench *asserts*
//! the headline acceptance criterion: **warm ≥ 5× faster than cold** on
//! both benchmarks (in practice the ratio is orders of magnitude — a warm
//! hit is one LRU lookup plus a string clone).
//!
//! A second section measures the incremental layer: after editing ONE
//! subroutine of LU, rebuilding the program IR reuses every other
//! procedure's CFG from the per-procedure cache (statement ids are rebased
//! on transplant), and reports the rebuild latency next to the
//! from-scratch cost.
//!
//! The final line is a machine-readable JSON summary; the checked-in
//! `BENCH_service.json` baseline is exactly that line.

use mpi_dfa_bench::{criterion_group, criterion_main, Criterion};
use mpi_dfa_service::{parse_request, Engine, EngineConfig, Request};
use mpi_dfa_suite::programs;
use std::hint::black_box;
use std::time::Instant;

/// Warm-speedup floor asserted per benchmark (the PR's acceptance bar).
const MIN_WARM_SPEEDUP: f64 = 5.0;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn req(line: &str) -> Request {
    parse_request(line).expect("bench request parses")
}

/// Median cold latency: a FRESH engine per sample, so every layer misses.
fn time_cold(line: &str, samples: usize) -> f64 {
    let request = req(line);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let t = Instant::now();
        let resp = black_box(engine.handle(&request));
        times.push(t.elapsed().as_secs_f64() * 1e9);
        assert!(resp.contains("\"cache\":\"miss\""), "{resp:.200}");
    }
    median_ns(times)
}

/// Median warm latency: one engine, pre-warmed, every sample hits.
fn time_warm(line: &str, samples: usize) -> f64 {
    let request = req(line);
    let engine = Engine::new(EngineConfig::default()).unwrap();
    assert!(engine.handle(&request).contains("\"cache\":\"miss\""));
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let resp = black_box(engine.handle(&request));
        times.push(t.elapsed().as_secs_f64() * 1e9);
        assert!(resp.contains("\"cache\":\"hit\""), "{resp:.200}");
    }
    median_ns(times)
}

/// Incremental rebuild: edit one subroutine of LU, rebuild the IR, count
/// per-procedure CFG reuse, and time the rebuild against from-scratch.
fn incremental_edit_stats() -> (u64, u64, f64, f64) {
    let lu = programs::source("lu").expect("lu is bundled");
    let first_sub_at = lu.find("sub ").expect("lu has subs");
    let insert_at = lu[first_sub_at..].find('{').unwrap() + first_sub_at + 1;
    let edited = format!(
        "{} print(1.0); print(2.0); {}",
        &lu[..insert_at],
        &lu[insert_at..]
    );

    const SAMPLES: usize = 15;
    let mut scratch = Vec::with_capacity(SAMPLES);
    let mut incremental = Vec::with_capacity(SAMPLES);
    let mut hits = 0u64;
    let mut relowered = 0u64;
    for _ in 0..SAMPLES {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let t = Instant::now();
        black_box(engine.ir_for(lu).unwrap());
        scratch.push(t.elapsed().as_secs_f64() * 1e9);
        let before = engine.caches().cfgs.counters().snapshot();
        let t = Instant::now();
        black_box(engine.ir_for(&edited).unwrap());
        incremental.push(t.elapsed().as_secs_f64() * 1e9);
        let after = engine.caches().cfgs.counters().snapshot();
        hits = after.hits - before.hits;
        relowered = after.insertions - before.insertions;
    }
    (hits, relowered, median_ns(scratch), median_ns(incremental))
}

fn bench_service_cache(c: &mut Criterion) {
    let cases = [
        ("CG", r#"{"id":1,"kind":"table1-row","row":"CG"}"#),
        ("LU", r#"{"id":2,"kind":"table1-row","row":"LU-1"}"#),
    ];

    // Standard printout via the criterion-compatible harness.
    let mut group = c.benchmark_group("service_cache");
    group.sample_size(10);
    for (name, line) in cases {
        let request = req(line);
        group.bench_function(format!("{name}/cold"), |b| {
            b.iter(|| {
                let engine = Engine::new(EngineConfig::default()).unwrap();
                black_box(engine.handle(&request))
            });
        });
        let warm_engine = Engine::new(EngineConfig::default()).unwrap();
        warm_engine.handle(&request);
        group.bench_function(format!("{name}/warm"), |b| {
            b.iter(|| black_box(warm_engine.handle(&request)));
        });
    }
    group.finish();

    // Precise medians for the baseline JSON + the asserted speedup floor.
    let mut json_cases = Vec::new();
    for (name, line) in cases {
        let cold_ns = time_cold(line, 11);
        let warm_ns = time_warm(line, 51);
        let speedup = cold_ns / warm_ns;
        println!(
            "service_cache {name}: cold {cold_ns:.0}ns, warm {warm_ns:.0}ns \
             => {speedup:.0}x (floor {MIN_WARM_SPEEDUP}x)"
        );
        assert!(
            speedup >= MIN_WARM_SPEEDUP,
            "{name}: warm queries are only {speedup:.1}x faster than cold \
             (floor {MIN_WARM_SPEEDUP}x); the result cache is not being hit"
        );
        json_cases.push(format!(
            "{{\"bench\":\"{name}\",\"cold_ns_median\":{cold_ns:.0},\
             \"warm_ns_median\":{warm_ns:.0},\"speedup\":{speedup:.1}}}"
        ));
    }

    let (hits, relowered, scratch_ns, incr_ns) = incremental_edit_stats();
    println!(
        "service_cache incremental LU edit: {hits} proc CFGs reused, \
         {relowered} re-lowered; scratch {scratch_ns:.0}ns vs incremental {incr_ns:.0}ns"
    );
    assert_eq!(relowered, 1, "exactly the edited procedure re-lowers");
    assert!(hits >= 2, "all other LU procedures must reuse their CFGs");

    // Machine-readable baseline — `BENCH_service.json` is this line.
    println!(
        "{{\"bench\":\"service_cache\",\"min_warm_speedup\":{MIN_WARM_SPEEDUP},\
         \"cases\":[{}],\"incremental_lu_edit\":{{\"proc_cfgs_reused\":{hits},\
         \"proc_cfgs_relowered\":{relowered},\"ir_scratch_ns_median\":{scratch_ns:.0},\
         \"ir_incremental_ns_median\":{incr_ns:.0}}}}}",
        json_cases.join(","),
    );
}

criterion_group!(benches, bench_service_cache);
criterion_main!(benches);
