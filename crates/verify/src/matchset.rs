//! Match-set verification over the MPI-ICFG communication edges.
//!
//! The matcher (`mpi_dfa_graph::mpi`) already connects every send to the
//! receives it may feasibly pair with (tag and communicator agree under
//! the configured constant query). This pass turns the *absence* of such
//! edges into structured diagnostics: an unmatched send can never be
//! consumed, an unmatched receive can never be satisfied — the latter is
//! a guaranteed runtime deadlock if the receive executes. Each diagnostic
//! explains *why* nothing matched (no counterpart at all, disjoint tags,
//! disjoint communicators) and carries clone-context provenance so the
//! report points at the precise instantiation.
//!
//! Soundness direction: "matched" is a *may* verdict (some feasible
//! counterpart exists along some path); "unmatched" is definite with
//! respect to the graph — no context of the program can pair the
//! operation. Constant peer ranks outside `0..nprocs` are additionally
//! reported as rank diagnostics.
//!
//! The pass also reports **supply exhaustion**: a receive sitting in a
//! control-flow loop whose every matched send executes at most once per
//! run (no send lies in any loop). The matcher abstracts message counts,
//! so such a receive looks matched, yet repeated iterations can consume
//! more messages than the senders ever produce — a deadlock the comm
//! edges cannot show. Loop membership is a nontrivial SCC of the
//! non-communication flow; a send also inside *some* loop silences the
//! diagnostic (its supply is unbounded too), which keeps iterative
//! exchange patterns (send-in-loop / recv-in-loop) quiet.
//!
//! Finally, **collective participation**: each collective kind
//! (`barrier`, `bcast`, `reduce`, `allreduce`) requires *every* rank to
//! arrive. If the union of the [`RankGuard`]s over all call sites of a
//! kind excludes some rank in `0..nprocs`, no execution can complete
//! that collective — whichever ranks do reach it block forever. Guards
//! are intra-procedural and one-sided toward `Any`, so this check can
//! only miss violations (a site in a rank-guarded *caller* looks
//! unguarded), never invent them for rank-unconstrained collectives.
//!
//! [`RankGuard`]: crate::guard::RankGuard

use crate::guard::Guards;
use crate::report::Diag;
use crate::VerifyConfig;
use mpi_dfa_core::graph::{FlowGraph, NodeId};
use mpi_dfa_graph::icfg::Icfg;
use mpi_dfa_graph::mpi::{fold_int, MpiIcfg};
use mpi_dfa_graph::node::{MatchExpr, MpiInfo, MpiKind, NodeKind};

/// Outcome of the match-set pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchReport {
    pub sends: usize,
    pub recvs: usize,
    pub collectives: usize,
    pub comm_edges: usize,
    pub unmatched_sends: Vec<Diag>,
    pub unmatched_recvs: Vec<Diag>,
    /// Constant peer/root ranks outside `0..nprocs`.
    pub rank_diags: Vec<Diag>,
    /// Receives that repeat in a loop while every matched send executes
    /// at most once — the senders can be exhausted mid-loop.
    pub loop_diags: Vec<Diag>,
    /// Collective kinds some rank can never participate in.
    pub collective_diags: Vec<Diag>,
}

impl MatchReport {
    pub fn is_clean(&self) -> bool {
        self.unmatched_sends.is_empty()
            && self.unmatched_recvs.is_empty()
            && self.rank_diags.is_empty()
            && self.loop_diags.is_empty()
            && self.collective_diags.is_empty()
    }
}

/// The tag or communicator value of a point-to-point operation, as far as
/// syntactic folding can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgAbs {
    Any,
    Const(i64),
    Unknown,
}

fn abs_of(m: Option<&MatchExpr>, default: i64) -> ArgAbs {
    match m {
        None => ArgAbs::Const(default),
        Some(me) if me.is_any => ArgAbs::Any,
        Some(me) => match me.expr.as_ref().and_then(fold_int) {
            Some(v) => ArgAbs::Const(v),
            None => ArgAbs::Unknown,
        },
    }
}

fn describe(a: ArgAbs) -> String {
    match a {
        ArgAbs::Any => "ANY".to_string(),
        ArgAbs::Const(v) => v.to_string(),
        ArgAbs::Unknown => "?".to_string(),
    }
}

/// Distinct described values, sorted, for "counterpart uses …" messages.
fn described_set(vals: impl Iterator<Item = ArgAbs>) -> String {
    let mut out: Vec<String> = Vec::new();
    for v in vals {
        let d = describe(v);
        if !out.contains(&d) {
            out.push(d);
        }
    }
    out.sort();
    if out.is_empty() {
        "none".to_string()
    } else {
        out.join(", ")
    }
}

fn mpi_info(g: &MpiIcfg, n: NodeId) -> Option<&MpiInfo> {
    match &g.icfg().payload(n).kind {
        NodeKind::Mpi(m) => Some(m),
        _ => None,
    }
}

/// Run the pass. `cfg.nprocs` feeds the rank-range and collective
/// participation diagnostics; `guards` feeds participation only.
pub fn check(g: &MpiIcfg, guards: &Guards, cfg: &VerifyConfig) -> MatchReport {
    let mut span = mpi_dfa_core::telemetry::span("verify", "matchset");
    let stats = g.stats();
    let icfg = g.icfg();

    let mut sends: Vec<NodeId> = Vec::new();
    let mut recvs: Vec<NodeId> = Vec::new();
    let mut collectives = 0usize;
    for &n in icfg.mpi_nodes() {
        let Some(m) = mpi_info(g, n) else { continue };
        if m.kind.is_p2p_send() {
            sends.push(n);
        } else if m.kind.is_p2p_recv() {
            recvs.push(n);
        } else if m.kind.sends_data() || m.kind.receives_data() {
            collectives += 1;
        }
    }

    let mut report = MatchReport {
        sends: sends.len(),
        recvs: recvs.len(),
        collectives,
        comm_edges: stats.comm_edges,
        unmatched_sends: Vec::new(),
        unmatched_recvs: Vec::new(),
        rank_diags: Vec::new(),
        loop_diags: Vec::new(),
        collective_diags: Vec::new(),
    };

    for &s in &sends {
        if g.comm_succs(s).next().is_none() {
            let m = mpi_info(g, s).expect("send node has MpiInfo");
            let reason = unmatched_reason(m, &recvs, g, "receive");
            report.unmatched_sends.push(Diag::at(g, s, reason));
        }
    }
    for &r in &recvs {
        if g.comm_preds(r).next().is_none() {
            let m = mpi_info(g, r).expect("recv node has MpiInfo");
            let reason = unmatched_reason(m, &sends, g, "send");
            report.unmatched_recvs.push(Diag::at(g, r, reason));
        }
    }

    // Constant peer / root ranks that no process can ever have.
    for &n in icfg.mpi_nodes() {
        let Some(m) = mpi_info(g, n) else { continue };
        for (what, me) in [("peer", m.peer.as_ref()), ("root", m.root.as_ref())] {
            let Some(me) = me else { continue };
            if me.is_any {
                continue;
            }
            if let Some(v) = me.expr.as_ref().and_then(fold_int) {
                if v < 0 || v >= cfg.nprocs as i64 {
                    report.rank_diags.push(Diag::at(
                        g,
                        n,
                        format!("{what} rank {v} outside 0..{}", cfg.nprocs),
                    ));
                }
            }
        }
    }

    // Supply exhaustion: a looping receive whose matched sends all run
    // at most once. Loop membership degrades gracefully with cloning
    // precision: shared callee instances (clone level 0) merge SCCs and
    // can only make a send *look* looped, silencing the diagnostic, never
    // inventing one.
    let looped = in_loop(icfg);
    for &r in &recvs {
        if !looped[r.index()] {
            continue;
        }
        let mut preds = g.comm_preds(r).peekable();
        if preds.peek().is_none() {
            continue; // already reported unmatched
        }
        if preds.all(|s| !looped[s.index()]) {
            report.loop_diags.push(Diag::at(
                g,
                r,
                "receive repeats in a loop but every matched send executes at most \
                 once: later iterations can exhaust the senders"
                    .to_string(),
            ));
        }
    }

    // Collective participation: every rank must be admitted by at least
    // one call site of each collective kind that appears at all.
    for kind in [
        MpiKind::Barrier,
        MpiKind::Bcast,
        MpiKind::Reduce,
        MpiKind::Allreduce,
    ] {
        let sites: Vec<NodeId> = icfg
            .mpi_nodes()
            .iter()
            .copied()
            .filter(|&n| mpi_info(g, n).is_some_and(|m| m.kind == kind))
            .collect();
        if sites.is_empty() {
            continue;
        }
        let guard_of = |n: NodeId| match icfg.payload(n).stmt {
            Some(sid) => guards.of(sid).clone(),
            None => crate::guard::RankGuard::any(),
        };
        let missing: Vec<String> = (0..cfg.nprocs)
            .filter(|&rho| !sites.iter().any(|&n| guard_of(n).admits(rho, cfg.nprocs)))
            .map(|rho| rho.to_string())
            .collect();
        if !missing.is_empty() {
            let anchor = *sites.iter().min_by_key(|n| n.0).expect("nonempty sites");
            report.collective_diags.push(Diag::at(
                g,
                anchor,
                format!(
                    "no {} site admits rank {} (of {} site{}): ranks that do \
                     arrive block forever",
                    format!("{kind:?}").to_lowercase(),
                    missing.join(", "),
                    sites.len(),
                    if sites.len() == 1 { "" } else { "s" },
                ),
            ));
        }
    }

    span.arg("unmatched_sends", report.unmatched_sends.len().to_string());
    span.arg("unmatched_recvs", report.unmatched_recvs.len().to_string());
    span.arg("loop_diags", report.loop_diags.len().to_string());
    span.arg(
        "collective_diags",
        report.collective_diags.len().to_string(),
    );
    report
}

/// `true` for nodes inside a nontrivial strongly connected component of
/// the non-communication flow (loops, including interprocedural ones
/// through call/return edges). Iterative Tarjan over the dense node ids.
fn in_loop(icfg: &Icfg) -> Vec<bool> {
    const UNVISITED: u32 = u32::MAX;
    let n = FlowGraph::num_nodes(icfg);
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut looped = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0u32;

    let succs = |i: usize| {
        icfg.out_edges(NodeId(i as u32))
            .iter()
            .filter(|e| !e.kind.is_comm())
    };

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            if *next == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                on_stack[v] = true;
                stack.push(v);
            }
            if let Some(e) = succs(v).nth(*next) {
                *next += 1;
                let w = e.to.index();
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    // Root of an SCC: pop it; nontrivial iff >1 member or
                    // a non-comm self-edge.
                    let start = stack.iter().rposition(|&x| x == v).expect("v on stack");
                    let members = &stack[start..];
                    let nontrivial = members.len() > 1 || succs(v).any(|e| e.to.index() == v);
                    for &m in members {
                        on_stack[m] = false;
                        looped[m] = nontrivial;
                    }
                    stack.truncate(start);
                }
            }
        }
    }
    looped
}

/// Explain why `m` paired with none of `others` (the opposite-direction
/// point-to-point operations).
fn unmatched_reason(m: &MpiInfo, others: &[NodeId], g: &MpiIcfg, word: &str) -> String {
    if others.is_empty() {
        return format!("no {word} anywhere in the program");
    }
    let tag = abs_of(m.tag.as_ref(), 0);
    let comm = abs_of(m.comm.as_ref(), 0);
    let other_infos: Vec<&MpiInfo> = others.iter().filter_map(|&n| mpi_info(g, n)).collect();

    let comm_ok = |o: &MpiInfo| {
        !matches!(
            (comm, abs_of(o.comm.as_ref(), 0)),
            (ArgAbs::Const(a), ArgAbs::Const(b)) if a != b
        )
    };
    let same_comm: Vec<&MpiInfo> = other_infos.iter().copied().filter(|o| comm_ok(o)).collect();
    if same_comm.is_empty() {
        return format!(
            "communicator {} matches no {word} (counterpart communicators: {})",
            describe(comm),
            described_set(other_infos.iter().map(|o| abs_of(o.comm.as_ref(), 0)))
        );
    }
    format!(
        "tag {} matches no {word} (counterpart tags on this communicator: {})",
        describe(tag),
        described_set(same_comm.iter().map(|o| abs_of(o.tag.as_ref(), 0)))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::build;

    fn check(g: &MpiIcfg, cfg: &VerifyConfig) -> MatchReport {
        let guards = Guards::build(&g.icfg().ir.unit.program);
        super::check(g, &guards, cfg)
    }

    #[test]
    fn figure1_is_fully_matched() {
        let g = build(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 1, 7); } else { recv(y, 0, 7); } }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!((r.sends, r.recvs), (1, 1));
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn tag_mismatch_is_diagnosed_both_ways() {
        let g = build(
            "program p global x: real; global y: real;\n\
             sub main() { send(x, 1 - rank(), 1); recv(y, 1 - rank(), 2); }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!(r.unmatched_sends.len(), 1);
        assert_eq!(r.unmatched_recvs.len(), 1);
        assert!(
            r.unmatched_sends[0].reason.contains("tag 1"),
            "{}",
            r.unmatched_sends[0].reason
        );
        assert!(
            r.unmatched_recvs[0].reason.contains("tag 2"),
            "{}",
            r.unmatched_recvs[0].reason
        );
    }

    #[test]
    fn lonely_recv_reports_no_send() {
        let g = build(
            "program p global y: real;\n\
             sub main() { recv(y, 0, 3); }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!(r.unmatched_recvs.len(), 1);
        assert!(r.unmatched_recvs[0]
            .reason
            .contains("no send anywhere in the program"));
    }

    #[test]
    fn looping_recv_with_one_shot_send_is_flagged() {
        // One send, three receive iterations: the matcher pairs them, but
        // iterations two and three have nothing left to consume.
        let g = build(
            "program p global x: real; global y: real; global i: int;\n\
             sub main() {\n\
               if (rank() == 0) { send(x, 1, 5); }\n\
               else { for i = 1, 3 { recv(y, 0, 5); } }\n\
             }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!(r.loop_diags.len(), 1, "{r:?}");
        assert!(r.loop_diags[0].reason.contains("exhaust"), "{r:?}");
        assert!(!r.is_clean());
    }

    #[test]
    fn loop_to_loop_exchange_is_quiet() {
        // Send and receive both iterate: supply matches demand shape, so
        // no supply-exhaustion diagnostic (the classic exchange pattern).
        let g = build(
            "program p global x: real; global y: real; global i: int;\n\
             sub main() {\n\
               if (rank() == 0) { for i = 1, 3 { send(x, 1, 5); } }\n\
               else { for i = 1, 3 { recv(y, 0, 5); } }\n\
             }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert!(r.loop_diags.is_empty(), "{r:?}");
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn straight_line_recv_is_quiet() {
        let g = build(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 1, 5); } else { recv(y, 0, 5); } }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert!(r.loop_diags.is_empty(), "{r:?}");
    }

    #[test]
    fn rank_excluded_collective_is_flagged() {
        // Every bcast site excludes rank 0, the only possible root: rank 1
        // arrives and waits for a participant that never comes.
        let g = build(
            "program p global x: real;\n\
             sub main() { if (rank() > 0) { bcast(x, 0); } }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!(r.collective_diags.len(), 1, "{r:?}");
        assert!(
            r.collective_diags[0].reason.contains("bcast")
                && r.collective_diags[0].reason.contains("rank 0"),
            "{r:?}"
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn split_collective_sites_cover_all_ranks() {
        // Per-site guards each exclude ranks, but together every rank can
        // reach *a* barrier — no participation diagnostic.
        let g = build(
            "program p\n\
             sub main() { if (rank() == 0) { barrier(); } else { barrier(); } }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert!(r.collective_diags.is_empty(), "{r:?}");
    }

    #[test]
    fn unguarded_collective_is_quiet() {
        let g = build(
            "program p global z: real; global f: real;\n\
             sub main() { reduce(SUM, z, f, 0); }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert!(r.collective_diags.is_empty(), "{r:?}");
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn out_of_range_peer_rank_is_flagged() {
        let g = build(
            "program p global x: real; global y: real;\n\
             sub main() { if (rank() == 0) { send(x, 9, 7); } else { recv(y, 0, 7); } }",
        );
        let r = check(&g, &VerifyConfig::default());
        assert_eq!(r.rank_diags.len(), 1, "{r:?}");
        assert!(r.rank_diags[0].reason.contains("9 outside 0..2"));
    }
}
