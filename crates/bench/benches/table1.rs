//! Table 1 regeneration bench.
//!
//! Times the full per-row pipeline (ICFG construction + global-buffer
//! activity baseline, then reaching-constants matching + MPI-ICFG activity)
//! for every benchmark row, and prints the regenerated table once so
//! `cargo bench` output doubles as the experiment record.

use mpi_dfa_bench::{criterion_group, criterion_main, Criterion};
use mpi_dfa_suite::runner::{render_table1, run_all, run_experiment};
use mpi_dfa_suite::{all_experiments, by_id};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once, with the paper's values alongside.
    let rows = run_all();
    println!("\n{}", render_table1(&rows));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for spec in all_experiments() {
        group.bench_function(spec.id, |b| {
            let spec = by_id(spec.id).unwrap();
            b.iter(|| black_box(run_experiment(&spec)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
