//! DOT overlay of verify findings on the MPI-ICFG.
//!
//! Same layout conventions as `mpi_dfa_graph::dot` (boxes clustered by
//! procedure instance, comm edges dashed red), plus:
//!
//! * unmatched sends/receives and out-of-range ranks fill **light red**;
//! * candidate deadlock-cycle members fill **orange**;
//! * the wait-for edges of each reported cycle are drawn as bold red
//!   `waits` edges (they are analysis edges, not graph edges).

use crate::VerifyReport;
use mpi_dfa_core::graph::{EdgeKind, FlowGraph, NodeId};
use mpi_dfa_graph::mpi::MpiIcfg;
use std::collections::HashSet;
use std::fmt::Write;

/// Render the MPI-ICFG with verify findings highlighted.
pub fn overlay(g: &MpiIcfg, report: &VerifyReport, title: &str) -> String {
    let icfg = g.icfg();
    let mut unmatched: HashSet<u32> = HashSet::new();
    for d in report
        .matchset
        .unmatched_sends
        .iter()
        .chain(&report.matchset.unmatched_recvs)
        .chain(&report.matchset.rank_diags)
        .chain(&report.matchset.loop_diags)
        .chain(&report.matchset.collective_diags)
    {
        unmatched.insert(d.node);
    }
    let mut cyclic: HashSet<u32> = HashSet::new();
    let mut wait_edges: Vec<(u32, u32)> = Vec::new();
    for cycle in &report.deadlock.cycles {
        for (i, n) in cycle.nodes.iter().enumerate() {
            cyclic.insert(n.node);
            let next = &cycle.nodes[(i + 1) % cycle.nodes.len()];
            wait_edges.push((n.node, next.node));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(
        out,
        "  node [shape=box, fontname=\"monospace\", fontsize=10];"
    );
    let _ = writeln!(
        out,
        "  // verify overlay: red = unmatched/range finding, orange = deadlock-cycle member;"
    );
    let _ = writeln!(
        out,
        "  // bold red \"waits\" edges trace each candidate wait-for cycle."
    );

    for (i, inst) in icfg.instances.iter().enumerate() {
        let name = icfg.ir.proc_name(inst.proc);
        let _ = writeln!(out, "  subgraph \"cluster_{i}\" {{");
        let _ = writeln!(out, "    label=\"{} (inst {i})\";", escape(name));
        let len = icfg.ir.cfgs[inst.proc.index()].num_nodes();
        for local in 0..len {
            let n = NodeId(inst.base + local as u32);
            let style = if unmatched.contains(&n.0) {
                ", style=filled, fillcolor=lightcoral"
            } else if cyclic.contains(&n.0) {
                ", style=filled, fillcolor=orange"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\"{style}];",
                n.0,
                escape(&icfg.payload(n).label())
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for n in icfg.nodes() {
        for e in icfg.out_edges(n) {
            let (style, extra) = match e.kind {
                EdgeKind::Flow => ("solid", ""),
                EdgeKind::Call { .. } | EdgeKind::Return { .. } => ("dotted", ""),
                EdgeKind::Comm { .. } => ("dashed", ", color=red, constraint=false"),
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [style={style}{extra}];",
                e.from.0, e.to.0
            );
        }
    }
    for (from, to) in &wait_edges {
        let _ = writeln!(
            out,
            "  n{from} -> n{to} [style=bold, color=red, constraint=false, label=\"waits\", fontcolor=red];"
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::build;
    use crate::{verify_static, VerifyConfig};
    use mpi_dfa_core::budget::Budget;

    #[test]
    fn overlay_highlights_cycles_and_unmatched() {
        let g = build(crate::corpus::HEAD_TO_HEAD);
        let r = verify_static(&g, &VerifyConfig::default(), &Budget::unlimited())
            .map_err(|e| e.to_string())
            .unwrap();
        let dot = overlay(&g, &r, "head-to-head");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("fillcolor=orange"), "{dot}");
        assert!(dot.contains("label=\"waits\""), "{dot}");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());

        let g2 = build(crate::corpus::TAG_MISMATCH);
        let r2 = verify_static(&g2, &VerifyConfig::default(), &Budget::unlimited())
            .map_err(|e| e.to_string())
            .unwrap();
        let dot2 = overlay(&g2, &r2, "tag-mismatch");
        assert!(dot2.contains("fillcolor=lightcoral"), "{dot2}");
    }
}
