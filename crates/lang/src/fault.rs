//! Message transport, fault injection, and true deadlock detection.
//!
//! The interpreter (`crate::interp`) executes each simulated MPI rank on its
//! own OS thread. Everything those threads exchange goes through a
//! [`Transport`], so the delivery policy is swappable: the default
//! [`ChannelTransport`] delivers messages FIFO, while the same transport
//! configured with a [`FaultPlan`] perturbs delivery — reordering messages
//! across senders, injecting delays, staggering rank starts, and (in chaotic
//! mode) duplicating or dropping messages — all reproducibly from a `u64`
//! seed.
//!
//! ## Legal vs chaotic schedules
//!
//! An *adversarial* plan ([`FaultPlan::adversarial`]) only produces
//! executions that a standards-conforming MPI implementation could also
//! produce: per-(source, communicator) message order is preserved
//! (non-overtaking), nothing is lost, nothing is duplicated. Analyses that
//! claim soundness for *every* legal schedule (the paper's MPI-ICFG
//! obligations) are cross-validated against many such schedules by
//! `mpi-dfa-suite`'s schedule explorer. A *chaotic* plan
//! ([`FaultPlan::chaotic`]) additionally drops and duplicates messages —
//! useful for exercising the deadlock detector and error paths, but not a
//! legal MPI execution.
//!
//! ## Deadlock detection
//!
//! Instead of waiting out a receive timeout, the transport keeps a registry
//! of per-rank states (running / blocked-with-wait-descriptor / finished)
//! plus a per-rank inventory of undelivered message keys. When a rank is
//! about to block, it checks the registry: if every unfinished rank is
//! blocked and no blocked rank has a matching message in flight, no future
//! send can ever occur — the run is deadlocked, and every blocked rank is
//! woken immediately with a structured per-rank wait-for report
//! ([`RecvError::Deadlock`]). The timeout remains only as a last-resort
//! fallback.
//!
//! All mutex acquisitions recover from poisoning (`PoisonError::into_inner`)
//! so a panic on one rank degrades into an ordinary [`RuntimeError`] on the
//! others instead of cascading panics.

use crate::rng::SplitMix64;
use crate::span::Span;
use mpi_dfa_core::telemetry::{self, ArgValue, TraceLevel};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the data if a previous holder panicked. The
/// transport's invariants are re-validated by every consumer (queues are
/// scanned, states re-checked), so continuing with the inner value is safe.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---- messages ---------------------------------------------------------------

/// One point-to-point message (collectives are lowered onto these).
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub src: usize,
    pub tag: i64,
    pub comm: i64,
    pub payload: Vec<f64>,
}

impl Message {
    fn key(&self) -> MsgKey {
        MsgKey {
            src: self.src,
            tag: self.tag,
            comm: self.comm,
        }
    }
}

/// The matching-relevant part of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MsgKey {
    src: usize,
    tag: i64,
    comm: i64,
}

/// What a blocked rank is waiting for — the per-rank entry of a deadlock
/// report. `src`/`tag` of `None` mean wildcard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankWait {
    pub rank: usize,
    /// Peer the rank is blocked on (`None` = any source).
    pub src: Option<usize>,
    pub tag: Option<i64>,
    pub comm: i64,
    /// Source location of the blocked receive.
    pub span: Span,
}

impl RankWait {
    fn matches(&self, key: &MsgKey) -> bool {
        self.src.is_none_or(|s| s == key.src)
            && self.tag.is_none_or(|t| t == key.tag)
            && self.comm == key.comm
    }
}

impl fmt::Display for RankWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src = match self.src {
            Some(s) => s.to_string(),
            None => "ANY".to_string(),
        };
        let tag = match self.tag {
            Some(t) => t.to_string(),
            None => "ANY".to_string(),
        };
        write!(
            f,
            "rank {} waiting for recv(src={src}, tag={tag}) at {}",
            self.rank, self.span
        )
    }
}

/// Why a receive did not produce a message.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvError {
    /// The fallback timeout expired without a matching message (should only
    /// happen when some rank is compute-bound, never for pure communication
    /// deadlocks).
    Timeout,
    /// Every live rank is blocked and nothing in flight matches: a genuine
    /// communication deadlock, with every blocked rank's wait descriptor.
    Deadlock(Vec<RankWait>),
}

// ---- fault plans ------------------------------------------------------------

/// A seeded, reproducible schedule perturbation. All probabilities are in
/// `[0, 1]`; durations are microseconds. Two runs of the same program under
/// the same plan and the same `nprocs` make identical per-rank fault
/// decisions (per-rank decision streams are forked from `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability that a delivered message is inserted at a random *legal*
    /// queue position (never overtaking an earlier message from the same
    /// (source, communicator), preserving MPI's non-overtaking guarantee).
    pub reorder: f64,
    /// Probability that a send is delayed before delivery.
    pub delay: f64,
    /// Maximum injected delay, microseconds.
    pub max_delay_micros: u64,
    /// Maximum random per-rank start stagger, microseconds.
    pub stagger_micros: u64,
    /// Probability a message is delivered twice. **Not a legal MPI
    /// execution** — only for robustness testing.
    pub duplicate: f64,
    /// Probability a message is silently lost. **Not a legal MPI
    /// execution** — only for robustness testing.
    pub drop: f64,
}

impl FaultPlan {
    /// A legal adversarial schedule: reordering across senders, delivery
    /// delays, staggered starts — no loss, no duplication. Runs under this
    /// plan are executions a real MPI library could produce, so analysis
    /// soundness obligations must hold on them.
    pub fn adversarial(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            reorder: 0.75,
            delay: 0.2,
            max_delay_micros: 150,
            stagger_micros: 400,
            duplicate: 0.0,
            drop: 0.0,
        }
    }

    /// Everything on, including illegal loss/duplication. For exercising
    /// the deadlock detector and error surfaces.
    pub fn chaotic(seed: u64) -> FaultPlan {
        FaultPlan {
            duplicate: 0.05,
            drop: 0.05,
            ..FaultPlan::adversarial(seed)
        }
    }

    /// True if every execution under this plan is a legal MPI schedule.
    pub fn is_legal(&self) -> bool {
        self.duplicate == 0.0 && self.drop == 0.0
    }

    /// Parse a CLI spec: either a bare seed (`"7"`) or comma-separated
    /// `key=value` pairs: `seed=7`, `mode=adversarial|chaotic`,
    /// `reorder=0.5`, `delay=0.2`, `max_delay=150`, `stagger=400`,
    /// `dup=0.05`, `drop=0.05`.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        if let Ok(seed) = spec.trim().parse::<u64>() {
            return Ok(FaultPlan::adversarial(seed));
        }
        let mut plan = FaultPlan::adversarial(0);
        let mut chaotic = false;
        let mut seed = 0u64;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            let fprob = || -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|e| format!("fault spec `{part}`: {e}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault spec `{part}`: probability outside [0, 1]"));
                }
                Ok(v)
            };
            match key {
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|e| format!("fault spec `{part}`: {e}"))?
                }
                "mode" => match value {
                    "adversarial" => chaotic = false,
                    "chaotic" => chaotic = true,
                    other => return Err(format!("fault spec: unknown mode `{other}`")),
                },
                "reorder" => plan.reorder = fprob()?,
                "delay" => plan.delay = fprob()?,
                "dup" => plan.duplicate = fprob()?,
                "drop" => plan.drop = fprob()?,
                "max_delay" => {
                    plan.max_delay_micros = value
                        .parse()
                        .map_err(|e| format!("fault spec `{part}`: {e}"))?
                }
                "stagger" => {
                    plan.stagger_micros = value
                        .parse()
                        .map_err(|e| format!("fault spec `{part}`: {e}"))?
                }
                other => return Err(format!("fault spec: unknown key `{other}`")),
            }
        }
        if chaotic {
            let base = FaultPlan::chaotic(seed);
            if plan.duplicate == 0.0 {
                plan.duplicate = base.duplicate;
            }
            if plan.drop == 0.0 {
                plan.drop = base.drop;
            }
        }
        plan.seed = seed;
        Ok(plan)
    }
}

// ---- the transport trait ----------------------------------------------------

/// Delivery policy for the interpreter's simulated MPI fabric. Implementors
/// must be safe to share across the per-rank threads.
pub trait Transport: Sync {
    /// Nonblocking, buffered send (MPI eager protocol).
    fn send(&self, src: usize, dest: usize, tag: i64, comm: i64, payload: Vec<f64>);

    /// Blocking receive with wildcard support. `span` is recorded for
    /// deadlock diagnostics. Fails with [`RecvError::Deadlock`] when the
    /// registry proves no matching send can ever happen, or
    /// [`RecvError::Timeout`] as a last resort.
    fn recv(
        &self,
        rank: usize,
        src: Option<usize>,
        tag: Option<i64>,
        comm: i64,
        span: Span,
        timeout: Duration,
    ) -> Result<Message, RecvError>;

    /// Called once per rank before it executes its first statement (fault
    /// plans stagger startup here).
    fn rank_started(&self, rank: usize) {
        let _ = rank;
    }

    /// Called when a rank's thread is done (normally or with an error), so
    /// deadlock detection can exclude it from the wait graph.
    fn rank_finished(&self, rank: usize);
}

// ---- the default transport --------------------------------------------------

#[derive(Debug, Clone)]
enum RankState {
    Running,
    Blocked(RankWait),
    Finished,
}

/// Cross-rank bookkeeping for deadlock detection.
#[derive(Debug)]
struct Registry {
    states: Vec<RankState>,
    /// Per destination rank: keys of messages delivered (or about to be
    /// delivered) but not yet received. A key is added *before* the message
    /// becomes visible in the mailbox and removed when it is taken, so the
    /// inventory over-approximates the mailbox — detection can only err on
    /// the safe (no-deadlock) side.
    in_flight: Vec<Vec<MsgKey>>,
    /// Set once, by whichever rank first proves the deadlock.
    verdict: Option<Vec<RankWait>>,
}

struct MailboxState {
    queue: Vec<Message>,
    /// Seeded stream deciding reorder insertion positions for this
    /// destination.
    rng: SplitMix64,
}

struct Mailbox {
    state: Mutex<MailboxState>,
    cond: Condvar,
}

/// Per-sender fault decisions, forked from the plan seed so each rank's
/// decision stream is independent of thread interleaving.
struct SenderFaults {
    rng: Mutex<SplitMix64>,
}

/// The built-in transport: per-rank mailboxes (`Mutex` + `Condvar`), a
/// blocked-rank registry for deadlock detection, and optional seeded fault
/// injection.
pub struct ChannelTransport {
    mailboxes: Vec<Mailbox>,
    registry: Mutex<Registry>,
    /// Fast-path flag so blocked ranks can notice a verdict without taking
    /// the registry lock.
    deadlocked: AtomicBool,
    plan: Option<FaultPlan>,
    senders: Vec<SenderFaults>,
    /// Logical (Lamport-style) clock over communication events: ticks once
    /// per recorded event, giving the telemetry timeline a total order that
    /// is independent of wall-clock resolution. Only advanced while the
    /// telemetry sink records at [`TraceLevel::Full`].
    clock: AtomicU64,
}

/// Record one communication-timeline event at [`TraceLevel::Full`]. The
/// closure building the argument list only runs when the sink records, so
/// the disabled path performs a single relaxed load and no allocation.
#[inline]
fn trace_comm(
    clock: &AtomicU64,
    name: &str,
    rank: usize,
    extra: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
) {
    if telemetry::level() < TraceLevel::Full {
        return;
    }
    let lt = clock.fetch_add(1, Ordering::Relaxed);
    let mut args = vec![
        ("rank", ArgValue::U64(rank as u64)),
        ("lt", ArgValue::U64(lt)),
    ];
    args.extend(extra());
    telemetry::comm_event(name, args);
}

impl ChannelTransport {
    /// A transport for `nprocs` ranks; `plan` enables fault injection.
    pub fn new(nprocs: usize, plan: Option<FaultPlan>) -> ChannelTransport {
        let seed = plan.as_ref().map(|p| p.seed).unwrap_or(0);
        ChannelTransport {
            mailboxes: (0..nprocs)
                .map(|rank| Mailbox {
                    state: Mutex::new(MailboxState {
                        queue: Vec::new(),
                        // Stream 2r: sender streams use 2r + 1.
                        rng: SplitMix64::fork(seed, 2 * rank as u64),
                    }),
                    cond: Condvar::new(),
                })
                .collect(),
            registry: Mutex::new(Registry {
                states: vec![RankState::Running; nprocs],
                in_flight: vec![Vec::new(); nprocs],
                verdict: None,
            }),
            deadlocked: AtomicBool::new(false),
            plan,
            senders: (0..nprocs)
                .map(|rank| SenderFaults {
                    rng: Mutex::new(SplitMix64::fork(seed, 2 * rank as u64 + 1)),
                })
                .collect(),
            clock: AtomicU64::new(0),
        }
    }

    fn find_match(
        queue: &[Message],
        src: Option<usize>,
        tag: Option<i64>,
        comm: i64,
    ) -> Option<usize> {
        queue.iter().position(|m| {
            src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag) && m.comm == comm
        })
    }

    /// Insert `msg` into `dest`'s queue. With `reorder`, pick a random
    /// position that never overtakes an earlier message from the same
    /// (source, communicator) — MPI's non-overtaking guarantee.
    fn deliver(&self, dest: usize, msg: Message, reorder: bool) {
        {
            let mut reg = lock_recover(&self.registry);
            reg.in_flight[dest].push(msg.key());
        }
        let mb = &self.mailboxes[dest];
        {
            let mut st = lock_recover(&mb.state);
            let pos = if reorder {
                let floor = st
                    .queue
                    .iter()
                    .rposition(|m| m.src == msg.src && m.comm == msg.comm)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                // Any slot in [floor, len] is a legal arrival position.
                let len = st.queue.len();
                st.rng.range(floor, len + 1)
            } else {
                st.queue.len()
            };
            st.queue.insert(pos, msg);
        }
        mb.cond.notify_all();
    }

    /// Record that `rank` consumed `msg` and is running again.
    fn note_taken(&self, rank: usize, msg: &Message) {
        let mut reg = lock_recover(&self.registry);
        let key = msg.key();
        if let Some(pos) = reg.in_flight[rank].iter().position(|k| *k == key) {
            reg.in_flight[rank].remove(pos);
        }
        reg.states[rank] = RankState::Running;
    }

    /// Mark `rank` blocked on `wait`, then decide whether the whole run is
    /// deadlocked. Returns the verdict if one exists (found now or earlier).
    fn block_and_detect(&self, rank: usize, wait: RankWait) -> Option<Vec<RankWait>> {
        let verdict = {
            let mut reg = lock_recover(&self.registry);
            reg.states[rank] = RankState::Blocked(wait);
            if let Some(v) = &reg.verdict {
                return Some(v.clone());
            }
            match Self::detect(&reg) {
                Some(v) => {
                    reg.verdict = Some(v.clone());
                    Some(v)
                }
                None => None,
            }
        };
        if let Some(v) = verdict {
            self.announce_deadlock();
            return Some(v);
        }
        None
    }

    /// The deadlock predicate: every unfinished rank is blocked, at least
    /// one rank is blocked, and no blocked rank's wait descriptor matches
    /// any in-flight message key. Under those conditions no rank can ever
    /// send again, so the blocked set can never be released.
    fn detect(reg: &Registry) -> Option<Vec<RankWait>> {
        let mut waiting = Vec::new();
        for state in &reg.states {
            match state {
                RankState::Running => return None,
                RankState::Blocked(w) => waiting.push(w.clone()),
                RankState::Finished => {}
            }
        }
        if waiting.is_empty() {
            return None;
        }
        for w in &waiting {
            if reg.in_flight[w.rank].iter().any(|k| w.matches(k)) {
                return None; // something deliverable is still in flight
            }
        }
        waiting.sort_by_key(|w| w.rank);
        Some(waiting)
    }

    /// Wake every blocked rank so each can observe the verdict.
    fn announce_deadlock(&self) {
        self.deadlocked.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            // Acquire the lock so a rank between its predicate check and its
            // `wait_timeout` cannot miss the notification.
            drop(lock_recover(&mb.state));
            mb.cond.notify_all();
        }
    }

    fn verdict(&self) -> Vec<RankWait> {
        lock_recover(&self.registry)
            .verdict
            .clone()
            .unwrap_or_default()
    }
}

impl Transport for ChannelTransport {
    fn send(&self, src: usize, dest: usize, tag: i64, comm: i64, payload: Vec<f64>) {
        trace_comm(&self.clock, "send", src, || {
            vec![
                ("dest", ArgValue::U64(dest as u64)),
                ("tag", ArgValue::I64(tag)),
                ("comm", ArgValue::I64(comm)),
                ("len", ArgValue::U64(payload.len() as u64)),
            ]
        });
        let msg = Message {
            src,
            tag,
            comm,
            payload,
        };
        let Some(plan) = &self.plan else {
            self.deliver(dest, msg, false);
            return;
        };
        // All decisions come from the sender's forked stream, in a fixed
        // order, so they depend only on (seed, src, send index) — never on
        // thread interleaving.
        let (dropped, copies, delay, reorder) = {
            let mut rng = lock_recover(&self.senders[src].rng);
            let dropped = rng.chance(plan.drop);
            let copies = if rng.chance(plan.duplicate) { 2 } else { 1 };
            let delay = if rng.chance(plan.delay) && plan.max_delay_micros > 0 {
                Some(Duration::from_micros(
                    rng.below(plan.max_delay_micros as usize + 1) as u64,
                ))
            } else {
                None
            };
            let reorder = rng.chance(plan.reorder);
            (dropped, copies, delay, reorder)
        };
        if dropped {
            trace_comm(&self.clock, "fault:drop", src, || {
                vec![
                    ("dest", ArgValue::U64(dest as u64)),
                    ("tag", ArgValue::I64(tag)),
                ]
            });
            return;
        }
        if let Some(d) = delay {
            trace_comm(&self.clock, "fault:delay", src, || {
                vec![
                    ("dest", ArgValue::U64(dest as u64)),
                    ("micros", ArgValue::U64(d.as_micros() as u64)),
                ]
            });
            // The sender is still `Running` while it sleeps, so the deadlock
            // detector cannot fire spuriously during an injected delay.
            std::thread::sleep(d);
        }
        if copies > 1 {
            trace_comm(&self.clock, "fault:duplicate", src, || {
                vec![
                    ("dest", ArgValue::U64(dest as u64)),
                    ("tag", ArgValue::I64(tag)),
                ]
            });
        }
        for _ in 0..copies {
            self.deliver(dest, msg.clone(), reorder);
        }
    }

    fn recv(
        &self,
        rank: usize,
        src: Option<usize>,
        tag: Option<i64>,
        comm: i64,
        span: Span,
        timeout: Duration,
    ) -> Result<Message, RecvError> {
        let deadline = Instant::now() + timeout;
        let mb = &self.mailboxes[rank];
        let mut blocked_once = false;
        loop {
            // Fast path: match under the mailbox lock only.
            {
                let mut st = lock_recover(&mb.state);
                if let Some(pos) = Self::find_match(&st.queue, src, tag, comm) {
                    let msg = st.queue.remove(pos);
                    drop(st);
                    self.note_taken(rank, &msg);
                    if blocked_once {
                        trace_comm(&self.clock, "unblock", rank, Vec::new);
                    }
                    trace_comm(&self.clock, "recv", rank, || {
                        vec![
                            ("src", ArgValue::U64(msg.src as u64)),
                            ("tag", ArgValue::I64(msg.tag)),
                            ("comm", ArgValue::I64(msg.comm)),
                            ("len", ArgValue::U64(msg.payload.len() as u64)),
                        ]
                    });
                    return Ok(msg);
                }
            }
            if self.deadlocked.load(Ordering::Acquire) {
                trace_comm(&self.clock, "deadlock", rank, Vec::new);
                return Err(RecvError::Deadlock(self.verdict()));
            }
            // Nothing matched: announce the block and test for deadlock.
            // A message delivered between the check above and this point is
            // already in the registry's in-flight inventory (deliveries
            // register there first), so detection stays conservative.
            let wait = RankWait {
                rank,
                src,
                tag,
                comm,
                span,
            };
            if !blocked_once {
                blocked_once = true;
                trace_comm(&self.clock, "block", rank, || {
                    vec![
                        (
                            "src",
                            match src {
                                Some(s) => ArgValue::U64(s as u64),
                                None => ArgValue::Str("ANY".to_string()),
                            },
                        ),
                        (
                            "tag",
                            match tag {
                                Some(t) => ArgValue::I64(t),
                                None => ArgValue::Str("ANY".to_string()),
                            },
                        ),
                        ("comm", ArgValue::I64(comm)),
                    ]
                });
            }
            if let Some(report) = self.block_and_detect(rank, wait) {
                trace_comm(&self.clock, "deadlock", rank, Vec::new);
                return Err(RecvError::Deadlock(report));
            }
            // Sleep until something arrives, the verdict lands, or the
            // fallback deadline passes. The predicate is re-checked under
            // the lock after every wakeup (spurious wakeups included) and
            // the remaining time is recomputed each iteration.
            {
                let mut st = lock_recover(&mb.state);
                loop {
                    if Self::find_match(&st.queue, src, tag, comm).is_some()
                        || self.deadlocked.load(Ordering::Acquire)
                    {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvError::Timeout);
                    }
                    let (guard, _) = mb
                        .cond
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    st = guard;
                }
            }
            // Loop back to the fast path, which also fixes up the registry.
        }
    }

    fn rank_started(&self, rank: usize) {
        trace_comm(&self.clock, "rank_start", rank, Vec::new);
        if let Some(plan) = &self.plan {
            if plan.stagger_micros > 0 {
                let micros = {
                    let mut rng = lock_recover(&self.senders[rank].rng);
                    rng.below(plan.stagger_micros as usize + 1) as u64
                };
                std::thread::sleep(Duration::from_micros(micros));
            }
        }
    }

    fn rank_finished(&self, rank: usize) {
        trace_comm(&self.clock, "rank_finish", rank, Vec::new);
        let verdict = {
            let mut reg = lock_recover(&self.registry);
            reg.states[rank] = RankState::Finished;
            // A rank leaving can strand the others (e.g. a collective the
            // finished rank never joined), so re-run detection here too.
            if reg.verdict.is_none() {
                if let Some(v) = Self::detect(&reg) {
                    reg.verdict = Some(v.clone());
                    Some(v)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if verdict.is_some() {
            self.announce_deadlock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: usize, tag: i64) -> (usize, usize, i64, i64, Vec<f64>) {
        (src, 0, tag, 0, vec![tag as f64])
    }

    #[test]
    fn fifo_without_plan() {
        let t = ChannelTransport::new(2, None);
        for i in 0..5 {
            let (s, d, tag, comm, p) = msg(1, i);
            t.send(s, d, tag, comm, p);
        }
        for i in 0..5 {
            let m = t
                .recv(0, Some(1), None, 0, Span::DUMMY, Duration::from_secs(1))
                .unwrap();
            assert_eq!(m.tag, i, "FIFO per (src, comm)");
        }
    }

    #[test]
    fn reorder_preserves_same_source_order() {
        // Under any seed, messages from one source on one communicator must
        // stay in order even with aggressive reordering.
        for seed in 0..50 {
            let plan = FaultPlan {
                reorder: 1.0,
                delay: 0.0,
                stagger_micros: 0,
                ..FaultPlan::adversarial(seed)
            };
            let t = ChannelTransport::new(2, Some(plan));
            for i in 0..8 {
                t.send(1, 0, i, 0, vec![]);
            }
            for i in 0..8 {
                let m = t
                    .recv(0, Some(1), Some(i), 0, Span::DUMMY, Duration::from_secs(1))
                    .unwrap();
                assert_eq!(m.tag, i);
            }
        }
    }

    #[test]
    fn reorder_interleaves_distinct_sources() {
        // With three senders and full reordering, at least one seed must
        // produce a non-FIFO arrival order for a wildcard receiver.
        let mut saw_reorder = false;
        for seed in 0..50 {
            let plan = FaultPlan {
                reorder: 1.0,
                delay: 0.0,
                stagger_micros: 0,
                ..FaultPlan::adversarial(seed)
            };
            let t = ChannelTransport::new(4, Some(plan));
            for src in 1..4 {
                t.send(src, 0, 7, 0, vec![src as f64]);
            }
            let mut order = Vec::new();
            for _ in 0..3 {
                let m = t
                    .recv(0, None, Some(7), 0, Span::DUMMY, Duration::from_secs(1))
                    .unwrap();
                order.push(m.src);
            }
            if order != vec![1, 2, 3] {
                saw_reorder = true;
                break;
            }
        }
        assert!(
            saw_reorder,
            "reordering never produced a non-FIFO interleaving"
        );
    }

    #[test]
    fn drop_faults_lose_messages() {
        let plan = FaultPlan {
            drop: 1.0,
            delay: 0.0,
            stagger_micros: 0,
            ..FaultPlan::chaotic(1)
        };
        let t = ChannelTransport::new(2, Some(plan));
        t.send(1, 0, 5, 0, vec![1.0]);
        // Sender still running, so this must resolve by timeout, quickly.
        let r = t.recv(
            0,
            Some(1),
            Some(5),
            0,
            Span::DUMMY,
            Duration::from_millis(30),
        );
        assert_eq!(r, Err(RecvError::Timeout));
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        let plan = FaultPlan {
            duplicate: 1.0,
            drop: 0.0,
            delay: 0.0,
            stagger_micros: 0,
            ..FaultPlan::chaotic(1)
        };
        let t = ChannelTransport::new(2, Some(plan));
        t.send(1, 0, 5, 0, vec![1.0]);
        for _ in 0..2 {
            t.recv(0, Some(1), Some(5), 0, Span::DUMMY, Duration::from_secs(1))
                .unwrap();
        }
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let run = |seed: u64| -> Vec<i64> {
            let plan = FaultPlan {
                stagger_micros: 0,
                ..FaultPlan::chaotic(seed)
            };
            let t = ChannelTransport::new(2, Some(plan));
            for i in 0..32 {
                t.send(1, 0, i, 0, vec![]);
            }
            let mut got = Vec::new();
            while let Ok(m) = t.recv(0, Some(1), None, 0, Span::DUMMY, Duration::from_millis(20)) {
                got.push(m.tag);
            }
            got
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should perturb differently");
    }

    #[test]
    fn all_blocked_is_deadlock_not_timeout() {
        let t = Arc::new(ChannelTransport::new(2, None));
        let t2 = Arc::clone(&t);
        let started = Instant::now();
        let other = std::thread::spawn(move || {
            t2.recv(1, Some(0), Some(1), 0, Span::DUMMY, Duration::from_secs(30))
        });
        let r = t.recv(0, Some(1), Some(1), 0, Span::DUMMY, Duration::from_secs(30));
        let r2 = other.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "must not wait out the timeout"
        );
        let (Err(RecvError::Deadlock(a)), Err(RecvError::Deadlock(b))) = (&r, &r2) else {
            panic!("expected deadlock on both ranks: {r:?} / {r2:?}");
        };
        assert_eq!(a, b, "both ranks see the same report");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].rank, 0);
        assert_eq!(a[0].src, Some(1));
        assert_eq!(a[1].rank, 1);
    }

    #[test]
    fn finished_peer_triggers_detection() {
        let t = Arc::new(ChannelTransport::new(2, None));
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.recv(0, Some(1), Some(9), 0, Span::DUMMY, Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(20));
        t.rank_finished(1); // rank 1 exits without ever sending
        let r = waiter.join().unwrap();
        assert!(matches!(r, Err(RecvError::Deadlock(_))), "{r:?}");
    }

    #[test]
    fn in_flight_message_prevents_false_deadlock() {
        // Both ranks block, but a matching message is already queued for
        // rank 0 — detection must not fire; rank 0 receives it.
        let t = Arc::new(ChannelTransport::new(2, None));
        t.send(1, 0, 3, 0, vec![9.0]);
        let t2 = Arc::clone(&t);
        let other = std::thread::spawn(move || {
            t2.recv(
                1,
                Some(0),
                Some(4),
                0,
                Span::DUMMY,
                Duration::from_millis(200),
            )
        });
        let m = t
            .recv(0, Some(1), Some(3), 0, Span::DUMMY, Duration::from_secs(1))
            .unwrap();
        assert_eq!(m.payload, vec![9.0]);
        t.send(0, 1, 4, 0, vec![1.0]);
        assert!(other.join().unwrap().is_ok());
    }

    #[test]
    fn late_message_within_deadline_is_received() {
        // Regression for the Condvar wait loop: a matching message arriving
        // well after the recv starts but within the deadline must be
        // delivered, surviving spurious wakeups and deadline recomputation.
        let t = Arc::new(ChannelTransport::new(2, None));
        let t2 = Arc::clone(&t);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            t2.send(1, 0, 11, 0, vec![4.25]);
        });
        let started = Instant::now();
        let m = t
            .recv(0, Some(1), Some(11), 0, Span::DUMMY, Duration::from_secs(5))
            .unwrap();
        assert_eq!(m.payload, vec![4.25]);
        assert!(started.elapsed() >= Duration::from_millis(75));
        assert!(started.elapsed() < Duration::from_secs(5));
        sender.join().unwrap();
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(FaultPlan::from_spec("7"), Ok(FaultPlan::adversarial(7)));
        assert_eq!(
            FaultPlan::from_spec("seed=7"),
            Ok(FaultPlan::adversarial(7))
        );
        let chaotic = FaultPlan::from_spec("seed=3,mode=chaotic").unwrap();
        assert_eq!(chaotic, FaultPlan::chaotic(3));
        assert!(!chaotic.is_legal());
        let custom = FaultPlan::from_spec("seed=1,drop=0.5,max_delay=10").unwrap();
        assert_eq!(custom.drop, 0.5);
        assert_eq!(custom.max_delay_micros, 10);
        assert!(FaultPlan::from_spec("seed=x").is_err());
        assert!(FaultPlan::from_spec("bogus=1").is_err());
        assert!(FaultPlan::from_spec("drop=2.0").is_err());
        assert!(FaultPlan::adversarial(0).is_legal());
    }
}
